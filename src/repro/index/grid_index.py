"""Uniform grid index over the data space.

This is both the range-query accelerator used by every clustering
algorithm in the package (one range query per new object — Section 5.3)
and the cell decomposition that underlies SGS itself: C-SGS builds its
skeletal grid cells directly on the cells of this index (Section 5.4).

Cell sizing follows Section 4.3: the *diagonal* of a cell equals the range
threshold θr, i.e. the side length is ``θr / sqrt(d)``. That guarantees
that any two objects in the same cell are neighbors, and it bounds the
cells that can contain neighbors of a point to those within
``ceil(sqrt(d))`` grid steps in every dimension.

The cell decomposition itself is factored out as :class:`CellMap`: the
pure coord→objects bookkeeping that C-SGS needs as its SGS substrate.
:class:`GridIndex` extends it with neighbor search and is the default
:class:`~repro.index.provider.NeighborProvider` backend; trackers that
run a non-cell-backed backend (k-d tree, R-tree) keep a bare
:class:`CellMap` alongside it for the skeletal-grid bookkeeping.
"""

from __future__ import annotations

import math
from operator import add
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.coordstore import CoordStore
from repro.streams.objects import StreamObject

Coord = Tuple[int, ...]


def cell_side_for_range(theta_range: float, dimensions: int) -> float:
    """Return the grid side length whose cell diagonal equals θr."""
    if theta_range <= 0:
        raise ValueError("theta_range must be positive")
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    return theta_range / math.sqrt(dimensions)


class CellMap:
    """The θr-sized cell decomposition of the data space (SGS substrate).

    Cells are addressed by integer coordinate tuples
    ``floor(x_i / side)``; only non-empty cells are materialized. The map
    stores :class:`StreamObject` references and supports insertion,
    removal, expiration purge, and per-cell introspection — everything
    the skeletal-grid layer needs, *without* neighbor search.
    """

    def __init__(self, theta_range: float, dimensions: int):
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self.side = cell_side_for_range(theta_range, dimensions)
        self._cells: Dict[Coord, List[StreamObject]] = {}

    def cell_coord(self, coords: Sequence[float]) -> Coord:
        """Return the grid cell coordinate containing a point."""
        return tuple(int(math.floor(value / self.side)) for value in coords)

    def insert(self, obj: StreamObject) -> Coord:
        """Insert an object; returns its cell coordinate."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None:
            bucket = []
            self._cells[coord] = bucket
        bucket.append(obj)
        return coord

    def remove(self, obj: StreamObject) -> None:
        """Remove an object previously inserted (raises if absent)."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None or obj not in bucket:
            raise KeyError(f"object {obj.oid} not present in grid")
        bucket.remove(obj)
        if not bucket:
            del self._cells[coord]

    def purge_expired(self, window_index: int) -> int:
        """Drop every object whose last window precedes ``window_index``.

        Returns the number of objects removed. This is the only
        expiration work the lifespan-based algorithms perform.
        """
        removed: List[StreamObject] = []
        empty: List[Coord] = []
        for coord, bucket in self._cells.items():
            kept = [obj for obj in bucket if obj.last_window >= window_index]
            if len(kept) != len(bucket):
                removed.extend(
                    obj for obj in bucket if obj.last_window < window_index
                )
            if kept:
                bucket[:] = kept
            else:
                empty.append(coord)
        for coord in empty:
            del self._cells[coord]
        if removed:
            self._purged(removed)
        return len(removed)

    def _purged(self, objects: List[StreamObject]) -> None:
        """Hook: subclasses keeping auxiliary per-object state (the
        grid's coordinate store) drop the purged objects here."""

    def objects_in_cell(self, coord: Coord) -> List[StreamObject]:
        """Return the live objects stored in one cell (empty list if none)."""
        return list(self._cells.get(coord, ()))

    def occupied_cells(self) -> Iterator[Coord]:
        return iter(self._cells.keys())

    def cell_population(self, coord: Coord) -> int:
        return len(self._cells.get(coord, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._cells.values())

    def __iter__(self) -> Iterator[StreamObject]:
        for bucket in self._cells.values():
            yield from bucket

    def bulk_load(self, objects: Iterable[StreamObject]) -> None:
        for obj in objects:
            self.insert(obj)


class GridIndex(CellMap):
    """A dictionary-backed uniform grid with range-query search.

    Extends :class:`CellMap` with the two query operations of the
    :class:`~repro.index.provider.NeighborProvider` protocol: single
    range queries (all objects within θr of a point) and batched
    ``range_query_many`` (one candidate-gathering pass per distinct base
    cell instead of one per query). Candidate refinement runs through a
    :class:`~repro.geometry.coordstore.CoordStore`: the whole candidate
    set of a query (union of reachable buckets) is refined in one
    batched kernel call instead of a per-point coordinate loop.
    """

    def __init__(
        self,
        theta_range: float,
        dimensions: int,
        refinement: Optional[str] = None,
    ):
        super().__init__(theta_range, dimensions)
        # Neighbors of a point can lie at most ceil(sqrt(d)) cells away
        # in each dimension because theta_range == side * sqrt(d).
        self.reach = int(math.ceil(math.sqrt(self.dimensions)))
        self._sq_range = self.theta_range * self.theta_range
        self._offsets = self._build_offsets()
        self._store = CoordStore(dimensions, refinement=refinement)
        self.refinement = self._store.refinement

    def insert(self, obj: StreamObject) -> Coord:
        # Store first: it validates (duplicate oid, dimensionality) and
        # raises before the cell bucket is touched, keeping both
        # structures consistent on failure.
        self._store.add(obj)
        return super().insert(obj)

    def remove(self, obj: StreamObject) -> None:
        super().remove(obj)  # raises before the store is touched
        self._store.remove(obj.oid)

    def _purged(self, objects: List[StreamObject]) -> None:
        for obj in objects:
            self._store.remove(obj.oid)

    def _build_offsets(self) -> List[Coord]:
        """Precompute the relative cell offsets a range query must visit.

        Offsets whose closest corner is farther than θr from the query
        cell are pruned, which eliminates most of the
        ``(2*reach + 1)^d`` candidates in higher dimensions.
        """
        offsets: List[Coord] = []
        span = range(-self.reach, self.reach + 1)

        def expand(prefix: Tuple[int, ...]) -> None:
            if len(prefix) == self.dimensions:
                # Minimal possible distance between a point in the query
                # cell and a point in the offset cell, per dimension:
                # (|delta| - 1) * side when |delta| > 0.
                sq_min = 0.0
                for delta in prefix:
                    if delta != 0:
                        gap = (abs(delta) - 1) * self.side
                        sq_min += gap * gap
                if sq_min <= self._sq_range + 1e-12:
                    offsets.append(prefix)
                return
            for delta in span:
                expand(prefix + (delta,))

        expand(())
        return offsets

    def _gather_candidates(self, base: Coord) -> List[StreamObject]:
        """Union of the buckets reachable from a query's base cell."""
        candidates: List[StreamObject] = []
        cells = self._cells
        # map(add, ...) keeps the per-offset coordinate arithmetic at the
        # C level; this loop runs (2*reach+1)^d times per distinct base
        # cell and dominates candidate gathering in higher dimensions.
        for offset in self._offsets:
            bucket = cells.get(tuple(map(add, base, offset)))
            if bucket:
                candidates.extend(bucket)
        return candidates

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        """Return all stored objects within θr of ``coords``.

        ``exclude_oid`` omits the query object itself when it has already
        been inserted. The whole candidate set is refined in one store
        kernel call (boundary-inclusive <= θr², canonical summation
        order — see :mod:`repro.geometry.coordstore`; the parity suite
        pins the agreement across backends and refinement modes).
        """
        base = self.cell_coord(coords)
        return self._store.refine(
            self._gather_candidates(base), coords, self._sq_range, exclude_oid
        )

    def range_query_many(
        self, queries: Sequence[Tuple[Sequence[float], int]]
    ) -> List[List[StreamObject]]:
        """Batched range queries: ``[(coords, exclude_oid), ...]``.

        The candidate set (union of reachable buckets) depends only on
        the query's base cell, so queries are grouped by *distinct* base
        cell: candidates are gathered (and their store rows resolved)
        once per cell, and all of the cell's probes are refined in a
        single batched kernel sweep — on clustered window batches the
        C-SGS per-slide batch becomes one array pass per occupied cell.
        """
        if not queries:
            return []
        query_indices_by_base: Dict[Coord, List[int]] = {}
        for qi, (coords, _) in enumerate(queries):
            base = self.cell_coord(coords)
            query_indices_by_base.setdefault(base, []).append(qi)
        results: List[List[StreamObject]] = [[] for _ in queries]
        sq_range = self._sq_range
        for base, indices in query_indices_by_base.items():
            batch = self._store.batch(self._gather_candidates(base))
            refined = self._store.refine_many(
                batch,
                [queries[qi][0] for qi in indices],
                sq_range,
                [queries[qi][1] for qi in indices],
            )
            for qi, matches in zip(indices, refined):
                results[qi] = matches
        return results
