"""Uniform grid index over the data space.

This is both the range-query accelerator used by every clustering
algorithm in the package (one range query per new object — Section 5.3)
and the cell decomposition that underlies SGS itself: C-SGS builds its
skeletal grid cells directly on the cells of this index (Section 5.4).

Cell sizing follows Section 4.3: the *diagonal* of a cell equals the range
threshold θr, i.e. the side length is ``θr / sqrt(d)``. That guarantees
that any two objects in the same cell are neighbors, and it bounds the
cells that can contain neighbors of a point to those within
``ceil(sqrt(d))`` grid steps in every dimension.

The cell decomposition itself is factored out as :class:`CellMap`: the
pure coord→objects bookkeeping that C-SGS needs as its SGS substrate.
:class:`GridIndex` extends it with neighbor search and is the default
:class:`~repro.index.provider.NeighborProvider` backend; trackers that
run a non-cell-backed backend (k-d tree, R-tree) keep a bare
:class:`CellMap` alongside it for the skeletal-grid bookkeeping.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.streams.objects import StreamObject

Coord = Tuple[int, ...]


def cell_side_for_range(theta_range: float, dimensions: int) -> float:
    """Return the grid side length whose cell diagonal equals θr."""
    if theta_range <= 0:
        raise ValueError("theta_range must be positive")
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    return theta_range / math.sqrt(dimensions)


class CellMap:
    """The θr-sized cell decomposition of the data space (SGS substrate).

    Cells are addressed by integer coordinate tuples
    ``floor(x_i / side)``; only non-empty cells are materialized. The map
    stores :class:`StreamObject` references and supports insertion,
    removal, expiration purge, and per-cell introspection — everything
    the skeletal-grid layer needs, *without* neighbor search.
    """

    def __init__(self, theta_range: float, dimensions: int):
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self.side = cell_side_for_range(theta_range, dimensions)
        self._cells: Dict[Coord, List[StreamObject]] = {}

    def cell_coord(self, coords: Sequence[float]) -> Coord:
        """Return the grid cell coordinate containing a point."""
        return tuple(int(math.floor(value / self.side)) for value in coords)

    def insert(self, obj: StreamObject) -> Coord:
        """Insert an object; returns its cell coordinate."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None:
            bucket = []
            self._cells[coord] = bucket
        bucket.append(obj)
        return coord

    def remove(self, obj: StreamObject) -> None:
        """Remove an object previously inserted (raises if absent)."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None or obj not in bucket:
            raise KeyError(f"object {obj.oid} not present in grid")
        bucket.remove(obj)
        if not bucket:
            del self._cells[coord]

    def purge_expired(self, window_index: int) -> int:
        """Drop every object whose last window precedes ``window_index``.

        Returns the number of objects removed. This is the only
        expiration work the lifespan-based algorithms perform.
        """
        removed = 0
        empty: List[Coord] = []
        for coord, bucket in self._cells.items():
            kept = [obj for obj in bucket if obj.last_window >= window_index]
            removed += len(bucket) - len(kept)
            if kept:
                bucket[:] = kept
            else:
                empty.append(coord)
        for coord in empty:
            del self._cells[coord]
        return removed

    def objects_in_cell(self, coord: Coord) -> List[StreamObject]:
        """Return the live objects stored in one cell (empty list if none)."""
        return list(self._cells.get(coord, ()))

    def occupied_cells(self) -> Iterator[Coord]:
        return iter(self._cells.keys())

    def cell_population(self, coord: Coord) -> int:
        return len(self._cells.get(coord, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._cells.values())

    def __iter__(self) -> Iterator[StreamObject]:
        for bucket in self._cells.values():
            yield from bucket

    def bulk_load(self, objects: Iterable[StreamObject]) -> None:
        for obj in objects:
            self.insert(obj)


class GridIndex(CellMap):
    """A dictionary-backed uniform grid with range-query search.

    Extends :class:`CellMap` with the two query operations of the
    :class:`~repro.index.provider.NeighborProvider` protocol: single
    range queries (all objects within θr of a point) and batched
    ``range_query_many`` (one candidate-gathering pass per distinct base
    cell instead of one per query).
    """

    def __init__(self, theta_range: float, dimensions: int):
        super().__init__(theta_range, dimensions)
        # Neighbors of a point can lie at most ceil(sqrt(d)) cells away
        # in each dimension because theta_range == side * sqrt(d).
        self.reach = int(math.ceil(math.sqrt(self.dimensions)))
        self._sq_range = self.theta_range * self.theta_range
        self._offsets = self._build_offsets()

    def _build_offsets(self) -> List[Coord]:
        """Precompute the relative cell offsets a range query must visit.

        Offsets whose closest corner is farther than θr from the query
        cell are pruned, which eliminates most of the
        ``(2*reach + 1)^d`` candidates in higher dimensions.
        """
        offsets: List[Coord] = []
        span = range(-self.reach, self.reach + 1)

        def expand(prefix: Tuple[int, ...]) -> None:
            if len(prefix) == self.dimensions:
                # Minimal possible distance between a point in the query
                # cell and a point in the offset cell, per dimension:
                # (|delta| - 1) * side when |delta| > 0.
                sq_min = 0.0
                for delta in prefix:
                    if delta != 0:
                        gap = (abs(delta) - 1) * self.side
                        sq_min += gap * gap
                if sq_min <= self._sq_range + 1e-12:
                    offsets.append(prefix)
                return
            for delta in span:
                expand(prefix + (delta,))

        expand(())
        return offsets

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        """Return all stored objects within θr of ``coords``.

        ``exclude_oid`` omits the query object itself when it has already
        been inserted.
        """
        # The inlined refinement below (early-break, boundary-inclusive
        # <= θr²) must match provider._within_sq_range — every backend
        # shares those semantics; the parity suite pins the agreement.
        base = self.cell_coord(coords)
        result: List[StreamObject] = []
        sq_range = self._sq_range
        for offset in self._offsets:
            coord = tuple(b + o for b, o in zip(base, offset))
            bucket = self._cells.get(coord)
            if not bucket:
                continue
            for obj in bucket:
                if obj.oid == exclude_oid:
                    continue
                total = 0.0
                for a, b in zip(coords, obj.coords):
                    diff = a - b
                    total += diff * diff
                    if total > sq_range:
                        break
                else:
                    result.append(obj)
        return result

    def range_query_many(
        self, queries: Sequence[Tuple[Sequence[float], int]]
    ) -> List[List[StreamObject]]:
        """Batched range queries: ``[(coords, exclude_oid), ...]``.

        The candidate set (union of reachable buckets) depends only on
        the query's base cell, so it is gathered once per *distinct*
        base cell and reused by every query landing in that cell — on
        clustered window batches this turns the per-object bucket walk
        into a per-occupied-cell one.
        """
        results: List[List[StreamObject]] = []
        candidates_by_base: Dict[Coord, List[StreamObject]] = {}
        cells = self._cells
        sq_range = self._sq_range
        for coords, exclude_oid in queries:
            base = self.cell_coord(coords)
            candidates = candidates_by_base.get(base)
            if candidates is None:
                candidates = []
                for offset in self._offsets:
                    bucket = cells.get(
                        tuple(b + o for b, o in zip(base, offset))
                    )
                    if bucket:
                        candidates.extend(bucket)
                candidates_by_base[base] = candidates
            matches: List[StreamObject] = []
            for obj in candidates:
                if obj.oid == exclude_oid:
                    continue
                total = 0.0
                for a, b in zip(coords, obj.coords):
                    diff = a - b
                    total += diff * diff
                    if total > sq_range:
                        break
                else:
                    matches.append(obj)
            results.append(matches)
        return results
