"""Uniform grid index over the data space.

This is both the range-query accelerator used by every clustering
algorithm in the package (one range query per new object — Section 5.3)
and the cell decomposition that underlies SGS itself: C-SGS builds its
skeletal grid cells directly on the cells of this index (Section 5.4).

Cell sizing follows Section 4.3: the *diagonal* of a cell equals the range
threshold θr, i.e. the side length is ``θr / sqrt(d)``. That guarantees
that any two objects in the same cell are neighbors, and it bounds the
cells that can contain neighbors of a point to those within
``ceil(sqrt(d))`` grid steps in every dimension.

The cell decomposition itself is factored out as :class:`CellMap`: the
pure coord→objects bookkeeping that C-SGS needs as its SGS substrate.
:class:`GridIndex` extends it with neighbor search and is the default
:class:`~repro.index.provider.NeighborProvider` backend; trackers that
run a non-cell-backed backend (k-d tree, R-tree) keep a bare
:class:`CellMap` alongside it for the skeletal-grid bookkeeping.
"""

from __future__ import annotations

import math
from operator import add
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.geometry.coordstore import CoordStore
from repro.streams.objects import StreamObject

Coord = Tuple[int, ...]


def cell_side_for_range(theta_range: float, dimensions: int) -> float:
    """Return the grid side length whose cell diagonal equals θr."""
    if theta_range <= 0:
        raise ValueError("theta_range must be positive")
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    return theta_range / math.sqrt(dimensions)


# ----------------------------------------------------------------------
# Neighbor-cell offset tables (module-level, shared across instances)
# ----------------------------------------------------------------------

#: Relative slack of the sphere-pruning predicate. Pruning must be
#: conservative: a cell whose true minimum gap to the base cell equals
#: θr exactly can host a boundary-inclusive neighbor pair, and the gap
#: arithmetic here differs from the canonical refinement summation by a
#: few ulps. The slack only ever *admits* extra cells (refinement
#: discards them), never drops one.
OFFSET_PRUNE_EPS = 1e-9

_FULL_OFFSETS: Dict[Tuple[int, int], Tuple[Coord, ...]] = {}
_PRUNED_OFFSETS: Dict[Tuple[int, int, float], Tuple[Coord, ...]] = {}


def min_cell_gap_sq(offset: Sequence[int], side: float) -> float:
    """Minimum squared distance between two grid cells ``offset`` apart.

    Cells are closed axis-aligned cubes of the given ``side``; the
    minimum is attained corner-to-corner, ``(|delta| - 1) * side`` per
    dimension with a nonzero delta (0.0 for touching/overlapping cells).
    """
    sq = 0.0
    for delta in offset:
        if delta:
            gap = (abs(delta) - 1) * side
            sq += gap * gap
    return sq


def full_offset_table(dimensions: int, reach: int) -> Tuple[Coord, ...]:
    """The unpruned ``(2*reach + 1)^d`` relative-cell offset cube.

    Memoized per ``(dimensions, reach)`` and shared across instances;
    offsets are in lexicographic order (first dimension slowest).
    """
    key = (dimensions, reach)
    table = _FULL_OFFSETS.get(key)
    if table is None:
        span = range(-reach, reach + 1)
        offsets: List[Coord] = [()]
        for _ in range(dimensions):
            offsets = [
                prefix + (delta,) for prefix in offsets for delta in span
            ]
        table = _FULL_OFFSETS[key] = tuple(offsets)
    return table


def sphere_pruned_offsets(
    dimensions: int, reach: int, side_over_range: float
) -> Tuple[Coord, ...]:
    """The offsets a θr range query must visit, sphere-pruned.

    Drops every offset of the full cube whose minimum cell-to-cell gap
    exceeds θr — those cells cannot intersect the θr-ball of *any* query
    point in the base cell. The predicate is evaluated in units of θr
    (``side_over_range`` is ``cell_side / θr``), so the table depends
    only on ``(dimensions, reach, side/θr)`` and is memoized per that
    key at module level, shared by every :class:`GridIndex` instance
    (and by the ``auto`` backend's heuristic).

    With the paper's diagonal sizing (side = θr/√d, reach = ⌈√d⌉) the
    corner gap equals θr exactly for d <= 4 — nothing is prunable — but
    from 5-D on most of the cube goes (e.g. 6095 of 16807 cells remain
    at d=5), and non-diagonal sizings prune at any dimensionality.
    """
    key = (dimensions, reach, side_over_range)
    table = _PRUNED_OFFSETS.get(key)
    if table is None:
        limit = 1.0 + OFFSET_PRUNE_EPS
        table = tuple(
            offset
            for offset in full_offset_table(dimensions, reach)
            if min_cell_gap_sq(offset, side_over_range) <= limit
        )
        _PRUNED_OFFSETS[key] = table
    return table


class CellMap:
    """The θr-sized cell decomposition of the data space (SGS substrate).

    Cells are addressed by integer coordinate tuples
    ``floor(x_i / side)``; only non-empty cells are materialized. The map
    stores :class:`StreamObject` references and supports insertion,
    removal, expiration purge, and per-cell introspection — everything
    the skeletal-grid layer needs, *without* neighbor search.
    """

    def __init__(self, theta_range: float, dimensions: int):
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self.side = cell_side_for_range(theta_range, dimensions)
        self._cells: Dict[Coord, List[StreamObject]] = {}

    def cell_coord(self, coords: Sequence[float]) -> Coord:
        """Return the grid cell coordinate containing a point."""
        return tuple(int(math.floor(value / self.side)) for value in coords)

    def insert(self, obj: StreamObject) -> Coord:
        """Insert an object; returns its cell coordinate."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None:
            bucket = []
            self._cells[coord] = bucket
        bucket.append(obj)
        return coord

    def remove(self, obj: StreamObject) -> None:
        """Remove an object previously inserted (raises if absent)."""
        coord = self.cell_coord(obj.coords)
        bucket = self._cells.get(coord)
        if bucket is None or obj not in bucket:
            raise KeyError(f"object {obj.oid} not present in grid")
        bucket.remove(obj)
        if not bucket:
            del self._cells[coord]

    def purge_expired(self, window_index: int) -> int:
        """Drop every object whose last window precedes ``window_index``.

        Returns the number of objects removed. This is the only
        expiration work the lifespan-based algorithms perform.
        """
        removed: List[StreamObject] = []
        empty: List[Coord] = []
        for coord, bucket in self._cells.items():
            kept = [obj for obj in bucket if obj.last_window >= window_index]
            if len(kept) != len(bucket):
                removed.extend(
                    obj for obj in bucket if obj.last_window < window_index
                )
            if kept:
                bucket[:] = kept
            else:
                empty.append(coord)
        for coord in empty:
            del self._cells[coord]
        if removed:
            self._purged(removed)
        return len(removed)

    def _purged(self, objects: List[StreamObject]) -> None:
        """Hook: subclasses keeping auxiliary per-object state (the
        grid's coordinate store) drop the purged objects here."""

    def objects_in_cell(self, coord: Coord) -> List[StreamObject]:
        """Return the live objects stored in one cell (empty list if none)."""
        return list(self._cells.get(coord, ()))

    def occupied_cells(self) -> Iterator[Coord]:
        return iter(self._cells.keys())

    def occupied_count(self) -> int:
        """Number of non-empty cells (the ``auto`` backend's occupancy
        signal reads mean population through this)."""
        return len(self._cells)

    def cell_population(self, coord: Coord) -> int:
        return len(self._cells.get(coord, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._cells.values())

    def __iter__(self) -> Iterator[StreamObject]:
        for bucket in self._cells.values():
            yield from bucket

    def bulk_load(self, objects: Iterable[StreamObject]) -> None:
        for obj in objects:
            self.insert(obj)


class GridIndex(CellMap):
    """A dictionary-backed uniform grid with range-query search.

    Extends :class:`CellMap` with the two query operations of the
    :class:`~repro.index.provider.NeighborProvider` protocol: single
    range queries (all objects within θr of a point) and batched
    ``range_query_many`` (one candidate-gathering pass per distinct base
    cell instead of one per query). Candidate refinement runs through a
    :class:`~repro.geometry.coordstore.CoordStore`: the whole candidate
    set of a query (union of reachable buckets) is refined in one
    batched kernel call instead of a per-point coordinate loop.

    Candidate gathering is sphere-pruned and cached: the offset table is
    the module-level memoized :func:`sphere_pruned_offsets`, the
    occupied reachable buckets of each base cell are cached across
    queries (invalidated by bucket creation and bucket-emptying purges),
    and per query the cached buckets are screened against the probe (or
    probe-box) θr-ball before refinement. ``prune=False`` restores the
    uncached full-table walk for A/B measurement.
    """

    def __init__(
        self,
        theta_range: float,
        dimensions: int,
        refinement: Optional[str] = None,
        prune: bool = True,
        octant_batching: bool = True,
    ):
        super().__init__(theta_range, dimensions)
        # Neighbors of a point can lie at most ceil(sqrt(d)) cells away
        # in each dimension because theta_range == side * sqrt(d).
        self.reach = int(math.ceil(math.sqrt(self.dimensions)))
        self._sq_range = self.theta_range * self.theta_range
        self.prune = bool(prune)
        if self.prune:
            self._offsets = sphere_pruned_offsets(
                self.dimensions, self.reach, self.side / self.theta_range
            )
        else:
            self._offsets = full_offset_table(self.dimensions, self.reach)
        self._store = CoordStore(dimensions, refinement=refinement)
        self.refinement = self._store.refinement
        #: Batched queries sub-group a cell's probes per octant so each
        #: sub-group prunes against its own tighter bounding box (the
        #: whole-cell box often spans every reachable bucket and prunes
        #: nothing). ``False`` keeps the single whole-cell box for A/B.
        self.octant_batching = bool(octant_batching)
        # Per-base-cell cache of the reachable *buckets* as (offset,
        # bucket list) pairs — offsets alias the shared table tuples.
        # Buckets are aliased, not copied: in-place bucket mutations
        # (insert into an existing cell, remove leaving the cell
        # occupied, purge of part of a cell) are visible through the
        # cache for free. Only bucket *creation* (insert into an empty
        # cell) and a purge that empties a bucket — which unlinks it
        # without clearing, leaving the alias stale — change what a walk
        # would find, so only those events invalidate (every cached base
        # within reach of the affected cell is dropped).
        self._reachable_cache: Dict[
            Coord, List[Tuple[Coord, List[StreamObject]]]
        ] = {}
        # Invalidations are deferred and applied in one pass before the
        # next cached read: window slides create buckets in bursts, and
        # a burst is far cheaper to settle wholesale (often: clear)
        # than one neighborhood at a time.
        self._pending_invalidations: Set[Coord] = set()
        # Per-probe bucket pruning slack mirrors the offset-table slack.
        self._sq_prune_limit = self._sq_range * (1.0 + OFFSET_PRUNE_EPS)
        #: Gathering telemetry: probes answered, candidates handed to
        #: refinement (per probe), cold walks, and cache hits.
        self.stats = {
            "queries": 0,
            "candidates": 0,
            "walks": 0,
            "cache_hits": 0,
        }

    def insert(self, obj: StreamObject) -> Coord:
        # Store first: it validates (duplicate oid, dimensionality) and
        # raises before the cell bucket is touched, keeping both
        # structures consistent on failure.
        self._store.add(obj)
        coord = super().insert(obj)
        # A bucket born in a previously empty cell is invisible to the
        # cached walks that span the cell; drop them so they re-walk.
        if len(self._cells[coord]) == 1:
            self._invalidate_reachable(coord)
        return coord

    def remove(self, obj: StreamObject) -> None:
        super().remove(obj)  # raises before the store is touched
        self._store.remove(obj.oid)
        # No cache invalidation: a removal empties the bucket *in
        # place* (cached aliases correctly read nothing), and a later
        # re-occupation of the cell invalidates at insert time.

    def _purged(self, objects: List[StreamObject]) -> None:
        affected: Set[Coord] = set()
        for obj in objects:
            self._store.remove(obj.oid)
            affected.add(self.cell_coord(obj.coords))
        # A purge that empties a bucket unlinks it from the cell map
        # without clearing the list, so cached walks that alias it would
        # keep reporting the expired objects: drop every neighboring
        # base cell's cached candidate walk. Partially purged buckets
        # are rewritten in place and stay transparently visible.
        for coord in affected:
            if coord not in self._cells:
                self._invalidate_reachable(coord)

    def _invalidate_reachable(self, coord: Coord) -> None:
        """Mark every cached walk that spans ``coord`` stale (lazily)."""
        if self._reachable_cache or self._pending_invalidations:
            self._pending_invalidations.add(coord)

    def _flush_invalidations(self) -> None:
        """Apply deferred invalidations before serving from the cache.

        Spanning bases of an affected cell are exactly ``cell + offset``
        for the (point-symmetric) offset table. A handful of events is
        settled per-neighborhood; a burst (a window slide creating many
        buckets at once) is settled by clearing — per-event probing
        would cost more than re-walking the survivors ever saves.
        """
        pending = self._pending_invalidations
        if not pending:
            return
        cache = self._reachable_cache
        self._pending_invalidations = set()
        if not cache:
            return
        offsets = self._offsets
        if len(pending) * len(offsets) >= len(cache) * self.dimensions:
            cache.clear()
            return
        pop = cache.pop
        for coord in pending:
            for offset in offsets:
                pop(tuple(map(add, coord, offset)), None)
            if not cache:
                return

    def _reachable_buckets(
        self, base: Coord
    ) -> List[Tuple[Coord, List[StreamObject]]]:
        """The occupied cells a query from ``base`` can reach, as
        ``(offset, bucket)`` pairs (cached).

        The cold walk probes every offset of the (sphere-pruned) table —
        ``(2*reach+1)^d`` dict lookups before pruning, the dominant
        insertion cost in 4-D; repeated queries from the same base cell
        (the C-SGS common case) skip the walk entirely until an
        invalidating event lands in reach.
        """
        self._flush_invalidations()
        entry = self._reachable_cache.get(base)
        if entry is not None:
            self.stats["cache_hits"] += 1
            return entry
        self.stats["walks"] += 1
        entry = []
        cells = self._cells
        for offset in self._offsets:
            bucket = cells.get(tuple(map(add, base, offset)))
            if bucket is not None:
                entry.append((offset, bucket))
        self._reachable_cache[base] = entry
        return entry

    def _gather_candidates(
        self,
        base: Coord,
        lo: Sequence[float],
        hi: Sequence[float],
    ) -> List[StreamObject]:
        """Candidates for probes bounded by the box ``[lo, hi]``.

        Buckets whose minimum distance to the probe box exceeds θr are
        skipped (``lo == hi`` for a single probe makes this an exact
        point-to-cell sphere test) — a per-query tightening of the
        offset-table pruning that cuts the candidate sets refinement
        sees even where the table itself is not prunable (d <= 4). The
        per-axis gap² of every offset step is precomputed once per call
        (``d * (2*reach+1)`` values), so screening a bucket costs d
        table lookups. Skipping never changes results: every true
        neighbor lies in a bucket that passes, and survivors keep their
        walk order, so the refined output is byte-identical to the
        unpruned walk.
        """
        if not self.prune:
            return self._gather_unpruned(base)
        entry = self._reachable_buckets(base)
        if not entry:
            return []
        side = self.side
        reach = self.reach
        limit = self._sq_prune_limit
        # gap_sq[axis][delta + reach]: squared gap between the probe box
        # and the slab of cells ``delta`` steps from base on ``axis``.
        gap_sq = []
        for axis in range(self.dimensions):
            lo_a = lo[axis]
            hi_a = hi[axis]
            base_a = base[axis]
            row = []
            for delta in range(-reach, reach + 1):
                cell_lo = (base_a + delta) * side
                gap = cell_lo - hi_a  # probe box below the slab
                if gap <= 0.0:
                    gap = lo_a - (cell_lo + side)  # box above the slab
                    if gap <= 0.0:
                        gap = 0.0
                row.append(gap * gap)
            gap_sq.append(row)
        candidates: List[StreamObject] = []
        # When even the farthest slab combination stays within θr of the
        # probe box (always true for a box spanning the whole cell in
        # d <= 4 under diagonal sizing), screening cannot skip anything:
        # take the plain union and save the per-bucket arithmetic.
        worst = 0.0
        for row in gap_sq:
            worst += max(row)
        if worst <= limit:
            for _, bucket in entry:
                if bucket:
                    candidates.extend(bucket)
            return candidates
        for offset, bucket in entry:
            if not bucket:
                continue
            sq = 0.0
            for axis, delta in enumerate(offset):
                sq += gap_sq[axis][delta + reach]
            if sq <= limit:
                candidates.extend(bucket)
        return candidates

    def _gather_unpruned(self, base: Coord) -> List[StreamObject]:
        """Legacy gather: fresh full-table walk, no cache, no pruning.

        Kept as the ``prune=False`` escape hatch and the baseline the
        candidate-count/perf smoke benchmarks compare against.
        """
        candidates: List[StreamObject] = []
        cells = self._cells
        for offset in self._offsets:
            bucket = cells.get(tuple(map(add, base, offset)))
            if bucket:
                candidates.extend(bucket)
        return candidates

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        """Return all stored objects within θr of ``coords``.

        ``exclude_oid`` omits the query object itself when it has already
        been inserted. The whole candidate set is refined in one store
        kernel call (boundary-inclusive <= θr², canonical summation
        order — see :mod:`repro.geometry.coordstore`; the parity suite
        pins the agreement across backends and refinement modes).
        """
        base = self.cell_coord(coords)
        candidates = self._gather_candidates(base, coords, coords)
        self.stats["queries"] += 1
        self.stats["candidates"] += len(candidates)
        return self._store.refine(
            candidates, coords, self._sq_range, exclude_oid
        )

    def range_query_many(
        self, queries: Sequence[Tuple[Sequence[float], int]]
    ) -> List[List[StreamObject]]:
        """Batched range queries: ``[(coords, exclude_oid), ...]``.

        The reachable buckets depend only on the query's base cell, so
        queries are grouped by *distinct* base cell: candidates are
        gathered (and their store rows resolved) once per group — pruned
        against the bounding box of the group's probes — and all of the
        group's probes are refined in a single batched kernel sweep; on
        clustered window batches the C-SGS per-slide batch becomes one
        array pass per occupied cell.

        A cell's probes are further sub-grouped per *octant* (their
        position relative to the cell center, axis by axis): a box
        spanning the whole cell keeps every reachable bucket within θr
        in low dimensions, so the batched path pruned nothing where the
        point-query path prunes per probe. Per-octant sub-boxes are at
        most half a cell wide per axis, restoring most of that pruning
        while still amortizing the gather over the co-located probes
        (the reachable-bucket walk is cached per base cell either way).
        Sub-grouping is pure partitioning of exact refinement — results
        are byte-identical to the whole-cell box
        (``octant_batching=False`` keeps the legacy path for A/B).
        """
        if not queries:
            return []
        query_indices_by_base: Dict[Coord, List[int]] = {}
        for qi, (coords, _) in enumerate(queries):
            base = self.cell_coord(coords)
            query_indices_by_base.setdefault(base, []).append(qi)
        results: List[List[StreamObject]] = [[] for _ in queries]
        sq_range = self._sq_range
        dims = range(self.dimensions)
        side = self.side
        for base, indices in query_indices_by_base.items():
            self.stats["queries"] += len(indices)
            if self.octant_batching and len(indices) > 1:
                center = tuple(
                    (base[axis] + 0.5) * side for axis in dims
                )
                by_octant: Dict[Tuple[bool, ...], List[int]] = {}
                for qi in indices:
                    coords = queries[qi][0]
                    octant = tuple(
                        coords[axis] >= center[axis] for axis in dims
                    )
                    by_octant.setdefault(octant, []).append(qi)
                groups = list(by_octant.values())
            else:
                groups = [indices]
            for group in groups:
                probes = [queries[qi][0] for qi in group]
                if len(probes) == 1:
                    lo = hi = probes[0]
                else:
                    lo = tuple(
                        min(p[axis] for p in probes) for axis in dims
                    )
                    hi = tuple(
                        max(p[axis] for p in probes) for axis in dims
                    )
                candidates = self._gather_candidates(base, lo, hi)
                self.stats["candidates"] += len(candidates) * len(group)
                batch = self._store.batch(candidates)
                refined = self._store.refine_many(
                    batch,
                    probes,
                    sq_range,
                    [queries[qi][1] for qi in group],
                )
                for qi, matches in zip(group, refined):
                    results[qi] = matches
        return results
