"""A k-d tree for static range-query search.

The streaming algorithms use the uniform grid index (whose cell
decomposition doubles as the SGS substrate), but the summarizers that
post-process a *static* cluster (SkPS's neighborhood coverage, ad-hoc
analyses) only need one-shot range search. A balanced k-d tree built in
``O(n log n)`` offers that without choosing a grid resolution, and the
index ablation compares the two on the library's workloads.

Implementation: median-split construction on alternating axes down to
*bucket leaves* of up to ``leaf_size`` points. Leaf points are laid out
as contiguous row spans of an internal
:class:`~repro.geometry.coordstore.CoordStore`, so leaf refinement runs
through the store's batched kernels (one array sweep per visited leaf on
the vector path) instead of a per-point Python loop. Range queries
descend only into sub-trees whose bounding slabs intersect the query
ball.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

from repro.geometry.coordstore import CoordStore, canonical_sq_dist
from repro.streams.objects import StreamObject


class _Leaf:
    """A bucket of points stored as rows ``[start, stop)`` of the store."""

    __slots__ = ("start", "stop")

    def __init__(self, start: int, stop: int):
        self.start = start
        self.stop = stop


class _Inner:
    """Axis split: left holds coords <= split, right holds >= split."""

    __slots__ = ("axis", "split", "left", "right")

    def __init__(self, axis: int, split: float):
        self.axis = axis
        self.split = split
        self.left: "_Node" = None
        self.right: "_Node" = None


_Node = Optional[Union[_Leaf, _Inner]]


class KDTree:
    """Static, balanced k-d tree over stream objects."""

    def __init__(
        self,
        objects: Sequence[StreamObject],
        dimensions: int,
        leaf_size: Optional[int] = None,
        refinement: Optional[str] = None,
    ):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        if leaf_size is not None and leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self.dimensions = dimensions
        self._size = len(objects)
        # Leaf spans index rows positionally; oids may repeat.
        self._store = CoordStore(
            dimensions, refinement=refinement, track_oids=False
        )
        self.refinement = self._store.refinement
        if leaf_size is None:
            # Vectorized leaves want enough points per span to amortize
            # the kernel call; scalar leaves favour tighter pruning.
            leaf_size = 64 if self.refinement == "vector" else 16
        self.leaf_size = leaf_size
        #: Cumulative leaf rows handed to range-query refinement — the
        #: tree's share of the backend candidate-set telemetry.
        self.candidates_scanned = 0
        self._root: _Node = (
            self._build(list(objects), 0) if objects else None
        )

    def _build(self, objects: List[StreamObject], depth: int) -> _Node:
        if len(objects) <= self.leaf_size:
            start = len(self._store)
            for obj in objects:
                self._store.add(obj)
            return _Leaf(start, start + len(objects))
        axis = depth % self.dimensions
        objects.sort(key=lambda obj: obj.coords[axis])
        median = len(objects) // 2
        node = _Inner(axis, objects[median].coords[axis])
        node.left = self._build(objects[:median], depth + 1)
        node.right = self._build(objects[median:], depth + 1)
        return node

    def __len__(self) -> int:
        return self._size

    def range_query(
        self,
        coords: Sequence[float],
        radius: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """All stored objects within ``radius`` of ``coords``."""
        if len(coords) != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        result: List[StreamObject] = []
        if self._root is None:
            return result
        sq_radius = radius * radius
        stack = [self._root]
        while stack:
            node = stack.pop()
            if type(node) is _Leaf:
                self.candidates_scanned += node.stop - node.start
                result.extend(
                    self._store.refine_span(
                        node.start, node.stop, coords, sq_radius, exclude_oid
                    )
                )
                continue
            delta = coords[node.axis] - node.split
            if delta <= radius:  # left slab (coords <= split) reachable
                stack.append(node.left)
            if delta >= -radius:  # right slab (coords >= split) reachable
                stack.append(node.right)
        return result

    def nearest(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> Optional[StreamObject]:
        """Nearest stored object to ``coords`` (None when empty)."""
        best: Optional[StreamObject] = None
        best_sq = math.inf

        def visit(node: _Node) -> None:
            nonlocal best, best_sq
            if node is None:
                return
            if type(node) is _Leaf:
                for obj in self._store.span_objects(node.start, node.stop):
                    if obj.oid == exclude_oid:
                        continue
                    sq = canonical_sq_dist(coords, obj.coords)
                    if sq < best_sq:
                        best_sq = sq
                        best = obj
                return
            delta = coords[node.axis] - node.split
            near, far = (
                (node.left, node.right)
                if delta <= 0
                else (node.right, node.left)
            )
            visit(near)
            if delta * delta < best_sq:
                visit(far)

        visit(self._root)
        return best
