"""A k-d tree for static range-query search.

The streaming algorithms use the uniform grid index (whose cell
decomposition doubles as the SGS substrate), but the summarizers that
post-process a *static* cluster (SkPS's neighborhood coverage, ad-hoc
analyses) only need one-shot range search. A balanced k-d tree built in
``O(n log n)`` offers that without choosing a grid resolution, and the
index ablation compares the two on the library's workloads.

Implementation: median-split construction on alternating axes over the
point array; range queries descend only into sub-trees whose bounding
slabs intersect the query ball.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.streams.objects import StreamObject


class _Node:
    __slots__ = ("obj", "axis", "left", "right")

    def __init__(self, obj: StreamObject, axis: int):
        self.obj = obj
        self.axis = axis
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class KDTree:
    """Static, balanced k-d tree over stream objects."""

    def __init__(self, objects: Sequence[StreamObject], dimensions: int):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self._size = len(objects)
        self._root = self._build(list(objects), 0)

    def _build(
        self, objects: List[StreamObject], depth: int
    ) -> Optional[_Node]:
        if not objects:
            return None
        axis = depth % self.dimensions
        objects.sort(key=lambda obj: obj.coords[axis])
        median = len(objects) // 2
        node = _Node(objects[median], axis)
        node.left = self._build(objects[:median], depth + 1)
        node.right = self._build(objects[median + 1 :], depth + 1)
        return node

    def __len__(self) -> int:
        return self._size

    def range_query(
        self,
        coords: Sequence[float],
        radius: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """All stored objects within ``radius`` of ``coords``."""
        if len(coords) != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        result: List[StreamObject] = []
        sq_radius = radius * radius
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            delta = coords[node.axis] - node.obj.coords[node.axis]
            total = 0.0
            for a, b in zip(coords, node.obj.coords):
                diff = a - b
                total += diff * diff
                if total > sq_radius:
                    break
            else:
                if node.obj.oid != exclude_oid:
                    result.append(node.obj)
            if delta <= radius:
                stack.append(node.left)
            if delta >= -radius:
                stack.append(node.right)
        return result

    def nearest(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> Optional[StreamObject]:
        """Nearest stored object to ``coords`` (None when empty)."""
        best: Optional[StreamObject] = None
        best_sq = math.inf

        def visit(node: Optional[_Node]) -> None:
            nonlocal best, best_sq
            if node is None:
                return
            if node.obj.oid != exclude_oid:
                sq = sum(
                    (a - b) ** 2 for a, b in zip(coords, node.obj.coords)
                )
                if sq < best_sq:
                    best_sq = sq
                    best = node.obj
            delta = coords[node.axis] - node.obj.coords[node.axis]
            near, far = (
                (node.left, node.right) if delta <= 0 else (node.right, node.left)
            )
            visit(near)
            if delta * delta < best_sq:
                visit(far)

        visit(self._root)
        return best
