"""Pluggable neighbor-search backends: the ``NeighborProvider`` seam.

The paper's central cost argument (Section 5.3) is that range-query
search dominates per-object insertion cost in C-SGS, Extra-N, and
incremental DBSCAN alike. This module turns that search into a
first-class, swappable subsystem: every consumer of neighbor search
(``NeighborhoodTracker``, C-SGS, Extra-N, incremental DBSCAN, shared
multi-query execution) is written against the :class:`NeighborProvider`
protocol rather than a concrete index, and backends are selected by name
through :func:`make_provider` (``config.py`` and the CLI expose the same
names).

Four backends conform today:

* ``grid`` — :class:`~repro.index.grid_index.GridIndex`, the paper's
  θr-diagonal uniform grid (default; also the SGS cell substrate), with
  sphere-pruned, cached candidate gathering;
* ``kdtree`` — :class:`KDTreeProvider`, a dynamic wrapper that keeps a
  balanced static :class:`~repro.index.kdtree.KDTree` over committed
  objects plus a small insertion buffer, rebuilding amortized;
* ``rtree`` — :class:`RTreeProvider`, point entries in the Guttman
  :class:`~repro.index.rtree.RTree` with exact distance refinement;
* ``auto`` — :class:`AutoProvider`, which picks grid vs k-d tree vs
  R-tree from the dimensionality (size of the pruned offset table),
  the observed cell occupancy, and the removal churn, switching
  adaptively as the stream evolves.

All backends answer the *same* fixed-radius (θr) queries and are
checked object-for-object identical by the parity test suite.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.geometry.coordstore import (
    CoordStore,
    resolve_refinement,
    within_sq_range,
)
from repro.geometry.mbr import MBR
from repro.index.grid_index import (
    CellMap,
    GridIndex,
    sphere_pruned_offsets,
)
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.streams.objects import StreamObject

#: One batched query: the probe coordinates and the oid to exclude
#: (typically the probe object itself, already inserted).
Query = Tuple[Sequence[float], int]

#: Backward-compatible alias. Exact refinement — squared distance
#: <= sq_range, boundary inclusive, canonical summation order — lives in
#: :mod:`repro.geometry.coordstore`; every backend refines through the
#: same kernels and the parity suite pins the agreement.
_within_sq_range = within_sq_range


@runtime_checkable
class NeighborProvider(Protocol):
    """What the clustering layer requires of a neighbor-search backend.

    The query radius θr is fixed at construction (it is a query
    parameter, not a per-call one — every consumer issues the same
    radius for the lifetime of a query pipeline).
    """

    theta_range: float
    dimensions: int

    def insert(self, obj: StreamObject) -> object: ...

    def remove(self, obj: StreamObject) -> None: ...

    def purge_expired(self, window_index: int) -> int: ...

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]: ...

    def range_query_many(
        self, queries: Sequence[Query]
    ) -> List[List[StreamObject]]: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[StreamObject]: ...


class _FallbackBatchMixin:
    """Default ``range_query_many``: one single-probe query per entry.

    Backends with a genuinely batched plan (the grid shares candidate
    gathering across probes in the same cell) override this.
    """

    def range_query_many(
        self, queries: Sequence[Query]
    ) -> List[List[StreamObject]]:
        return [
            self.range_query(coords, exclude_oid=exclude_oid)
            for coords, exclude_oid in queries
        ]


class KDTreeProvider(_FallbackBatchMixin):
    """Dynamic neighbor search over the static balanced k-d tree.

    Mutations are cheap: inserts land in a buffer scanned linearly at
    query time, removals tombstone entries still inside the committed
    tree. Once the churn (buffer + tombstones) exceeds
    ``rebuild_fraction`` of the live population (and ``min_buffer``),
    the tree is rebuilt from the live objects — the classic amortized
    logarithmic-rebuilding scheme, O(log n) average query with O(n log n)
    rebuild cost spread over O(n) mutations.
    """

    def __init__(
        self,
        theta_range: float,
        dimensions: int,
        rebuild_fraction: float = 0.25,
        min_buffer: int = 64,
        refinement: Optional[str] = None,
    ):
        if theta_range <= 0:
            raise ValueError("theta_range must be positive")
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self.refinement = resolve_refinement(refinement)
        self._rebuild_fraction = float(rebuild_fraction)
        self._min_buffer = int(min_buffer)
        self._objects: Dict[int, StreamObject] = {}
        self._tree: Optional[KDTree] = None
        self._pending: Dict[int, StreamObject] = {}
        # Insertion-buffer coordinates, scanned with one store kernel
        # call per query instead of a per-point Python loop.
        self._buffer = CoordStore(self.dimensions, refinement=self.refinement)
        self._stale = 0  # removed objects still present in _tree
        self.rebuilds = 0
        #: Gathering telemetry (candidate-set bench): probes answered
        #: and candidate rows scanned (tree leaves + insertion buffer).
        self.stats = {"queries": 0, "candidates": 0}

    def insert(self, obj: StreamObject) -> None:
        # Buffer first: it validates (duplicate oid, dimensionality) and
        # raises before the membership dicts are touched.
        self._buffer.add(obj)
        self._objects[obj.oid] = obj
        self._pending[obj.oid] = obj
        self._maybe_rebuild()

    def remove(self, obj: StreamObject) -> None:
        if self._objects.pop(obj.oid, None) is None:
            raise KeyError(f"object {obj.oid} not present in kd-tree")
        if self._pending.pop(obj.oid, None) is None:
            self._stale += 1
        else:
            self._buffer.remove(obj.oid)
        self._maybe_rebuild()

    def purge_expired(self, window_index: int) -> int:
        expired = [
            obj
            for obj in self._objects.values()
            if obj.last_window < window_index
        ]
        # Tombstone directly instead of calling remove(): one rebuild
        # decision after the sweep, not one per expired object.
        for obj in expired:
            del self._objects[obj.oid]
            if self._pending.pop(obj.oid, None) is None:
                self._stale += 1
            else:
                self._buffer.remove(obj.oid)
        if expired:
            self._maybe_rebuild()
        return len(expired)

    def _maybe_rebuild(self) -> None:
        churn = len(self._pending) + self._stale
        if churn <= self._min_buffer:
            return
        if churn > self._rebuild_fraction * max(1, len(self._objects)):
            self._rebuild()

    def _rebuild(self) -> None:
        self.rebuilds += 1
        if self._objects:
            self._tree = KDTree(
                list(self._objects.values()),
                self.dimensions,
                refinement=self.refinement,
            )
        else:
            self._tree = None
        self._pending = {}
        self._buffer = CoordStore(self.dimensions, refinement=self.refinement)
        self._stale = 0

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        result: List[StreamObject] = []
        scanned = len(self._buffer)
        if self._tree is not None:
            scanned -= self._tree.candidates_scanned
            for obj in self._tree.range_query(
                coords, self.theta_range, exclude_oid=exclude_oid
            ):
                # Skip tombstoned entries the tree still holds; the
                # pending buffer wins when an oid was removed and
                # re-inserted before a rebuild (the buffer scan below
                # reports it, so counting the stale copy would duplicate).
                if obj.oid in self._pending:
                    continue
                if self._objects.get(obj.oid) is obj:
                    result.append(obj)
            scanned += self._tree.candidates_scanned
        sq_range = self.theta_range * self.theta_range
        result.extend(
            self._buffer.within_radius(coords, sq_range, exclude_oid)
        )
        self.stats["queries"] += 1
        self.stats["candidates"] += scanned
        return result

    def range_query_many(
        self, queries: Sequence[Query]
    ) -> List[List[StreamObject]]:
        # Commit the pending buffer before a batch when the batch's
        # linear scans over it would cost more than one O(n log n)
        # rebuild; small slides over large trees keep the buffer.
        churn = len(self._pending) + self._stale
        if churn > self._min_buffer:
            n = max(len(self._objects), 2)
            if len(queries) * churn > n * n.bit_length():
                self._rebuild()
        return super().range_query_many(queries)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter(list(self._objects.values()))


class RTreeProvider(_FallbackBatchMixin):
    """Neighbor search through the Guttman R-tree.

    Objects are stored as degenerate point MBRs; a range query searches
    the tree with the bounding box of the θr-ball and refines candidates
    with the exact squared distance.
    """

    def __init__(
        self,
        theta_range: float,
        dimensions: int,
        max_entries: int = 8,
        refinement: Optional[str] = None,
    ):
        if theta_range <= 0:
            raise ValueError("theta_range must be positive")
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self._tree = RTree(max_entries=max_entries)
        self._entries: Dict[int, Tuple[MBR, StreamObject]] = {}
        # Leaf-entry refinement: the tree's candidate list is refined in
        # one store kernel call per query.
        self._store = CoordStore(self.dimensions, refinement=refinement)
        self.refinement = self._store.refinement
        #: Gathering telemetry (candidate-set bench): probes answered
        #: and leaf entries the ball-box search handed to refinement.
        self.stats = {"queries": 0, "candidates": 0}

    def insert(self, obj: StreamObject) -> None:
        # Store first: it validates (duplicate oid, dimensionality) and
        # raises before the tree or the entry map is touched.
        self._store.add(obj)
        box = MBR.from_point(obj.coords)
        self._tree.insert(box, obj)
        self._entries[obj.oid] = (box, obj)

    def remove(self, obj: StreamObject) -> None:
        entry = self._entries.pop(obj.oid, None)
        if entry is None:
            raise KeyError(f"object {obj.oid} not present in r-tree")
        self._tree.delete(entry[0], entry[1])
        self._store.remove(obj.oid)

    def purge_expired(self, window_index: int) -> int:
        expired = [
            obj
            for _, obj in self._entries.values()
            if obj.last_window < window_index
        ]
        for obj in expired:
            self.remove(obj)
        return len(expired)

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        radius = self.theta_range
        ball = MBR(
            tuple(value - radius for value in coords),
            tuple(value + radius for value in coords),
        )
        candidates = self._tree.search(ball)
        self.stats["queries"] += 1
        self.stats["candidates"] += len(candidates)
        return self._store.refine(
            candidates, coords, radius * radius, exclude_oid
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter([obj for _, obj in self._entries.values()])


class AutoProvider:
    """Adaptive backend selection: grid vs k-d tree, by observed shape.

    The grid wins when its neighbor-cell walk is cheap (low
    dimensionality keeps the sphere-pruned offset table small) or when
    cells are densely occupied (one walk gathers many candidates that
    refine in one kernel sweep); the k-d tree wins on sparse
    high-dimensional data — on the 4-D STT workload it beats the grid
    outright. ``auto`` encodes exactly that rule:

    * at construction, if the memoized
      :func:`~repro.index.grid_index.sphere_pruned_offsets` table has at
      most ``walk_budget`` entries the grid is chosen for good (its walk
      is cheap at any occupancy); otherwise the k-d tree starts;
    * while running, a :class:`~repro.index.grid_index.CellMap` observes
      mean occupancy of the occupied θr-cells; every ``check_interval``
      mutations the choice is revisited with a hysteresis band
      (``>= dense_occupancy`` switches to the grid,
      ``< sparse_occupancy`` back to the trees) and a switch rebuilds
      the new backend from the live objects;
    * among the trees, the R-tree is picked over the k-d tree when the
      workload is *very* sparse (mean occupancy below
      ``rtree_occupancy`` — mostly singleton cells, where the R-tree's
      ball-box search visits few leaves) **and** mutation-heavy (the
      fraction of removals/purges among recent mutations is at least
      ``rtree_churn``): the R-tree deletes in place while the k-d tree
      tombstones and pays amortized full rebuilds. A half-churn
      hysteresis keeps it from flapping back to the k-d tree on a
      single quiet interval.

    The observer CellMap doubles as the SGS cell substrate: consumers
    discover it through :func:`cell_substrate`, so C-SGS on ``auto``
    keeps exactly one cell bookkeeping structure, as with the plain
    grid backend. All backends are answer-identical (the parity and
    golden suites pin it), so a switch is a pure performance decision.
    """

    def __init__(
        self,
        theta_range: float,
        dimensions: int,
        refinement: Optional[str] = None,
        walk_budget: int = 200,
        check_interval: int = 256,
        sparse_occupancy: float = 2.0,
        dense_occupancy: float = 4.0,
        rtree_occupancy: float = 1.15,
        rtree_churn: float = 0.35,
    ):
        if theta_range <= 0:
            raise ValueError("theta_range must be positive")
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if not 0 < sparse_occupancy <= dense_occupancy:
            raise ValueError(
                "need 0 < sparse_occupancy <= dense_occupancy"
            )
        if rtree_occupancy > sparse_occupancy:
            raise ValueError(
                "rtree_occupancy must not exceed sparse_occupancy"
            )
        if not 0 < rtree_churn <= 1:
            raise ValueError("rtree_churn must be in (0, 1]")
        self.theta_range = float(theta_range)
        self.dimensions = int(dimensions)
        self.refinement = resolve_refinement(refinement)
        #: Occupancy observer and SGS cell substrate (maintained here).
        self.cells = CellMap(theta_range, dimensions)
        reach = int(math.ceil(math.sqrt(self.dimensions)))
        self.walk_cost = len(
            sphere_pruned_offsets(
                self.dimensions, reach, self.cells.side / self.theta_range
            )
        )
        self._walk_budget = int(walk_budget)
        self._check_interval = int(check_interval)
        self._sparse_occupancy = float(sparse_occupancy)
        self._dense_occupancy = float(dense_occupancy)
        self._rtree_occupancy = float(rtree_occupancy)
        self._rtree_churn = float(rtree_churn)
        self.backend_name = (
            "grid" if self.walk_cost <= self._walk_budget else "kdtree"
        )
        self._inner = self._make(self.backend_name)
        self.switches = 0
        self._mutations = 0
        self._recent_removals = 0
        self._carried_stats: Dict[str, int] = {}

    def _make(self, name: str):
        if name == "grid":
            return GridIndex(
                self.theta_range, self.dimensions, refinement=self.refinement
            )
        if name == "rtree":
            return RTreeProvider(
                self.theta_range, self.dimensions, refinement=self.refinement
            )
        return KDTreeProvider(
            self.theta_range, self.dimensions, refinement=self.refinement
        )

    def _switch(self, name: str) -> None:
        old = self._inner
        for key, value in old.stats.items():
            self._carried_stats[key] = self._carried_stats.get(key, 0) + value
        replacement = self._make(name)
        for obj in old:
            replacement.insert(obj)
        self._inner = replacement
        self.backend_name = name
        self.switches += 1

    def _note_mutations(self, count: int = 1, removals: int = 0) -> None:
        self._mutations += count
        self._recent_removals += removals
        if self._mutations >= self._check_interval:
            self._evaluate()
            self._mutations = 0
            self._recent_removals = 0

    def _tree_choice(self, occupancy: float) -> str:
        """Which tree serves a sparse workload: the k-d tree by default,
        the R-tree when cells are near-singleton *and* churn is heavy
        (in-place deletion beats tombstone-and-rebuild)."""
        churn = self._recent_removals / max(1, self._mutations)
        if self.backend_name == "rtree":
            # Hysteresis: stay until churn halves or occupancy recovers.
            if (
                occupancy < self._rtree_occupancy
                and churn >= self._rtree_churn / 2
            ):
                return "rtree"
            return "kdtree"
        if occupancy < self._rtree_occupancy and churn >= self._rtree_churn:
            return "rtree"
        return "kdtree"

    def _evaluate(self) -> None:
        if self.walk_cost <= self._walk_budget:
            return  # the walk is cheap at any occupancy: the grid stays
        occupied = self.cells.occupied_count()
        if not occupied:
            return
        occupancy = len(self._inner) / occupied
        if occupancy >= self._dense_occupancy:
            if self.backend_name != "grid":
                self._switch("grid")
        elif occupancy < self._sparse_occupancy:
            choice = self._tree_choice(occupancy)
            if self.backend_name != choice:
                self._switch(choice)

    @property
    def stats(self) -> Dict[str, int]:
        """Gathering telemetry, aggregated across backend switches."""
        merged = dict(self._carried_stats)
        for key, value in self._inner.stats.items():
            merged[key] = merged.get(key, 0) + value
        return merged

    def insert(self, obj: StreamObject):
        # The inner backend validates (duplicate oid, dimensionality)
        # and raises before the observer CellMap is touched.
        self._inner.insert(obj)
        coord = self.cells.insert(obj)
        self._note_mutations()
        return coord

    def remove(self, obj: StreamObject) -> None:
        self._inner.remove(obj)  # raises before the observer is touched
        self.cells.remove(obj)
        self._note_mutations(removals=1)

    def purge_expired(self, window_index: int) -> int:
        purged = self._inner.purge_expired(window_index)
        self.cells.purge_expired(window_index)
        if purged:
            self._note_mutations(purged, removals=purged)
        return purged

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        return self._inner.range_query(coords, exclude_oid=exclude_oid)

    def range_query_many(
        self, queries: Sequence[Query]
    ) -> List[List[StreamObject]]:
        return self._inner.range_query_many(queries)

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter(self._inner)


def cell_substrate(provider) -> Optional[CellMap]:
    """The :class:`CellMap` a provider itself maintains, if any.

    The grid backend *is* its cell map; the ``auto`` backend maintains
    an observer CellMap alongside whichever search backend is active.
    Consumers that need the SGS cell substrate (the tracker, shared
    execution) use this to avoid double bookkeeping; ``None`` means the
    backend is search-only (k-d tree, R-tree) and the consumer keeps its
    own CellMap.
    """
    if isinstance(provider, CellMap):
        return provider
    cells = getattr(provider, "cells", None)
    return cells if isinstance(cells, CellMap) else None


#: Registry of selectable backends; config.py and the CLI validate
#: against these names.
BACKENDS = {
    "auto": AutoProvider,
    "grid": GridIndex,
    "kdtree": KDTreeProvider,
    "rtree": RTreeProvider,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_provider` (sorted, for help text)."""
    return tuple(sorted(BACKENDS))


def validate_backend(backend: str) -> str:
    """Return ``backend`` if registered, else raise the canonical error."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown index backend {backend!r}; "
            f"choose one of {', '.join(available_backends())}"
        )
    return backend


def make_provider(
    backend: str,
    theta_range: float,
    dimensions: int,
    refinement: Optional[str] = None,
) -> NeighborProvider:
    """Construct the named neighbor-search backend.

    ``refinement`` selects the distance-refinement kernel path
    (``auto`` / ``scalar`` / ``vector``; see
    :mod:`repro.geometry.coordstore`). ``None`` means the process-wide
    default (``auto``: vectorized when NumPy is available).
    """
    return BACKENDS[validate_backend(backend)](
        theta_range, dimensions, refinement=refinement
    )


def resolve_provider(
    provider: Optional[NeighborProvider],
    backend: Optional[str],
    theta_range: float,
    dimensions: int,
    refinement: Optional[str] = None,
) -> NeighborProvider:
    """Resolve the provider/backend constructor convention every
    consumer shares: an instance and a name are mutually exclusive, and
    neither means the default grid backend. A ready instance already
    fixed its refinement path, so combining one with ``refinement`` is
    rejected."""
    if provider is not None and backend is not None:
        raise ValueError("pass either a provider instance or a backend name")
    if provider is None:
        return make_provider(
            backend or "grid", theta_range, dimensions, refinement=refinement
        )
    if refinement is not None:
        raise ValueError(
            "refinement is fixed by the provider instance; "
            "pass a backend name to choose one"
        )
    return provider


def batched_neighborhoods(
    provider: NeighborProvider, objects: Sequence[StreamObject]
):
    """Bulk-insert ``objects`` and answer them with one batched pass.

    Yields ``(obj, placed, known)`` per object in arrival order, where
    ``placed`` is whatever ``provider.insert`` returned (the cell coord
    for cell-backed providers) and ``known`` is the neighbor list
    filtered to objects already yielded — i.e. the later half of each
    intra-batch pair is credited when the later object is processed, so
    consuming this generator is equivalent to object-at-a-time
    insert-then-query. Anything else the provider returns (e.g.
    pre-populated objects) flows through unchanged.

    The whole batch is inserted before the first yield; if the consumer
    raises (or abandons the generator) mid-iteration, the remaining
    objects stay in the provider without consumer-side state. Callers
    treating a consumption failure as recoverable must remove the
    unprocessed objects themselves.
    """
    objects = list(objects)
    placed = [provider.insert(obj) for obj in objects]
    neighbor_lists = provider.range_query_many(
        [(obj.coords, obj.oid) for obj in objects]
    )
    pending = {obj.oid for obj in objects}
    for obj, ret, neighbors in zip(objects, placed, neighbor_lists):
        pending.discard(obj.oid)
        yield obj, ret, [nb for nb in neighbors if nb.oid not in pending]
