"""Index substrate: grid index for range queries, R-tree, feature grid."""

from repro.index.feature_grid import FeatureGridIndex
from repro.index.grid_index import GridIndex, cell_side_for_range
from repro.index.rtree import RTree

__all__ = ["FeatureGridIndex", "GridIndex", "RTree", "cell_side_for_range"]
