"""Index substrate: pluggable neighbor-search backends + feature grid.

Neighbor search is a first-class, swappable subsystem: the
:class:`~repro.index.provider.NeighborProvider` protocol is what every
clustering consumer is written against, with ``grid`` / ``kdtree`` /
``rtree`` backends selectable via :func:`~repro.index.provider.make_provider`.
"""

from repro.index.feature_grid import FeatureGridIndex
from repro.index.grid_index import (
    CellMap,
    GridIndex,
    cell_side_for_range,
    full_offset_table,
    min_cell_gap_sq,
    sphere_pruned_offsets,
)
from repro.index.kdtree import KDTree
from repro.index.provider import (
    BACKENDS,
    AutoProvider,
    KDTreeProvider,
    NeighborProvider,
    RTreeProvider,
    available_backends,
    cell_substrate,
    make_provider,
)
from repro.index.rtree import RTree

__all__ = [
    "AutoProvider",
    "BACKENDS",
    "CellMap",
    "FeatureGridIndex",
    "GridIndex",
    "KDTree",
    "KDTreeProvider",
    "NeighborProvider",
    "RTree",
    "RTreeProvider",
    "available_backends",
    "cell_side_for_range",
    "cell_substrate",
    "full_offset_table",
    "make_provider",
    "min_cell_gap_sq",
    "sphere_pruned_offsets",
]
