"""An R-tree (Guttman, quadratic split) over minimum bounding rectangles.

The Pattern Base uses this as its *locational feature index*
(Section 7.1): archived clusters are indexed by the MBR of their SGS so
position-sensitive matching queries can retrieve the overlapping
candidates without scanning the archive.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.geometry.mbr import MBR


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (MBR, value). Inner entries: (MBR, _Node).
        self.entries: List[Tuple[MBR, Any]] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> MBR:
        box = self.entries[0][0]
        for other, _ in self.entries[1:]:
            box = box.union(other)
        return box


class RTree:
    """Dynamic R-tree with Guttman's quadratic split.

    Supports insertion, exact-entry deletion, intersection search, and
    point queries. ``max_entries`` defaults to 8, ``min_entries`` to
    ``max_entries // 2`` (standard fill factors).
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = (
            max_entries // 2 if min_entries is None else min_entries
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries/2]")
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, box: MBR, value: Any) -> None:
        """Insert a value keyed by its bounding box."""
        leaf = self._choose_leaf(self._root, box)
        leaf.entries.append((box, value))
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            self._split(leaf)
        else:
            self._enlarge_upward(leaf, box)

    def _enlarge_upward(self, node: _Node, box: MBR) -> None:
        """Grow ancestor entry boxes to cover a newly inserted box."""
        while node.parent is not None:
            parent = node.parent
            for i, (entry_box, child) in enumerate(parent.entries):
                if child is node:
                    if not entry_box.contains(box):
                        parent.entries[i] = (entry_box.union(box), node)
                    break
            node = parent

    def _choose_leaf(self, node: _Node, box: MBR) -> _Node:
        while not node.leaf:
            best = None
            best_key: Tuple[float, float] = (float("inf"), float("inf"))
            for child_box, child in node.entries:
                key = (child_box.enlargement(box), child_box.volume())
                if key < best_key:
                    best_key = key
                    best = child
            node = best
        return node

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overflowing node, propagating upward."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a][0]
        box_b = entries[seed_b][0]
        remaining = [
            entry for i, entry in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force assignment when one group must absorb the rest to
            # reach the minimum fill.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            if need_a >= len(remaining):
                group_a.extend(remaining)
                for entry_box, _ in remaining:
                    box_a = box_a.union(entry_box)
                break
            if need_b >= len(remaining):
                group_b.extend(remaining)
                for entry_box, _ in remaining:
                    box_b = box_b.union(entry_box)
                break
            # Pick the entry with the greatest preference difference.
            best_index = 0
            best_diff = -1.0
            best_to_a = True
            for i, (entry_box, _) in enumerate(remaining):
                grow_a = box_a.enlargement(entry_box)
                grow_b = box_b.enlargement(entry_box)
                diff = abs(grow_a - grow_b)
                if diff > best_diff:
                    best_diff = diff
                    best_index = i
                    best_to_a = grow_a < grow_b
            entry = remaining.pop(best_index)
            if best_to_a:
                group_a.append(entry)
                box_a = box_a.union(entry[0])
            else:
                group_b.append(entry)
                box_b = box_b.union(entry[0])

        sibling = _Node(leaf=node.leaf)
        node.entries = group_a
        sibling.entries = group_b
        if not node.leaf:
            for _, child in sibling.entries:
                child.parent = sibling

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [(box_a, node), (box_b, sibling)]
            node.parent = new_root
            sibling.parent = new_root
            self._root = new_root
            return
        # Replace node's entry box and add the sibling.
        for i, (_, child) in enumerate(parent.entries):
            if child is node:
                parent.entries[i] = (box_a, node)
                break
        parent.entries.append((box_b, sibling))
        sibling.parent = parent
        if len(parent.entries) > self.max_entries:
            self._split(parent)
        else:
            self._tighten_upward(parent)

    @staticmethod
    def _pick_seeds(entries: List[Tuple[MBR, Any]]) -> Tuple[int, int]:
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).volume()
                    - entries[i][0].volume()
                    - entries[j][0].volume()
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    def _tighten_upward(self, node: Optional[_Node]) -> None:
        while node is not None and node.parent is not None:
            parent = node.parent
            for i, (_, child) in enumerate(parent.entries):
                if child is node:
                    parent.entries[i] = (node.mbr(), node)
                    break
            node = parent

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, box: MBR) -> List[Any]:
        """Return the values of all entries whose MBR intersects ``box``."""
        result: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry_box, value in node.entries:
                    if entry_box.intersects(box):
                        result.append(value)
            else:
                for entry_box, child in node.entries:
                    if entry_box.intersects(box):
                        stack.append(child)
        return result

    def search_point(self, point: Tuple[float, ...]) -> List[Any]:
        """Return values of entries whose MBR contains the point."""
        return self.search(MBR.from_point(point))

    def items(self) -> Iterator[Tuple[MBR, Any]]:
        """Iterate over all (MBR, value) leaf entries."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(child for _, child in node.entries)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, box: MBR, value: Any) -> bool:
        """Remove one entry matching (box, value); returns success."""
        leaf = self._find_leaf(self._root, box, value)
        if leaf is None:
            return False
        leaf.entries = [
            entry for entry in leaf.entries if not (entry[0] == box and entry[1] is value)
        ]
        self._size -= 1
        self._condense(leaf)
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        return True

    def _find_leaf(self, node: _Node, box: MBR, value: Any) -> Optional[_Node]:
        if node.leaf:
            for entry_box, entry_value in node.entries:
                if entry_box == box and entry_value is value:
                    return node
            return None
        for entry_box, child in node.entries:
            if entry_box.intersects(box):
                found = self._find_leaf(child, box, value)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[Tuple[MBR, Any]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [
                    entry for entry in parent.entries if entry[1] is not node
                ]
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    for entry_box, child in node.entries:
                        orphans.extend(self._collect_leaf_entries(child))
            else:
                for i, (_, child) in enumerate(parent.entries):
                    if child is node:
                        parent.entries[i] = (node.mbr(), node)
                        break
            node = parent
        for box, value in orphans:
            self._size -= 1
            self.insert(box, value)

    def _collect_leaf_entries(self, node: _Node) -> List[Tuple[MBR, Any]]:
        if node.leaf:
            return list(node.entries)
        result: List[Tuple[MBR, Any]] = []
        for _, child in node.entries:
            result.extend(self._collect_leaf_entries(child))
        return result
