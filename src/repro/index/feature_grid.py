"""Non-locational feature grid index (Section 7.1).

The Pattern Base organizes archived clusters along four non-locational
features captured by SGS: volume (number of skeletal grid cells), status
count (number of core cells), average density, and average connectivity.
This index bins those feature vectors into a uniform 4-D grid so a
matching query can enumerate only the clusters inside a per-feature search
range, as derived from the distance threshold (Section 7.2's candidate
search).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Sequence, Tuple

Coord = Tuple[int, ...]


class FeatureGridIndex:
    """Uniform grid index over fixed-dimension feature vectors.

    ``bin_widths`` fixes the granularity per feature. Entries are
    ``(features, value)``; range queries return the values whose features
    fall inside a closed hyper-rectangle.
    """

    def __init__(self, bin_widths: Sequence[float]):
        if not bin_widths:
            raise ValueError("need at least one feature dimension")
        if any(width <= 0 for width in bin_widths):
            raise ValueError("bin widths must be positive")
        self.bin_widths = tuple(float(width) for width in bin_widths)
        self.dimensions = len(self.bin_widths)
        self._cells: Dict[Coord, List[Tuple[Tuple[float, ...], Any]]] = {}
        self._size = 0

    def _coord(self, features: Sequence[float]) -> Coord:
        if len(features) != self.dimensions:
            raise ValueError(
                f"feature vector has {len(features)} dims, expected "
                f"{self.dimensions}"
            )
        return tuple(
            int(math.floor(value / width))
            for value, width in zip(features, self.bin_widths)
        )

    def insert(self, features: Sequence[float], value: Any) -> None:
        key = self._coord(features)
        bucket = self._cells.setdefault(key, [])
        bucket.append((tuple(float(f) for f in features), value))
        self._size += 1

    def remove(self, features: Sequence[float], value: Any) -> bool:
        """Remove one entry with identical features and value identity."""
        key = self._coord(features)
        bucket = self._cells.get(key)
        if not bucket:
            return False
        for i, (stored, stored_value) in enumerate(bucket):
            if stored_value is value and all(
                abs(a - b) < 1e-12 for a, b in zip(stored, features)
            ):
                del bucket[i]
                if not bucket:
                    del self._cells[key]
                self._size -= 1
                return True
        return False

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> List[Any]:
        """Return values whose features lie in [lows, highs] per dimension."""
        if len(lows) != self.dimensions or len(highs) != self.dimensions:
            raise ValueError("range bounds must match feature dimensions")
        if not self._cells:
            return []
        # Unbounded dimensions (e.g. zero-weight features) clamp to the
        # occupied extent instead of enumerating an infinite box.
        max_keys = [
            max(key[d] for key in self._cells) for d in range(self.dimensions)
        ]
        min_keys = [
            min(key[d] for key in self._cells) for d in range(self.dimensions)
        ]
        low_cell = tuple(
            min_keys[d]
            if math.isinf(low)
            else max(min_keys[d], int(math.floor(low / width)))
            for d, (low, width) in enumerate(zip(lows, self.bin_widths))
        )
        high_cell = tuple(
            max_keys[d]
            if math.isinf(high)
            else min(max_keys[d], int(math.floor(high / width)))
            for d, (high, width) in enumerate(zip(highs, self.bin_widths))
        )
        result: List[Any] = []

        def visit(prefix: Coord) -> None:
            depth = len(prefix)
            if depth == self.dimensions:
                bucket = self._cells.get(prefix)
                if not bucket:
                    return
                for features, value in bucket:
                    inside = True
                    for f, low, high in zip(features, lows, highs):
                        if f < low or f > high:
                            inside = False
                            break
                    if inside:
                        result.append(value)
                return
            for c in range(low_cell[depth], high_cell[depth] + 1):
                visit(prefix + (c,))

        # When the query box is huge relative to occupied cells, scanning
        # occupied cells directly is cheaper than enumerating the box.
        box_cells = 1
        for low, high in zip(low_cell, high_cell):
            box_cells *= high - low + 1
            if box_cells > max(1, len(self._cells)):
                break
        if box_cells > len(self._cells):
            for key, bucket in self._cells.items():
                if all(l <= k <= h for k, l, h in zip(key, low_cell, high_cell)):
                    for features, value in bucket:
                        if all(
                            low <= f <= high
                            for f, low, high in zip(features, lows, highs)
                        ):
                            result.append(value)
            return result
        visit(())
        return result

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        for bucket in self._cells.values():
            yield from bucket
