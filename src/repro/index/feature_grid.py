"""Non-locational feature grid index (Section 7.1).

The Pattern Base organizes archived clusters along four non-locational
features captured by SGS: volume (number of skeletal grid cells), status
count (number of core cells), average density, and average connectivity.
This index bins those feature vectors into a uniform 4-D grid so a
matching query can enumerate only the clusters inside a per-feature search
range, as derived from the distance threshold (Section 7.2's candidate
search).

Range bounds may be infinite: zero-weight features contribute
``[0, inf)`` search ranges (see
:func:`repro.matching.metric.feature_search_ranges`), and analysts can
leave constraint sides open. Unbounded sides clamp to the *occupied* key
extent per dimension — maintained incrementally, not rescanned per
query — so an open range never enumerates bins beyond the data, and a
degenerate range (``+inf`` low, ``-inf`` high, or low > high) returns
empty without probing a single bin. The ``stats`` dict counts bin
probes and scan fallbacks the same way the neighbor-search providers
count candidates, so query planners can report index effort.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

Coord = Tuple[int, ...]


class FeatureGridIndex:
    """Uniform grid index over fixed-dimension feature vectors.

    ``bin_widths`` fixes the granularity per feature. Entries are
    ``(features, value)``; range queries return the values whose features
    fall inside a closed hyper-rectangle.
    """

    def __init__(self, bin_widths: Sequence[float]):
        if not bin_widths:
            raise ValueError("need at least one feature dimension")
        if any(width <= 0 for width in bin_widths):
            raise ValueError("bin widths must be positive")
        self.bin_widths = tuple(float(width) for width in bin_widths)
        self.dimensions = len(self.bin_widths)
        self._cells: Dict[Coord, List[Tuple[Tuple[float, ...], Any]]] = {}
        self._size = 0
        # Occupied-key extent per dimension, maintained incrementally:
        # inserts extend it in O(d); removals that touch a boundary mark
        # it dirty for a lazy recompute. Keeps unbounded-range clamping
        # off the per-query O(cells * dims) rescan it used to cost.
        self._min_keys: Optional[List[int]] = None
        self._max_keys: Optional[List[int]] = None
        self._extent_dirty = False
        #: Index-effort telemetry (for query planners / benches): range
        #: queries answered, bins probed by box enumeration, entries
        #: screened, and occupied-cell scan fallbacks taken.
        self.stats = {
            "range_queries": 0,
            "bin_probes": 0,
            "screened": 0,
            "scan_fallbacks": 0,
        }

    def _coord(self, features: Sequence[float]) -> Coord:
        if len(features) != self.dimensions:
            raise ValueError(
                f"feature vector has {len(features)} dims, expected "
                f"{self.dimensions}"
            )
        return tuple(
            int(math.floor(value / width))
            for value, width in zip(features, self.bin_widths)
        )

    def insert(self, features: Sequence[float], value: Any) -> None:
        key = self._coord(features)
        bucket = self._cells.setdefault(key, [])
        bucket.append((tuple(float(f) for f in features), value))
        self._size += 1
        if self._min_keys is None:
            self._min_keys = list(key)
            self._max_keys = list(key)
        else:
            for d, k in enumerate(key):
                if k < self._min_keys[d]:
                    self._min_keys[d] = k
                if k > self._max_keys[d]:
                    self._max_keys[d] = k

    def remove(self, features: Sequence[float], value: Any) -> bool:
        """Remove one entry with identical features and value identity."""
        key = self._coord(features)
        bucket = self._cells.get(key)
        if not bucket:
            return False
        for i, (stored, stored_value) in enumerate(bucket):
            if stored_value is value and all(
                abs(a - b) < 1e-12 for a, b in zip(stored, features)
            ):
                del bucket[i]
                if not bucket:
                    del self._cells[key]
                    if self._min_keys is not None and any(
                        k == self._min_keys[d] or k == self._max_keys[d]
                        for d, k in enumerate(key)
                    ):
                        self._extent_dirty = True
                self._size -= 1
                return True
        return False

    def key_extents(self) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Occupied bin-key extent per dimension, or ``None`` when empty."""
        if not self._cells:
            return None
        if self._extent_dirty or self._min_keys is None:
            self._min_keys = [
                min(key[d] for key in self._cells)
                for d in range(self.dimensions)
            ]
            self._max_keys = [
                max(key[d] for key in self._cells)
                for d in range(self.dimensions)
            ]
            self._extent_dirty = False
        return tuple(self._min_keys), tuple(self._max_keys)

    def covers_occupied_extent(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> bool:
        """True when ``[lows, highs]`` contains every stored feature
        vector — i.e. the range has no filtering power and a planner
        should prefer a plain scan over a bin enumeration."""
        extents = self.key_extents()
        if extents is None:
            return True
        min_keys, max_keys = extents
        for d, (low, high) in enumerate(zip(lows, highs)):
            width = self.bin_widths[d]
            # Every stored value in dim d lies in
            # [min_key * width, (max_key + 1) * width).
            if low > min_keys[d] * width:
                return False
            if high < (max_keys[d] + 1) * width:
                return False
        return True

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> List[Any]:
        """Return values whose features lie in [lows, highs] per dimension."""
        if len(lows) != self.dimensions or len(highs) != self.dimensions:
            raise ValueError("range bounds must match feature dimensions")
        for low, high in zip(lows, highs):
            if math.isnan(low) or math.isnan(high):
                raise ValueError("range bounds must not be NaN")
        self.stats["range_queries"] += 1
        if not self._cells:
            return []
        # Degenerate ranges — +inf lows, -inf highs, or inverted
        # bounds — match nothing: answer without probing a single bin
        # (+inf used to clamp like an *unbounded* side and enumerate
        # the whole occupied box just to screen everything out).
        for low, high in zip(lows, highs):
            if low > high or math.isinf(low) and low > 0:
                return []
            if math.isinf(high) and high < 0:
                return []
        min_keys, max_keys = self.key_extents()
        # Unbounded sides (e.g. zero-weight features) clamp to the
        # occupied extent instead of enumerating an infinite box.
        low_cell = tuple(
            min_keys[d]
            if math.isinf(low)
            else max(min_keys[d], int(math.floor(low / width)))
            for d, (low, width) in enumerate(zip(lows, self.bin_widths))
        )
        high_cell = tuple(
            max_keys[d]
            if math.isinf(high)
            else min(max_keys[d], int(math.floor(high / width)))
            for d, (high, width) in enumerate(zip(highs, self.bin_widths))
        )
        result: List[Any] = []
        stats = self.stats

        def visit(prefix: Coord) -> None:
            depth = len(prefix)
            if depth == self.dimensions:
                stats["bin_probes"] += 1
                bucket = self._cells.get(prefix)
                if not bucket:
                    return
                stats["screened"] += len(bucket)
                for features, value in bucket:
                    inside = True
                    for f, low, high in zip(features, lows, highs):
                        if f < low or f > high:
                            inside = False
                            break
                    if inside:
                        result.append(value)
                return
            for c in range(low_cell[depth], high_cell[depth] + 1):
                visit(prefix + (c,))

        # When the query box is huge relative to occupied cells, scanning
        # occupied cells directly is cheaper than enumerating the box.
        box_cells = 1
        for low, high in zip(low_cell, high_cell):
            box_cells *= high - low + 1
            if box_cells > max(1, len(self._cells)):
                break
        if box_cells > len(self._cells):
            stats["scan_fallbacks"] += 1
            stats["bin_probes"] += len(self._cells)
            for key, bucket in self._cells.items():
                if all(l <= k <= h for k, l, h in zip(key, low_cell, high_cell)):
                    stats["screened"] += len(bucket)
                    for features, value in bucket:
                        if all(
                            low <= f <= high
                            for f, low, high in zip(features, lows, highs)
                        ):
                            result.append(value)
            return result
        visit(())
        return result

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        for bucket in self._cells.values():
            yield from bucket
