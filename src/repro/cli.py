"""Command-line interface: run queries, archive patterns, match clusters.

Subcommands:

* ``generate`` — write a synthetic stream (gmti / stt / blobs) to CSV;
* ``run`` — execute a Continuous Clustering Query (textual template or
  flags) over a CSV stream, print per-window cluster digests, and
  optionally persist the resulting Pattern Base; with ``--queries FILE``
  (one DETECT template per line) several queries multiplex over one
  stream pass, sharing a multi-resolution substrate;
* ``multiplex`` — run a queries file multiplexed and report the sharing
  structure: θr rung placement, cohorts, one-pass substrate counters,
  and (``--ab``) an output-parity + timing comparison against
  forced-dedicated execution;
* ``match`` — load a persisted Pattern Base and run a Cluster Matching
  Query for a pattern id or an SGS JSON file;
* ``serve`` — keep a persisted Pattern Base resident behind a JSON-over-
  HTTP service (``/ingest``, ``/match``, ``/match_many``, ``/stats``,
  ``/healthz``), with the deployment mode — in-process serial, thread
  pool, or process-per-shard workers — selected by ``--mode``;
* ``show`` — render an archived pattern as ASCII art (2-D only).

Examples::

    python -m repro.cli generate --kind gmti --count 20000 --out stream.csv
    python -m repro.cli run --input stream.csv --theta-range 2.5 \
        --theta-count 8 --win 2000 --slide 500 --archive history.sgsa
    python -m repro.cli run --input stream.csv --queries queries.txt
    python -m repro.cli multiplex --input stream.csv \
        --queries queries.txt --ab
    python -m repro.cli match --archive history.sgsa --pattern 12 \
        --threshold 0.25 --top 5
    python -m repro.cli serve --archive history.sgsa --shards 4 \
        --mode process --port 8765
    python -m repro.cli run --input stream.csv --theta-range 2.5 \
        --theta-count 8 --win 2000 --slide 500 --store sqlite:history.db
    python -m repro.cli serve --store sqlite:history.db --port 8765
    python -m repro.cli show --archive history.sgsa --pattern 12

``--store sqlite:PATH`` swaps the monolithic dump for the disk-backed
pattern store of :mod:`repro.archive.store`: ``run`` commits each
pattern as it archives (crash-safe), and ``match`` / ``serve`` open
the store directly so cold start skips the full dump load.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Iterator, List, Optional, Sequence

from repro.archive.persistence import dump_pattern_base, load_pattern_base
from repro.core.serialize import sgs_from_json, sgs_to_json
from repro.data.gmti import GMTIStream
from repro.data.stt import STTStream
from repro.data.synthetic import DriftingBlobStream
from repro.geometry.coordstore import REFINEMENT_MODES
from repro.index.provider import available_backends
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval import (
    MatchEngine,
    MatchQuery,
    PARTITION_KEYS,
    ShardedMatchEngine,
    ShardedPatternBase,
)
from repro.serving import MODES
from repro.streams.objects import StreamObject
from repro.streams.windows import CountBasedWindowSpec, TimeBasedWindowSpec
from repro.system.framework import (
    MultiplexedMiningSystem,
    StreamPatternMiningSystem,
)


def _write_csv(path: str, rows: Iterator[Sequence[float]]) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for row in rows:
            writer.writerow([f"{value:.6f}" for value in row])
            count += 1
    return count


def _read_csv_objects(path: str, timestamp_column: Optional[int]) -> Iterator[StreamObject]:
    with open(path, newline="") as handle:
        for i, row in enumerate(csv.reader(handle)):
            if not row:
                continue
            values = [float(v) for v in row]
            if timestamp_column is not None:
                timestamp = values.pop(timestamp_column)
            else:
                timestamp = None
            yield StreamObject(i, tuple(values), timestamp)


def _load_queries(path: str, dimensions: int) -> list:
    """Parse a queries file: one DETECT template per line, blank lines
    and ``#`` comments skipped."""
    from repro.config import ContinuousClusteringQuery
    from repro.query.parser import QueryParseError, parse_query

    queries = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                query = parse_query(text, dimensions=dimensions)
            except QueryParseError as error:
                raise SystemExit(f"{path}:{lineno}: {error}")
            if not isinstance(query, ContinuousClusteringQuery):
                raise SystemExit(
                    f"{path}:{lineno}: only DETECT (continuous "
                    "clustering) queries can be multiplexed"
                )
            queries.append(query)
    if not queries:
        raise SystemExit(f"{path}: no queries found")
    return queries


def _print_sink(handle, output):
    digest = ", ".join(
        f"#{c.cluster_id}:{c.size}obj/{len(s)}cells"
        for c, s in zip(output.clusters, output.summaries)
    )
    print(
        f"q{handle.id} window {output.window_index}: "
        f"{digest or 'no clusters'}"
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "gmti":
        rows = GMTIStream(seed=args.seed).points(args.count)
    elif args.kind == "stt":
        rows = STTStream(total_records=args.count, seed=args.seed).points(
            args.count
        )
    else:
        rows = DriftingBlobStream(seed=args.seed).points(args.count)
    written = _write_csv(args.out, rows)
    print(f"wrote {written} records to {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    objects = list(_read_csv_objects(args.input, args.timestamp_column))
    if not objects:
        print("input stream is empty", file=sys.stderr)
        return 1
    dimensions = objects[0].dimensions
    if args.queries:
        return _run_multiplexed(args, objects, dimensions)
    missing = [
        flag
        for flag, value in (
            ("--theta-range", args.theta_range),
            ("--theta-count", args.theta_count),
            ("--win", args.win),
            ("--slide", args.slide),
        )
        if value is None
    ]
    if missing:
        print(
            f"run needs {', '.join(missing)} (or a --queries file)",
            file=sys.stderr,
        )
        return 1
    if args.time_based:
        window = TimeBasedWindowSpec(args.win, args.slide)
    else:
        window = CountBasedWindowSpec(int(args.win), int(args.slide))
    system = StreamPatternMiningSystem(
        args.theta_range, args.theta_count, dimensions, window,
        archive_level=args.level,
        index_backend=args.index_backend,
        refinement=args.refine,
        match_inverted_levels=(
            _parse_inverted_levels(args.inverted_levels) or None
        ),
        store=args.store,
    )
    try:
        for output in system.run_steps(
            objects, max_windows=args.max_windows
        ):
            digest = ", ".join(
                f"#{c.cluster_id}:{c.size}obj/{len(s)}cells"
                for c, s in zip(output.clusters, output.summaries)
            )
            print(f"window {output.window_index}: {digest or 'no clusters'}")
        provider = system.extractor.algorithm.tracker.provider
        if args.index_backend == "auto":
            print(
                f"auto backend: ran on {provider.backend_name} "
                f"({provider.switches} switches, "
                f"walk cost {provider.walk_cost})"
            )
        print(f"archived {system.archived_count} patterns")
        if args.store:
            print(f"pattern base durable in {args.store}")
        if args.archive:
            written = dump_pattern_base(system.pattern_base, args.archive)
            print(
                f"persisted pattern base to {args.archive} "
                f"({written} bytes)"
            )
    finally:
        system.close()
    return 0


def _run_multiplexed(
    args: argparse.Namespace, objects: list, dimensions: int
) -> int:
    queries = _load_queries(args.queries, dimensions)
    system = MultiplexedMiningSystem(
        dimensions,
        archive_level=args.level,
        refinement=args.refine,
        match_inverted_levels=(
            _parse_inverted_levels(args.inverted_levels) or None
        ),
        store=args.store,
    )
    archive = bool(args.archive or args.store)
    try:
        for query in queries:
            handle = system.register(query, sink=_print_sink, archive=archive)
            print(
                f"registered q{handle.id}: theta_range="
                f"{query.theta_range} theta_count={query.theta_count} "
                f"win={query.window.win} slide={query.window.slide}"
            )
        system.run(objects)
        for entry in system.registry.describe():
            print(
                f"q{entry['id']}: {entry['windows']} windows, "
                f"{entry['clusters']} clusters "
                f"({'dedicated' if entry['dedicated'] else 'rung ' + str(entry['rung'])})"
            )
        print(f"archived {system.archived_count} patterns")
        if args.store:
            print(f"pattern base durable in {args.store}")
        if args.archive:
            written = dump_pattern_base(system.pattern_base, args.archive)
            print(
                f"persisted pattern base to {args.archive} "
                f"({written} bytes)"
            )
    finally:
        system.close()
    return 0


def _cmd_multiplex(args: argparse.Namespace) -> int:
    """Run a queries file multiplexed and report the sharing structure
    (optionally A/B against forced-dedicated execution)."""
    import time

    from repro.multiplex import SlideScheduler

    objects = list(_read_csv_objects(args.input, args.timestamp_column))
    if not objects:
        print("input stream is empty", file=sys.stderr)
        return 1
    dimensions = objects[0].dimensions
    queries = _load_queries(args.queries, dimensions)

    def execute(shared: bool):
        scheduler = SlideScheduler(
            dimensions,
            factor=args.factor,
            shared=shared,
            refinement=args.refine,
        )
        captured = {}

        def sink(handle, output):
            captured.setdefault(handle.id, []).append(
                (
                    output.window_index,
                    frozenset(c.member_oids() for c in output.clusters),
                )
            )

        for query in queries:
            scheduler.register(query, sink=sink)
        started = time.perf_counter()
        scheduler.run(objects)
        elapsed = time.perf_counter() - started
        return scheduler, captured, elapsed

    scheduler, shared_results, shared_time = execute(shared=True)
    stats = scheduler.stats()
    print(f"{len(queries)} queries over {len(objects)} objects")
    for entry in stats["queries"]:
        placement = (
            "dedicated"
            if entry["dedicated"]
            else f"rung {entry['rung']}"
        )
        print(
            f"  q{entry['id']}: theta_range={entry['theta_range']} "
            f"theta_count={entry['theta_count']} win={entry['win']} "
            f"-> {placement}, {entry['windows']} windows, "
            f"{entry['clusters']} clusters"
        )
    for rung in stats["rungs"]:
        top = " (top: gather radius)" if rung["top"] else ""
        print(
            f"  rung {rung['level']}: theta_range="
            f"{rung['theta_range']} serving {rung['queries']} "
            f"queries{top}"
        )
    for cohort in stats["cohorts"]:
        nesting = (
            f", {cohort['cells']} cells in {cohort['top_cells']} "
            "top-rung cells"
            if "top_cells" in cohort
            else ""
        )
        print(
            f"  cohort[{cohort['mode']}] theta_range="
            f"{cohort['theta_range']} lifespan={cohort['lifespan']}: "
            f"{cohort['queries']} queries{nesting}"
        )
    provider = stats["provider"]
    if provider is not None:
        print(
            f"  shared substrate: {provider['range_query_batches']} "
            f"batched passes, {provider['range_queries']} range "
            f"queries, {provider['gather_builds']} gather builds"
        )
    if stats["dedicated_range_queries"]:
        print(
            f"  dedicated fallback: "
            f"{stats['dedicated_range_queries']} range queries"
        )
    if args.ab:
        _, dedicated_results, dedicated_time = execute(shared=False)
        parity = shared_results == dedicated_results
        print(
            f"A/B: shared {shared_time:.3f}s vs dedicated "
            f"{dedicated_time:.3f}s "
            f"(x{dedicated_time / max(shared_time, 1e-9):.2f}), "
            f"outputs {'identical' if parity else 'DIVERGED'}"
        )
        if not parity:
            return 1
    return 0


def _metric_from_args(args: argparse.Namespace) -> DistanceMetricSpec:
    return DistanceMetricSpec(position_sensitive=args.position_sensitive)


def _parse_window_span(text: Optional[str]) -> Optional[tuple]:
    if text is None:
        return None
    try:
        lo, _, hi = text.partition(":")
        return (int(lo), int(hi))
    except ValueError:
        raise SystemExit(f"--windows expects LO:HI, got {text!r}")


def _parse_inverted_levels(text: Optional[str]) -> tuple:
    if not text:
        return ()
    try:
        levels = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise SystemExit(
            f"--inverted-levels expects comma-separated rungs, got {text!r}"
        )
    if any(level < 1 for level in levels):
        raise SystemExit("--inverted-levels rungs must be >= 1")
    return levels


def _open_base(args: argparse.Namespace):
    """The archive named by ``--archive`` / ``--store`` (either alone
    works; a dump file plus an *empty* store imports the dump into the
    store — the one-time migration path)."""
    from repro.archive.pattern_base import PatternBase

    if args.archive is None and args.store is None:
        raise SystemExit("need --archive and/or --store")
    if args.archive is None:
        return PatternBase(store=args.store)
    if args.store is None:
        return load_pattern_base(args.archive)
    probe = PatternBase(store=args.store)
    if len(probe):
        raise SystemExit(
            f"store {args.store} already holds {len(probe)} patterns; "
            "drop --archive to serve it directly"
        )
    return load_pattern_base(args.archive, store=probe.store)


def _cmd_match(args: argparse.Namespace) -> int:
    base = _open_base(args)
    if args.pattern is not None:
        pattern = base.get(args.pattern)
        if pattern is None:
            print(f"no pattern {args.pattern} in archive", file=sys.stderr)
            return 1
        query_sgs = pattern.sgs
    elif args.query_json:
        with open(args.query_json) as handle:
            query_sgs = sgs_from_json(handle.read())
    else:
        print("need --pattern or --query-json", file=sys.stderr)
        return 1
    inverted_levels = _parse_inverted_levels(args.inverted_levels)
    if inverted_levels and args.coarse_level < 1:
        # The screen only runs at a coarse entry level; don't silently
        # pay an archive-wide signature rebuild for nothing.
        print(
            "note: --inverted-levels has no effect without "
            "--coarse-level >= 1; ignoring it",
            file=sys.stderr,
        )
        inverted_levels = ()
    loaded_index = base.inverted_index()
    if inverted_levels and (
        loaded_index is None
        or not all(loaded_index.covers(lv) for lv in inverted_levels)
    ):
        # Legacy (v1/v2) archive, or one persisted with different
        # rungs: rebuild the inverted index at the requested rungs.
        base.enable_inverted(inverted_levels)
    if args.shards > 1 or args.mode or args.replicas > 1:
        sharded = ShardedPatternBase.from_base(
            base, args.shards, args.shard_key
        )
        engine = ShardedMatchEngine(
            sharded, _metric_from_args(args), mode=args.mode,
            replicas=args.replicas,
        )
    else:
        engine = MatchEngine(base, _metric_from_args(args))
    engine.warm_ladders()
    try:
        query = MatchQuery(
            sgs=query_sgs,
            threshold=args.threshold,
            top_k=args.top,
            metric=engine.spec,
            window_range=_parse_window_span(args.windows),
            coarse_level=args.coarse_level,
        )
    except ValueError as error:
        print(f"invalid matching query: {error}", file=sys.stderr)
        return 1
    try:
        results, stats = engine.match(query)
    finally:
        engine.close()
        base.close()
    shard_note = ""
    if args.shards > 1:
        entries = "+".join(stats.plan.get("entries", []))
        shard_note = f" shards={args.shards}({entries})"
    if stats.coarse_screen:
        shard_note += f" coarse_screen={stats.coarse_screen}"
    print(
        f"archive {len(base)}: plan entry={stats.entry}{shard_note} "
        f"gathered={stats.gathered} screened={stats.screened} "
        f"coarse_rejected={stats.coarse_rejected} "
        f"refined={stats.refined} matches={stats.matches}"
    )
    for rank, result in enumerate(results, start=1):
        print(
            f"#{rank}: pattern {result.pattern.pattern_id} "
            f"(window {result.pattern.window_index}) distance "
            f"{result.distance:.4f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.httpd import make_server
    from repro.serving.service import MatchService

    from repro.serving.service import ServiceError

    try:
        service = MatchService.from_archive(
            args.archive,
            shards=args.shards,
            shard_key=args.shard_key,
            spec=_metric_from_args(args),
            mode=args.mode,
            coarse_level=args.coarse_level,
            inverted_levels=(
                _parse_inverted_levels(args.inverted_levels) or None
            ),
            replicas=args.replicas,
            store=args.store,
        )
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    server, host, port = make_server(service, args.host, args.port)
    # One parseable line, flushed before serving: tests and scripts
    # read the bound port from it (important with --port 0).
    print(
        f"serving {len(service.base)} patterns "
        f"(shards={service.base.shard_count}, mode={service.mode}, "
        f"replicas={service.engine.executor.replica_count}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    base = load_pattern_base(args.archive)
    pattern = base.get(args.pattern)
    if pattern is None:
        print(f"no pattern {args.pattern} in archive", file=sys.stderr)
        return 1
    if args.json:
        print(sgs_to_json(pattern.sgs))
        return 0
    from repro.viz.ascii_art import render_sgs

    print(
        f"pattern {pattern.pattern_id}: window {pattern.window_index}, "
        f"{len(pattern.sgs)} cells, population {pattern.sgs.population}"
    )
    print(render_sgs(pattern.sgs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Density-based cluster summarization and matching "
        "over streams (SGS / C-SGS)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic stream CSV")
    generate.add_argument(
        "--kind", choices=("gmti", "stt", "blobs"), default="blobs"
    )
    generate.add_argument("--count", type=int, default=10000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    run = sub.add_parser("run", help="run continuous clustering queries")
    run.add_argument("--input", required=True, help="CSV of coordinates")
    run.add_argument("--theta-range", type=float, default=None)
    run.add_argument("--theta-count", type=int, default=None)
    run.add_argument("--win", type=float, default=None)
    run.add_argument("--slide", type=float, default=None)
    run.add_argument(
        "--queries", default=None, metavar="FILE",
        help="multiplex several queries over one pass: a file of DETECT "
        "templates, one per line (# comments allowed); replaces the "
        "single-query --theta-range/--theta-count/--win/--slide flags",
    )
    run.add_argument("--time-based", action="store_true")
    run.add_argument(
        "--timestamp-column", type=int, default=None,
        help="CSV column holding event time (time-based windows)",
    )
    run.add_argument(
        "--index-backend",
        choices=available_backends(),
        default="grid",
        help="neighbor-search backend for range queries (auto: pick "
        "grid vs kdtree from dimensionality and observed cell "
        "occupancy, switching adaptively)",
    )
    run.add_argument(
        "--refine",
        choices=REFINEMENT_MODES,
        default="auto",
        help="distance-refinement kernel path (auto: vectorized via "
        "NumPy when available; scalar: pure-Python escape hatch)",
    )
    run.add_argument("--level", type=int, default=0, help="archive resolution")
    run.add_argument("--max-windows", type=int, default=None)
    run.add_argument("--archive", default=None, help="persist pattern base")
    run.add_argument(
        "--store", default=None, metavar="sqlite:PATH",
        help="archive crash-safely to a disk-backed pattern store as "
        "the run progresses (each pattern commits before the window "
        "is acknowledged); 'sqlite:PATH[?cache=N]' or 'memory'",
    )
    run.add_argument(
        "--inverted-levels", default=None, metavar="L1,L2",
        help="maintain the inverted cell-signature index at these "
        "coarse rungs during archival (persisted with --archive as "
        "format v3, so later matching starts warm)",
    )
    run.set_defaults(func=_cmd_run)

    multiplex = sub.add_parser(
        "multiplex",
        help="run a queries file multiplexed and report the sharing "
        "structure (rungs, cohorts, one-pass substrate stats)",
    )
    multiplex.add_argument("--input", required=True, help="CSV of coordinates")
    multiplex.add_argument(
        "--queries", required=True, metavar="FILE",
        help="DETECT templates, one per line (# comments allowed)",
    )
    multiplex.add_argument(
        "--factor", type=float, default=2.0,
        help="geometric step of the theta_range rung ladder (>= 2)",
    )
    multiplex.add_argument(
        "--refine", choices=REFINEMENT_MODES, default=None,
        help="distance-refinement kernel path of the shared substrate",
    )
    multiplex.add_argument(
        "--timestamp-column", type=int, default=None,
        help="CSV column holding event time (time-based windows)",
    )
    multiplex.add_argument(
        "--ab", action="store_true",
        help="also run with sharing disabled (every query dedicated) "
        "and report timing plus output parity",
    )
    multiplex.set_defaults(func=_cmd_multiplex)

    match = sub.add_parser("match", help="run a cluster matching query")
    match.add_argument("--archive", default=None)
    match.add_argument(
        "--store", default=None, metavar="sqlite:PATH",
        help="open a disk-backed pattern store directly (cold start "
        "skips the full dump load); with --archive and an empty "
        "store, imports the dump into the store first",
    )
    match.add_argument("--pattern", type=int, default=None)
    match.add_argument("--query-json", default=None)
    match.add_argument("--threshold", type=float, default=0.25)
    match.add_argument("--top", type=int, default=5)
    match.add_argument("--position-sensitive", action="store_true")
    match.add_argument(
        "--coarse-level", type=int, default=0,
        help="multi-resolution entry level of the coarse-to-fine "
        "refiner (0 = match stored cells directly)",
    )
    match.add_argument(
        "--windows", default=None, metavar="LO:HI",
        help="restrict matching to archived windows LO..HI (inclusive)",
    )
    match.add_argument(
        "--shards", type=int, default=1,
        help="partition the loaded archive into this many shards and "
        "fan the query out per shard (merged deterministically)",
    )
    match.add_argument(
        "--shard-key", choices=PARTITION_KEYS, default="window",
        help="partition key: window span or feature-grid region",
    )
    match.add_argument(
        "--inverted-levels", default=None, metavar="L1,L2",
        help="serve the coarse screen from the inverted cell-signature "
        "index at these rungs (rebuilt if the archive file predates "
        "format v3 or was persisted with different rungs)",
    )
    match.add_argument(
        "--mode", choices=MODES, default=None,
        help="deployment mode of the sharded execution (serial / "
        "thread / process); default: thread when --shards > 1",
    )
    match.add_argument(
        "--replicas", type=int, default=1,
        help="process-worker replicas per shard (implies --mode "
        "process): reads route round-robin across live replicas and "
        "fail over to a sibling when a worker dies mid-task",
    )
    match.set_defaults(func=_cmd_match)

    serve = sub.add_parser(
        "serve",
        help="serve a persisted archive over JSON/HTTP (always-on)",
    )
    serve.add_argument("--archive", default=None)
    serve.add_argument(
        "--store", default=None, metavar="sqlite:PATH",
        help="serve straight from a disk-backed pattern store (cold "
        "start reads metadata rows instead of loading a dump); with "
        "--archive and an empty store, imports the dump first",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 = let the OS pick; the bound port is printed)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="partition the loaded archive into this many shards",
    )
    serve.add_argument(
        "--shard-key", choices=PARTITION_KEYS, default="window",
    )
    serve.add_argument(
        "--mode", choices=MODES, default=None,
        help="deployment mode: serial (in-process), thread (persistent "
        "pool), process (one worker per shard, hydrated from shard "
        "dumps, restart-on-crash); default: serial/thread by shard "
        "count",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="process-worker replicas per shard (implies --mode "
        "process): reads round-robin across live replicas, a worker "
        "death mid-task fails over to a sibling while the dead worker "
        "respawns in the background, and /stats reports per-shard "
        "replica liveness plus failover counters",
    )
    serve.add_argument("--position-sensitive", action="store_true")
    serve.add_argument(
        "--coarse-level", type=int, default=0,
        help="multi-resolution entry level served for queries that "
        "don't set their own",
    )
    serve.add_argument(
        "--inverted-levels", default=None, metavar="L1,L2",
        help="ensure the inverted cell-signature index exists at these "
        "rungs before serving",
    )
    serve.set_defaults(func=_cmd_serve)

    show = sub.add_parser("show", help="display an archived pattern")
    show.add_argument("--archive", required=True)
    show.add_argument("--pattern", type=int, required=True)
    show.add_argument("--json", action="store_true")
    show.set_defaults(func=_cmd_show)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
