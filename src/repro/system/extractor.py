"""The Pattern Extractor: executes Continuous Clustering Queries.

Wraps C-SGS behind the query template of Figure 2: given θr, θc and a
window specification, it consumes a raw stream source and emits one
:class:`~repro.core.csgs.WindowOutput` per window — clusters in both the
full and the summarized (SGS) representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.csgs import CSGS, WindowOutput
from repro.index.provider import NeighborProvider
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowSpec, Windower


class PatternExtractor:
    """Continuous cluster extraction + summarization over one stream.

    ``index_backend`` selects the neighbor-search backend by name
    (``grid`` / ``kdtree`` / ``rtree``); alternatively a ready
    :class:`~repro.index.provider.NeighborProvider` instance can be
    injected via ``provider``. ``refinement`` picks the
    distance-refinement kernel path (``auto`` / ``scalar`` / ``vector``;
    see :mod:`repro.geometry.coordstore`).
    """

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        window_spec: WindowSpec,
        index_backend: Optional[str] = None,
        provider: Optional[NeighborProvider] = None,
        refinement: Optional[str] = None,
    ):
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self.dimensions = int(dimensions)
        self.window_spec = window_spec
        self.index_backend = index_backend
        self._windower = Windower(window_spec)
        self._csgs = CSGS(
            theta_range,
            theta_count,
            dimensions,
            provider=provider,
            backend=index_backend,
            refinement=refinement,
        )

    @property
    def algorithm(self) -> CSGS:
        """The underlying C-SGS instance (for instrumentation)."""
        return self._csgs

    def run(
        self,
        source: Iterable[StreamObject],
        max_windows: Optional[int] = None,
    ) -> Iterator[WindowOutput]:
        """Process the source, yielding one output per window."""
        produced = 0
        for batch in self._windower.batches(source):
            yield self._csgs.process_batch(batch)
            produced += 1
            if max_windows is not None and produced >= max_windows:
                return
