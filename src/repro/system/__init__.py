"""End-to-end framework wiring the four components of Figure 4."""

from repro.system.extractor import PatternExtractor
from repro.system.framework import (
    MultiplexedMiningSystem,
    StreamPatternMiningSystem,
)

__all__ = [
    "MultiplexedMiningSystem",
    "PatternExtractor",
    "StreamPatternMiningSystem",
]
