"""The four-component framework of Figure 4, wired end to end.

``StreamPatternMiningSystem`` connects:

* the **Pattern Extractor** (Continuous Clustering Queries: full + SGS
  representation per window);
* the **Pattern Archiver** (selective archival, resolution choice);
* the **Pattern Base** (dual feature indices);
* the **Pattern Analyzer** (Cluster Matching Queries).

Typical use: construct, :meth:`run` (or :meth:`run_steps` to observe
windows as they complete), then submit :meth:`match` queries against the
accumulated stream history.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.archive.analyzer import MatchResult, MatchStats, PatternAnalyzer
from repro.archive.archiver import ArchivePolicy, PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.config import ContinuousClusteringQuery
from repro.core.csgs import WindowOutput
from repro.core.sgs import SGS
from repro.matching.metric import DistanceMetricSpec
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowSpec
from repro.system.extractor import PatternExtractor


class StreamPatternMiningSystem:
    """End-to-end: extract, summarize, archive, and match clusters."""

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        window_spec: WindowSpec,
        metric: Optional[DistanceMetricSpec] = None,
        archive_policy: Optional[ArchivePolicy] = None,
        archive_level: int = 0,
        archive_byte_budget: Optional[int] = None,
        index_backend: Optional[str] = None,
        refinement: Optional[str] = None,
    ):
        self.extractor = PatternExtractor(
            theta_range,
            theta_count,
            dimensions,
            window_spec,
            index_backend=index_backend,
            refinement=refinement,
        )
        self.pattern_base = PatternBase()
        self.archiver = PatternArchiver(
            self.pattern_base,
            policy=archive_policy,
            level=archive_level,
            byte_budget_per_cluster=archive_byte_budget,
        )
        self.analyzer = PatternAnalyzer(self.pattern_base, metric)

    @classmethod
    def from_query(
        cls,
        query: "ContinuousClusteringQuery",
        **kwargs,
    ) -> "StreamPatternMiningSystem":
        """Build a system from a declarative query (Figure 2 template).

        Consumes every field of the query — θr, θc, dimensions, window
        spec, ``index_backend``, and ``refinement`` — so the
        neighbor-search backend and kernel path declared on the query
        are what the pipeline actually runs on (``index_backend="auto"``
        yields the adaptive grid/kdtree provider; the choice it makes is
        observable via ``system.extractor.algorithm.tracker.provider``).
        Remaining keyword arguments (metric, archive policy, …) pass
        through to the constructor; explicit non-None ``index_backend``
        / ``refinement`` keywords override the query's.
        """
        if kwargs.get("index_backend") is None:
            kwargs["index_backend"] = query.index_backend
        if kwargs.get("refinement") is None:
            kwargs["refinement"] = query.refinement
        return cls(
            query.theta_range,
            query.theta_count,
            query.dimensions,
            query.window,
            **kwargs,
        )

    def run_steps(
        self,
        source: Iterable[StreamObject],
        max_windows: Optional[int] = None,
    ) -> Iterator[WindowOutput]:
        """Process the stream, archiving each window's clusters, and
        yield each window's output for live monitoring."""
        for output in self.extractor.run(source, max_windows=max_windows):
            self.archiver.archive_output(output)
            yield output

    def run(
        self,
        source: Iterable[StreamObject],
        max_windows: Optional[int] = None,
    ) -> List[WindowOutput]:
        """Process the stream to completion; returns all window outputs."""
        return list(self.run_steps(source, max_windows=max_windows))

    def match(
        self,
        query: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
    ) -> "tuple[List[MatchResult], MatchStats]":
        """Submit a Cluster Matching Query (Figure 3) for any SGS."""
        return self.analyzer.match(query, threshold, top_k=top_k, spec=spec)

    @property
    def archived_count(self) -> int:
        return len(self.pattern_base)
