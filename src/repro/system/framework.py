"""The four-component framework of Figure 4, wired end to end.

``StreamPatternMiningSystem`` connects:

* the **Pattern Extractor** (Continuous Clustering Queries: full + SGS
  representation per window);
* the **Pattern Archiver** (selective archival, resolution choice);
* the **Pattern Base** (dual feature indices);
* the **Pattern Analyzer / Match Engine** (Cluster Matching Queries —
  the filter-and-refine retrieval engine of :mod:`repro.retrieval`).

Typical use: construct, :meth:`run` (or :meth:`run_steps` to observe
windows as they complete), then submit :meth:`match` queries — or full
:class:`~repro.retrieval.queries.MatchQuery` objects via
:meth:`match_query` / batched :meth:`match_many` — against the
accumulated stream history.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.archive.analyzer import MatchResult, MatchStats, PatternAnalyzer
from repro.archive.archiver import ArchivePolicy, PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.config import ClusterMatchingQuery, ContinuousClusteringQuery
from repro.core.csgs import WindowOutput
from repro.core.sgs import SGS
from repro.matching.metric import DistanceMetricSpec
from repro.multiplex.registry import RegisteredQuery, Sink
from repro.multiplex.scheduler import SlideScheduler
from repro.retrieval.engine import EngineStats, MatchEngine
from repro.retrieval.queries import MatchQuery
from repro.retrieval.shards import ShardedPatternBase
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowSpec
from repro.system.extractor import PatternExtractor


class _ArchiveThroughEngine:
    """The archiver-facing ``add`` surface of a sharded match engine:
    archival routed through :meth:`ShardedMatchEngine.ingest` updates
    both the in-process base and any executor-held shard copies."""

    def __init__(self, engine):
        self._engine = engine

    def add(self, sgs: SGS, full_size: int):
        return self._engine.ingest(sgs, full_size)


class StreamPatternMiningSystem:
    """End-to-end: extract, summarize, archive, and match clusters."""

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        window_spec: WindowSpec,
        metric: Optional[DistanceMetricSpec] = None,
        archive_policy: Optional[ArchivePolicy] = None,
        archive_level: int = 0,
        archive_byte_budget: Optional[int] = None,
        index_backend: Optional[str] = None,
        refinement: Optional[str] = None,
        match_coarse_level: Optional[int] = None,
        match_max_expansions: Optional[int] = None,
        match_shards: Optional[int] = None,
        match_shard_key: Optional[str] = None,
        match_inverted_levels: Optional[Sequence[int]] = None,
        match_mode: Optional[str] = None,
        match_replicas: Optional[int] = None,
        store: Optional[str] = None,
    ):
        self.extractor = PatternExtractor(
            theta_range,
            theta_count,
            dimensions,
            window_spec,
            index_backend=index_backend,
            refinement=refinement,
        )
        shards = 1 if match_shards is None else int(match_shards)
        shard_key = "window" if match_shard_key is None else match_shard_key
        replicas = 1 if match_replicas is None else int(match_replicas)
        inverted_levels = (
            tuple(match_inverted_levels) if match_inverted_levels else None
        )
        # An explicit deployment mode forces the sharded serving path
        # even over a single shard — the executor seam still applies
        # (e.g. match_mode="process" serves from one worker, and
        # match_replicas > 1 serves from a replicated worker group).
        if shards > 1 or match_mode is not None or replicas > 1:
            if store is not None:
                # The durable store stays the system of record; shard
                # layout is a serving-time choice on top of it (reopen
                # loads any patterns it already holds).
                origin = PatternBase(
                    inverted_levels=inverted_levels, store=store
                )
                self.pattern_base = ShardedPatternBase.from_base(
                    origin, shards, shard_key,
                    inverted_levels=inverted_levels,
                )
            else:
                self.pattern_base = ShardedPatternBase(
                    shards, shard_key, inverted_levels=inverted_levels
                )
        else:
            self.pattern_base = PatternBase(
                inverted_levels=inverted_levels, store=store
            )
        # The analyzer builds the engine matching the base: a
        # ShardedMatchEngine over a partitioned archive (with the
        # requested deployment mode — see repro.serving), a plain
        # MatchEngine otherwise.
        expansions = (
            32 if match_max_expansions is None else match_max_expansions
        )
        coarse = 0 if match_coarse_level is None else match_coarse_level
        prebuilt = None
        archive_target = self.pattern_base
        if isinstance(self.pattern_base, ShardedPatternBase):
            from repro.retrieval.shards import ShardedMatchEngine

            prebuilt = ShardedMatchEngine(
                self.pattern_base,
                spec=metric,
                max_alignment_expansions=expansions,
                coarse_level=coarse,
                mode=match_mode,
                replicas=replicas,
            )
            # Archival must flow through the facade so executors that
            # keep their own shard copies (process workers) hear about
            # every new pattern, not just the in-process base.
            archive_target = _ArchiveThroughEngine(prebuilt)
        self.archiver = PatternArchiver(
            archive_target,
            policy=archive_policy,
            level=archive_level,
            byte_budget_per_cluster=archive_byte_budget,
        )
        self.analyzer = PatternAnalyzer(
            self.pattern_base,
            metric,
            max_alignment_expansions=expansions,
            coarse_level=coarse,
            engine=prebuilt,
        )

    @property
    def engine(self) -> MatchEngine:
        """The matching-query engine serving this system's archive (a
        :class:`~repro.retrieval.shards.ShardedMatchEngine` when the
        archive is partitioned)."""
        return self.analyzer.engine

    @classmethod
    def from_query(
        cls,
        query: "ContinuousClusteringQuery",
        **kwargs,
    ) -> "StreamPatternMiningSystem":
        """Build a system from a declarative query (Figure 2 template).

        Consumes every field of the query — θr, θc, dimensions, window
        spec, ``index_backend``, ``refinement``, and the matching-engine
        configuration (``match_coarse_level`` /
        ``match_max_expansions``) — so both the extraction pipeline and
        the retrieval engine run exactly what the query declares.
        Remaining keyword arguments (metric, archive policy, …) pass
        through to the constructor; explicit non-None keywords override
        the query's fields.
        """
        for name in (
            "index_backend",
            "refinement",
            "match_coarse_level",
            "match_max_expansions",
            "match_shards",
            "match_shard_key",
            "match_inverted_levels",
            "match_mode",
            "match_replicas",
            "store",
        ):
            if kwargs.get(name) is None:
                kwargs[name] = getattr(query, name)
        return cls(
            query.theta_range,
            query.theta_count,
            query.dimensions,
            query.window,
            **kwargs,
        )

    def run_steps(
        self,
        source: Iterable[StreamObject],
        max_windows: Optional[int] = None,
    ) -> Iterator[WindowOutput]:
        """Process the stream, archiving each window's clusters, and
        yield each window's output for live monitoring."""
        for output in self.extractor.run(source, max_windows=max_windows):
            self.archiver.archive_output(output)
            yield output

    def run(
        self,
        source: Iterable[StreamObject],
        max_windows: Optional[int] = None,
    ) -> List[WindowOutput]:
        """Process the stream to completion; returns all window outputs."""
        return list(self.run_steps(source, max_windows=max_windows))

    def match(
        self,
        query: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
    ) -> "tuple[List[MatchResult], MatchStats]":
        """Submit a Cluster Matching Query (Figure 3) for any SGS."""
        return self.analyzer.match(query, threshold, top_k=top_k, spec=spec)

    def match_query(
        self, query: MatchQuery
    ) -> Tuple[List[MatchResult], EngineStats]:
        """Execute a full retrieval-engine query (window / feature
        constraints, per-query coarse level) against the history."""
        return self.engine.match(query)

    def match_many(
        self, queries: Sequence[MatchQuery]
    ) -> List[Tuple[List[MatchResult], EngineStats]]:
        """Batched matching: one shared candidate gather per entry index
        (see :meth:`repro.retrieval.engine.MatchEngine.match_many`)."""
        return self.engine.match_many(queries)

    def matching_query_for(
        self, sgs: SGS, declared: ClusterMatchingQuery
    ) -> MatchQuery:
        """Bind a declarative :class:`ClusterMatchingQuery` (Figure 3 /
        the parser's GIVEN–SELECT template) to a concrete query SGS."""
        return MatchQuery(
            sgs=sgs,
            threshold=declared.sim_threshold,
            top_k=declared.top_k,
            metric=declared.metric,
            window_range=declared.window_range,
            coarse_level=declared.coarse_level,
        )

    @property
    def archived_count(self) -> int:
        return len(self.pattern_base)

    def close(self) -> None:
        """Release the match engine's executor (thread pool or shard
        worker processes) and the archive's backing store; idempotent,
        and a no-op for the plain in-process, in-memory setup."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
        base_close = getattr(self.pattern_base, "close", None)
        if base_close is not None:
            base_close()

    def __enter__(self) -> "StreamPatternMiningSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MultiplexedMiningSystem:
    """The Figure-4 framework with a multiplexed Pattern Extractor.

    Where :class:`StreamPatternMiningSystem` runs **one** Continuous
    Clustering Query end to end, this system runs **many** concurrently
    over one stream: queries register and unregister at runtime
    (:mod:`repro.multiplex.registry`), a slide scheduler answers every
    batch with one shared range-query pass
    (:mod:`repro.multiplex.scheduler`), and a single Pattern
    Base / Archiver / Analyzer serves the accumulated archive across all
    of them. Queries opting into archival (``archive=True``) feed their
    window outputs through the shared archiver; every query's output is
    still byte-identical to a dedicated independent run.
    """

    def __init__(
        self,
        dimensions: int,
        metric: Optional[DistanceMetricSpec] = None,
        archive_policy: Optional[ArchivePolicy] = None,
        archive_level: int = 0,
        archive_byte_budget: Optional[int] = None,
        factor: float = 2.0,
        shared: bool = True,
        refinement: Optional[str] = None,
        match_coarse_level: Optional[int] = None,
        match_max_expansions: Optional[int] = None,
        match_inverted_levels: Optional[Sequence[int]] = None,
        store: Optional[str] = None,
    ):
        self.scheduler = SlideScheduler(
            dimensions, factor=factor, shared=shared, refinement=refinement
        )
        self.registry = self.scheduler.registry
        inverted_levels = (
            tuple(match_inverted_levels) if match_inverted_levels else None
        )
        self.pattern_base = PatternBase(
            inverted_levels=inverted_levels, store=store
        )
        self.archiver = PatternArchiver(
            self.pattern_base,
            policy=archive_policy,
            level=archive_level,
            byte_budget_per_cluster=archive_byte_budget,
        )
        self.analyzer = PatternAnalyzer(
            self.pattern_base,
            metric,
            max_alignment_expansions=(
                32 if match_max_expansions is None else match_max_expansions
            ),
            coarse_level=(
                0 if match_coarse_level is None else match_coarse_level
            ),
        )

    @property
    def engine(self) -> MatchEngine:
        return self.analyzer.engine

    def register(
        self,
        query: ContinuousClusteringQuery,
        sink: Optional[Sink] = None,
        archive: bool = False,
    ) -> RegisteredQuery:
        """Admit a query into the multiplexed run. With ``archive=True``
        its window outputs also flow into the shared Pattern Base (via
        the archiver's policy), before the caller's sink sees them."""
        if archive:
            caller_sink = sink

            def sink(handle, output):
                self.archiver.archive_output(output)
                if caller_sink is not None:
                    caller_sink(handle, output)

        return self.scheduler.register(query, sink=sink)

    def unregister(self, query_id: int) -> RegisteredQuery:
        return self.scheduler.unregister(query_id)

    def feed(self, source: Iterable[StreamObject]):
        return self.scheduler.feed(source)

    def flush(self):
        return self.scheduler.flush()

    def run(self, source: Iterable[StreamObject]):
        return self.scheduler.run(source)

    def match(
        self,
        query: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
    ) -> "tuple[List[MatchResult], MatchStats]":
        """A Cluster Matching Query against the shared archive."""
        return self.analyzer.match(query, threshold, top_k=top_k, spec=spec)

    @property
    def archived_count(self) -> int:
        return len(self.pattern_base)

    def stats(self) -> dict:
        stats = self.scheduler.stats()
        stats["archived"] = len(self.pattern_base)
        return stats

    def close(self) -> None:
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
        base_close = getattr(self.pattern_base, "close", None)
        if base_close is not None:
            base_close()

    def __enter__(self) -> "MultiplexedMiningSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
