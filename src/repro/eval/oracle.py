"""Ground-truth cluster similarity computed on *full* representations.

The paper's quality evaluation (Section 8.3) asks 20 human analysts to
rate, by visual inspection of the full clusters, how similar the matched
clusters really are. Humans are not available to an offline reproduction,
so this module provides the oracle those simulated analysts perceive:
a similarity measure computed directly on the member points of the two
clusters — never on any summary — so it favors no summarization format.

The measure rasterizes both clusters onto a fine occupancy grid and takes
the population-weighted Jaccard overlap ``sum(min) / sum(max)`` under the
best small alignment around the centroid shift (position-insensitive
mode). It rewards matching shape *and* matching density distribution,
which is what a human comparing two rendered clusters responds to.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Sequence, Tuple

from repro.clustering.cluster import Cluster

Coord = Tuple[int, ...]


def _occupancy(
    points: Sequence[Tuple[float, ...]], side: float
) -> Dict[Coord, int]:
    grid: Dict[Coord, int] = {}
    for point in points:
        coord = tuple(int(math.floor(value / side)) for value in point)
        grid[coord] = grid.get(coord, 0) + 1
    return grid


def _weighted_jaccard(
    grid_a: Dict[Coord, int], grid_b: Dict[Coord, int], shift: Coord
) -> float:
    min_sum = 0
    max_sum = 0
    seen = set()
    for coord, count_a in grid_a.items():
        target = tuple(c + s for c, s in zip(coord, shift))
        count_b = grid_b.get(target, 0)
        min_sum += min(count_a, count_b)
        max_sum += max(count_a, count_b)
        seen.add(target)
    for coord, count_b in grid_b.items():
        if coord not in seen:
            max_sum += count_b
    if max_sum == 0:
        return 0.0
    return min_sum / max_sum


def oracle_similarity(
    cluster_a: Cluster,
    cluster_b: Cluster,
    cell_side: float,
    position_sensitive: bool = False,
    search_radius: int = 2,
) -> float:
    """Similarity in [0, 1] between two full cluster representations.

    ``cell_side`` sets the rasterization granularity (use the clustering
    θr or finer). In non-position-sensitive mode the best alignment
    within ``search_radius`` cells of the centroid shift is used.
    """
    points_a = [obj.coords for obj in cluster_a.members]
    points_b = [obj.coords for obj in cluster_b.members]
    if not points_a or not points_b:
        return 0.0
    grid_a = _occupancy(points_a, cell_side)
    grid_b = _occupancy(points_b, cell_side)
    dims = len(points_a[0])
    if position_sensitive:
        return _weighted_jaccard(grid_a, grid_b, (0,) * dims)

    def centroid(points: Sequence[Tuple[float, ...]]) -> Tuple[float, ...]:
        sums = [0.0] * dims
        for point in points:
            for i, value in enumerate(point):
                sums[i] += value
        return tuple(total / len(points) for total in sums)

    base_shift = tuple(
        int(round((cb - ca) / cell_side))
        for ca, cb in zip(centroid(points_a), centroid(points_b))
    )
    best = 0.0
    deltas = range(-search_radius, search_radius + 1)
    for offset in itertools.product(deltas, repeat=dims):
        shift = tuple(b + o for b, o in zip(base_shift, offset))
        best = max(best, _weighted_jaccard(grid_a, grid_b, shift))
    return best
