"""Evaluation substrate: byte-cost models, oracle judge, harness utils."""

from repro.eval.memory import (
    compression_rate,
    crd_bytes,
    full_representation_bytes,
    rsp_bytes,
    sgs_bytes,
    skps_bytes,
)
from repro.eval.oracle import oracle_similarity

__all__ = [
    "compression_rate",
    "crd_bytes",
    "full_representation_bytes",
    "oracle_similarity",
    "rsp_bytes",
    "sgs_bytes",
    "skps_bytes",
]
