"""Clustering-agreement metrics.

General-purpose measures for comparing two clusterings of (mostly) the
same objects — used by tests and analyses to quantify *how much* two
window results differ when they are not identical (the equivalence
tests use exact partition signatures; these metrics grade near-misses
and cross-parameter comparisons).

Edge objects may legitimately belong to several density-based clusters
(Definition 3.1), so inputs are collections of member-oid sets rather
than strict partitions; objects outside both clusterings are ignored.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

Grouping = Sequence[FrozenSet[int]]


def _flatten(groups: Grouping) -> Set[int]:
    result: Set[int] = set()
    for group in groups:
        result |= group
    return result


def _pairs(groups: Grouping) -> Set[Tuple[int, int]]:
    pairs: Set[Tuple[int, int]] = set()
    for group in groups:
        members = sorted(group)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pairs.add((a, b))
    return pairs


def pairwise_agreement(a: Grouping, b: Grouping) -> float:
    """Rand-style agreement on co-clustered pairs, in [0, 1].

    Over the objects clustered by both groupings: of all pairs
    co-clustered by either side, the fraction co-clustered by both
    (Jaccard of the co-membership relations). 1.0 iff the relations
    coincide; 0.0 when no co-clustered pair is shared.
    """
    universe = _flatten(a) & _flatten(b)
    if not universe:
        return 1.0
    pairs_a = {
        (x, y) for x, y in _pairs(a) if x in universe and y in universe
    }
    pairs_b = {
        (x, y) for x, y in _pairs(b) if x in universe and y in universe
    }
    union = pairs_a | pairs_b
    if not union:
        return 1.0
    return len(pairs_a & pairs_b) / len(union)


def best_match_overlap(a: Grouping, b: Grouping) -> float:
    """Average best-Jaccard between the clusters of ``a`` and ``b``.

    For each cluster of ``a``, its best Jaccard overlap with any cluster
    of ``b``; averaged symmetrically. 1.0 iff the cluster sets are equal.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0

    def directed(src: Grouping, dst: Grouping) -> float:
        total = 0.0
        for group in src:
            best = 0.0
            for other in dst:
                union = len(group | other)
                if union:
                    best = max(best, len(group & other) / union)
            total += best
        return total / len(src)

    return 0.5 * (directed(a, b) + directed(b, a))


def purity(a: Grouping, b: Grouping) -> float:
    """Weighted purity of ``a``'s clusters against ``b``'s.

    Each cluster of ``a`` is scored by the largest fraction of its
    members falling into one cluster of ``b``; scores are weighted by
    cluster size. 1.0 when every ``a`` cluster is contained in some
    ``b`` cluster.
    """
    total_members = sum(len(group) for group in a)
    if total_members == 0:
        return 1.0
    total = 0.0
    for group in a:
        best = 0
        for other in b:
            best = max(best, len(group & other))
        total += best
    return total / total_members


def grouping_of_clusters(clusters: Iterable) -> List[FrozenSet[int]]:
    """Adapter: :class:`~repro.clustering.cluster.Cluster` list to a
    grouping (list of member-oid frozensets)."""
    return [cluster.member_oids() for cluster in clusters]
