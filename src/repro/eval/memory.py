"""Deterministic byte-cost models for every representation format.

Python object overheads would swamp any memory comparison, so — like the
paper, which reports the serialized sizes of its C++ structs — all memory
numbers in the benches come from explicit cost models:

* **SGS cell** (Section 8.2's accounting): ``4 * d`` bytes location
  (one int32 per dimension) + 1 byte status + 4 bytes population +
  2 bytes connection bitmap. For d = 4 this is the paper's 23 bytes
  per skeletal grid cell.
* **Full representation**: ``4 * d`` bytes of float32 coordinates +
  4 bytes object id per member tuple.
* **CRD**: centroid (4 per dim) + radius + density + population.
* **RSP**: ``4 * d`` bytes per sampled point (+ population counter).
* **SkPS**: ``4 * d`` per skeletal point + 4 bytes per edge.
"""

from __future__ import annotations

from typing import Union

from repro.clustering.cluster import Cluster
from repro.core.sgs import SGS
from repro.summaries.crd import CRD
from repro.summaries.rsp import RSP
from repro.summaries.skps import SkPS

SGS_CELL_FIXED_BYTES = 1 + 4 + 2  # status + population + connection bitmap
PER_MEMBER_ID_BYTES = 4
PER_COORDINATE_BYTES = 4


def sgs_cell_bytes(dimensions: int) -> int:
    """Bytes per skeletal grid cell (23 for the paper's 4-D setting)."""
    return PER_COORDINATE_BYTES * dimensions + SGS_CELL_FIXED_BYTES


def sgs_bytes(sgs: SGS) -> int:
    """Serialized size of one SGS."""
    return len(sgs.cells) * sgs_cell_bytes(sgs.dimensions)


def full_representation_bytes(
    cluster: Union[Cluster, int], dimensions: int
) -> int:
    """Serialized size of a cluster's full representation."""
    members = cluster if isinstance(cluster, int) else cluster.size
    return members * (PER_COORDINATE_BYTES * dimensions + PER_MEMBER_ID_BYTES)


def crd_bytes(crd: CRD) -> int:
    return PER_COORDINATE_BYTES * crd.dimensions + 4 + 4 + 4


def rsp_bytes(rsp: RSP) -> int:
    return rsp.sample_size * PER_COORDINATE_BYTES * rsp.dimensions + 4


def skps_bytes(skps: SkPS) -> int:
    dims = len(skps.points[0]) if skps.points else 0
    return (
        skps.size * PER_COORDINATE_BYTES * dims + len(skps.edges) * 4
    )


def tracker_state_bytes(sizes: dict, dimensions: int) -> int:
    """Bytes of the shared lifespan-tracker state.

    Per alive object: coordinates + id + core_until; plus 8 bytes per
    neighbor-histogram entry and 4 bytes per non-core-career neighbor
    reference (the theta_count-bounded auxiliary meta-data).
    """
    per_object = PER_COORDINATE_BYTES * dimensions + PER_MEMBER_ID_BYTES + 4
    return (
        sizes["objects"] * per_object
        + sizes["hist_entries"] * 8
        + sizes["noncore_entries"] * 4
    )


def csgs_state_bytes(csgs) -> int:
    """Model bytes of C-SGS state: tracker + skeletal-grid meta-data.

    Cells carry their coordinate plus status/population lifespans; each
    connection/attachment is a packed neighbor offset plus its lifespan
    (8 bytes), matching the paper's per-cell bitmap + lifespan-indicator
    accounting (Section 5.3).
    """
    sizes = csgs.state_sizes()
    dims = csgs.dimensions
    cell_bytes = sizes["cells"] * (PER_COORDINATE_BYTES * dims + 8)
    connection_bytes = (
        sizes["core_connections"] + sizes["edge_attachments"]
    ) * 8
    return tracker_state_bytes(sizes, dims) + cell_bytes + connection_bytes


def extra_n_state_bytes(extra_n) -> int:
    """Model bytes of Extra-N state: tracker + per-view membership.

    Each (object, view) union-find entry costs 8 bytes; the number of
    views is win/slide, which is where Extra-N's memory dependence on the
    slide size comes from.
    """
    sizes = extra_n.state_sizes()
    return tracker_state_bytes(sizes, extra_n.dimensions) + (
        sizes["view_entries"] * 8
    )


def compression_rate(sgs: SGS, cluster: Cluster) -> float:
    """Fraction of the full representation's bytes that SGS saves.

    Section 8.2 reports ~98% on average at the finest resolution.
    """
    full = full_representation_bytes(cluster, sgs.dimensions)
    if full <= 0:
        return 0.0
    return 1.0 - sgs_bytes(sgs) / full
