"""Simulated analyst panel (substitute for Section 8.3's user study).

Twenty WPI graduate students rated, for each to-be-matched cluster, the
top-3 matches found by each summarization format as "very similar",
"similar", or "not similar" after visual inspection in ViStream. The
reproduction replaces each student with a noisy threshold rater on top of
the full-representation oracle similarity: every analyst perceives the
oracle value perturbed by personal Gaussian noise and applies slightly
personal category thresholds. The reported *similar rate* is, exactly as
in Figure 9, the fraction of (analyst x match) ratings that are
"similar" or better.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

VERY_SIMILAR = "very similar"
SIMILAR = "similar"
NOT_SIMILAR = "not similar"


@dataclass
class StudyOutcome:
    """Aggregated ratings for one matching method."""

    method: str
    ratings: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.ratings.values())

    @property
    def similar_rate(self) -> float:
        """Fraction rated 'similar' or 'very similar' (Figure 9's bar)."""
        if self.total == 0:
            return 0.0
        agreeing = self.ratings.get(VERY_SIMILAR, 0) + self.ratings.get(
            SIMILAR, 0
        )
        return agreeing / self.total

    @property
    def very_similar_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.ratings.get(VERY_SIMILAR, 0) / self.total


class _Analyst:
    __slots__ = ("noise", "very_threshold", "similar_threshold", "_rng")

    def __init__(self, rng: random.Random, noise: float):
        self.noise = noise
        # Personal calibration of the category boundaries.
        self.very_threshold = 0.6 + rng.uniform(-0.05, 0.05)
        self.similar_threshold = 0.35 + rng.uniform(-0.05, 0.05)
        self._rng = random.Random(rng.randrange(2**31))

    def rate(self, similarity: float) -> str:
        perceived = similarity + self._rng.gauss(0.0, self.noise)
        if perceived >= self.very_threshold:
            return VERY_SIMILAR
        if perceived >= self.similar_threshold:
            return SIMILAR
        return NOT_SIMILAR


class SimulatedAnalystPanel:
    """A reproducible panel of noisy threshold raters."""

    def __init__(
        self,
        n_analysts: int = 20,
        noise: float = 0.08,
        seed: Optional[int] = 20,
    ):
        if n_analysts < 1:
            raise ValueError("need at least one analyst")
        rng = random.Random(seed)
        self.analysts: List[_Analyst] = [
            _Analyst(rng, noise) for _ in range(n_analysts)
        ]

    def rate_method(
        self, method: str, similarities: Sequence[float]
    ) -> StudyOutcome:
        """All analysts rate every match of one method.

        ``similarities`` are the oracle similarities of the matches the
        method returned (top-3 per query, concatenated).
        """
        outcome = StudyOutcome(method=method)
        for similarity in similarities:
            for analyst in self.analysts:
                label = analyst.rate(similarity)
                outcome.ratings[label] = outcome.ratings.get(label, 0) + 1
        return outcome
