"""Shared experiment-harness utilities: timing and table rendering.

Every bench prints the rows/series the corresponding paper artifact
reports, via these fixed-width tables, so ``bench_output.txt`` is
directly comparable against EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def fmt_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024 or unit == "GB":
            return f"{count:.2f}{unit}" if unit != "B" else f"{count:.0f}B"
        count /= 1024
    return f"{count:.2f}GB"


class Table:
    """Minimal fixed-width table printer for experiment output."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        header = " | ".join(
            h.ljust(widths[i]) for i, h in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def print_series(title: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x", y_label: str = "y") -> None:
    """Print an (x, y) series as the two rows a paper figure plots."""
    table = Table(title, [x_label] + [str(x) for x in xs])
    table.add_row(y_label, *[str(y) for y in ys])
    table.print()


def geometric_mean(values: Sequence[float]) -> Optional[float]:
    if not values:
        return None
    product = 1.0
    for value in values:
        if value <= 0:
            return None
        product *= value
    return product ** (1.0 / len(values))
