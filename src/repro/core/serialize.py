"""Serialization of SGS summaries and archived patterns.

Two formats:

* **binary** — the compact storage layout the paper's byte accounting
  assumes (Section 8.2): per cell, int32 location coordinates, one
  status byte, an int32 population, and a packed connection block. This
  is what the Pattern Base would write to disk; round-tripping it also
  validates the cost model in ``repro.eval.memory`` against real bytes.
* **dict / JSON** — a human-readable interchange form for tooling.

The binary connection block stores each connection as a signed byte per
dimension of the neighbor-cell *offset* (connections only ever reach
``ceil(sqrt(d))`` cells, so offsets fit easily), preceded by a one-byte
count — close to the paper's fixed 2-byte bitmap while remaining exact
for d >= 2 (see DESIGN.md on why a ±1 bitmap is insufficient).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.sgs import SGS

_MAGIC = b"SGS1"


def sgs_to_dict(sgs: SGS) -> Dict:
    """JSON-ready dictionary form of an SGS."""
    return {
        "side_length": sgs.side_length,
        "level": sgs.level,
        "cluster_id": sgs.cluster_id,
        "window_index": sgs.window_index,
        "cells": [
            {
                "location": list(cell.location),
                "population": cell.population,
                "status": cell.status.value,
                "connections": sorted(list(c) for c in cell.connections),
            }
            for cell in sgs.cells.values()
        ],
    }


def sgs_from_dict(data: Dict) -> SGS:
    """Inverse of :func:`sgs_to_dict`."""
    cells = [
        SkeletalGridCell(
            tuple(entry["location"]),
            data["side_length"],
            entry["population"],
            CellStatus(entry["status"]),
            frozenset(tuple(c) for c in entry["connections"]),
        )
        for entry in data["cells"]
    ]
    return SGS(
        cells,
        data["side_length"],
        level=data["level"],
        cluster_id=data["cluster_id"],
        window_index=data["window_index"],
    )


def sgs_to_json(sgs: SGS) -> str:
    return json.dumps(sgs_to_dict(sgs), sort_keys=True)


def sgs_from_json(text: str) -> SGS:
    return sgs_from_dict(json.loads(text))


def sgs_to_bytes(sgs: SGS) -> bytes:
    """Compact binary encoding (the Pattern Base storage layout)."""
    dims = sgs.dimensions
    out: List[bytes] = [
        _MAGIC,
        struct.pack(
            "<BdiiiI",
            dims,
            sgs.side_length,
            sgs.level,
            sgs.cluster_id,
            sgs.window_index,
            len(sgs.cells),
        ),
    ]
    for cell in sgs.cells.values():
        out.append(struct.pack(f"<{dims}i", *cell.location))
        out.append(
            struct.pack(
                "<BIB",
                1 if cell.is_core else 0,
                cell.population,
                len(cell.connections),
            )
        )
        for other in sorted(cell.connections):
            offsets = [o - c for o, c in zip(other, cell.location)]
            if any(not -128 <= off <= 127 for off in offsets):
                raise ValueError(
                    f"connection offset out of byte range: {offsets}"
                )
            out.append(struct.pack(f"<{dims}b", *offsets))
    return b"".join(out)


def sgs_from_bytes(blob: bytes) -> SGS:
    """Inverse of :func:`sgs_to_bytes`."""
    if blob[:4] != _MAGIC:
        raise ValueError("not an SGS binary blob")
    offset = 4
    dims, side, level, cluster_id, window_index, n_cells = struct.unpack_from(
        "<BdiiiI", blob, offset
    )
    offset += struct.calcsize("<BdiiiI")
    cells = []
    for _ in range(n_cells):
        location = struct.unpack_from(f"<{dims}i", blob, offset)
        offset += 4 * dims
        is_core, population, n_conn = struct.unpack_from("<BIB", blob, offset)
        offset += struct.calcsize("<BIB")
        connections = []
        for _ in range(n_conn):
            deltas = struct.unpack_from(f"<{dims}b", blob, offset)
            offset += dims
            connections.append(
                tuple(c + d for c, d in zip(location, deltas))
            )
        cells.append(
            SkeletalGridCell(
                location,
                side,
                population,
                CellStatus.CORE if is_core else CellStatus.EDGE,
                frozenset(connections),
            )
        )
    return SGS(
        cells, side, level=level, cluster_id=cluster_id,
        window_index=window_index,
    )
