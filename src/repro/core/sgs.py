"""Skeletal Grid Summarization — the summarized cluster representation.

An :class:`SGS` is the set of skeletal grid cells containing at least one
member of the summarized cluster (Definition 4.4), at some resolution
level (Section 6.1: level 0 is the finest, built on cells whose diagonal
equals θr; level n combines θ^n level-0 cells per side).

The class exposes the derived quantities the rest of the system consumes:
the cluster feature vector for the non-locational index, the MBR for the
locational index, and the fidelity helpers the property-based tests
assert (Lemmas 4.3–4.5).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cells import Coord, SkeletalGridCell
from repro.geometry.mbr import MBR


class SGS:
    """Skeletal Grid Summarization of a single density-based cluster."""

    __slots__ = ("cells", "side_length", "level", "cluster_id", "window_index")

    def __init__(
        self,
        cells: Iterable[SkeletalGridCell],
        side_length: float,
        level: int = 0,
        cluster_id: int = -1,
        window_index: int = -1,
    ):
        self.cells: Dict[Coord, SkeletalGridCell] = {}
        for cell in cells:
            if abs(cell.side_length - side_length) > 1e-9:
                raise ValueError("all cells of an SGS share one side length")
            if cell.location in self.cells:
                raise ValueError(f"duplicate cell location {cell.location}")
            self.cells[cell.location] = cell
        if not self.cells:
            raise ValueError("an SGS must contain at least one cell")
        self.side_length = float(side_length)
        self.level = int(level)
        self.cluster_id = cluster_id
        self.window_index = window_index

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def dimensions(self) -> int:
        return next(iter(self.cells.values())).dimensions

    @property
    def volume(self) -> int:
        """Number of skeletal grid cells (the 'volume' feature)."""
        return len(self.cells)

    @property
    def core_count(self) -> int:
        """Number of core cells (the 'status count' feature)."""
        return sum(1 for cell in self.cells.values() if cell.is_core)

    @property
    def population(self) -> int:
        """Total number of summarized cluster member objects."""
        return sum(cell.population for cell in self.cells.values())

    def core_cells(self) -> List[SkeletalGridCell]:
        return [cell for cell in self.cells.values() if cell.is_core]

    def edge_cells(self) -> List[SkeletalGridCell]:
        return [cell for cell in self.cells.values() if not cell.is_core]

    def average_density(self) -> float:
        """Mean objects-per-cell-volume over the occupied cells."""
        total = sum(cell.density() for cell in self.cells.values())
        return total / len(self.cells)

    def average_connectivity(self) -> float:
        """Mean number of connections per core cell (0 when no core cells)."""
        cores = self.core_cells()
        if not cores:
            return 0.0
        return sum(len(cell.connections) for cell in cores) / len(cores)

    def mbr(self) -> MBR:
        """Bounding rectangle of the covered data space (Lemma 4.3)."""
        lows = None
        highs = None
        for cell in self.cells.values():
            cell_lows = cell.lows()
            cell_highs = cell.highs()
            if lows is None:
                lows = list(cell_lows)
                highs = list(cell_highs)
            else:
                for i in range(len(lows)):
                    lows[i] = min(lows[i], cell_lows[i])
                    highs[i] = max(highs[i], cell_highs[i])
        return MBR(lows, highs)

    def density_of_region(self, locations: Sequence[Coord]) -> float:
        """Exact density of the sub-region covered by ``locations``
        (Lemma 4.4: populations are exact and cells do not overlap)."""
        cells = [self.cells[loc] for loc in locations]
        total_population = sum(cell.population for cell in cells)
        total_volume = sum(cell.cell_volume() for cell in cells)
        return total_population / total_volume

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------

    def core_graph(self) -> Dict[Coord, List[Coord]]:
        """Adjacency among core cells via the connection vectors."""
        adjacency: Dict[Coord, List[Coord]] = {}
        for cell in self.cells.values():
            if not cell.is_core:
                continue
            neighbors = []
            for other in cell.connections:
                target = self.cells.get(other)
                if target is not None and target.is_core:
                    neighbors.append(other)
            adjacency[cell.location] = neighbors
        return adjacency

    def core_path_length(self, start: Coord, goal: Coord) -> Optional[int]:
        """Length (in hops) of the shortest core-cell path, or None.

        Used by the Lemma 4.5 fidelity tests: a connected core-object path
        of n objects implies a core-cell path of at most n cells.
        """
        if start == goal:
            return 0
        adjacency = self.core_graph()
        if start not in adjacency or goal not in adjacency:
            return None
        frontier = [start]
        distance = {start: 0}
        while frontier:
            next_frontier: List[Coord] = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor in distance:
                        continue
                    distance[neighbor] = distance[node] + 1
                    if neighbor == goal:
                        return distance[neighbor]
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def is_connected(self) -> bool:
        """True when the core cells form one connected component and every
        edge cell is attached to (connected from) some core cell."""
        cores = [cell.location for cell in self.cells.values() if cell.is_core]
        if not cores:
            return len(self.cells) == 1
        adjacency = self.core_graph()
        seen = {cores[0]}
        stack = [cores[0]]
        while stack:
            node = stack.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        if any(core not in seen for core in cores):
            return False
        attached = set()
        for core in cores:
            for other in self.cells[core].connections:
                attached.add(other)
        for cell in self.cells.values():
            if not cell.is_core and cell.location not in attached:
                return False
        return True

    # ------------------------------------------------------------------
    # Fidelity (Lemma 4.3)
    # ------------------------------------------------------------------

    def max_location_error(self, member_coords: Iterable[Tuple[float, ...]]) -> float:
        """Upper bound on the distance from any covered-space point to the
        nearest cluster member: the cell diagonal (== θr at level 0)."""
        del member_coords  # the bound is structural, not data dependent
        return self.side_length * math.sqrt(self.dimensions)

    def covers_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` falls into one of the skeletal grid cells."""
        coord = tuple(int(math.floor(value / self.side_length)) for value in point)
        return coord in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return (
            f"SGS(cluster={self.cluster_id}, window={self.window_index}, "
            f"level={self.level}, cells={len(self.cells)}, "
            f"cores={self.core_count}, population={self.population})"
        )
