"""Approximate full-representation regeneration from an SGS.

The paper's introduction lists "full representation re-generation
techniques based on pattern summarizations" among the uses of an
effective summary. Because SGS records, per non-overlapping cell, the
exact member population (Lemma 4.4), a faithful synthetic stand-in for
the original members can be produced by drawing each cell's population
uniformly inside the cell — the location error of any regenerated point
is bounded by the cell diagonal (= θr at level 0, Lemma 4.3), and the
density distribution is reproduced exactly at cell granularity.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.clustering.cluster import Cluster
from repro.core.sgs import SGS
from repro.streams.objects import StreamObject

Point = Tuple[float, ...]


def regenerate_points(sgs: SGS, seed: Optional[int] = 0) -> List[Point]:
    """Draw ``population`` points uniformly inside every skeletal cell."""
    rng = random.Random(seed)
    points: List[Point] = []
    for cell in sgs.cells.values():
        lows = cell.lows()
        highs = cell.highs()
        for _ in range(cell.population):
            points.append(
                tuple(
                    rng.uniform(low, high)
                    for low, high in zip(lows, highs)
                )
            )
    return points


def regenerate_cluster(
    sgs: SGS, seed: Optional[int] = 0, start_oid: int = 0
) -> Cluster:
    """Regenerate an approximate :class:`Cluster` from a summary.

    Points drawn in core cells become the core objects, points in edge
    cells the edge objects — matching the status granularity SGS keeps.
    """
    rng = random.Random(seed)
    cores: List[StreamObject] = []
    edges: List[StreamObject] = []
    oid = start_oid
    for cell in sgs.cells.values():
        lows = cell.lows()
        highs = cell.highs()
        for _ in range(cell.population):
            obj = StreamObject(
                oid,
                tuple(
                    rng.uniform(low, high)
                    for low, high in zip(lows, highs)
                ),
            )
            obj.first_window = obj.last_window = sgs.window_index
            oid += 1
            (cores if cell.is_core else edges).append(obj)
    return Cluster(sgs.cluster_id, cores, edges, sgs.window_index)
