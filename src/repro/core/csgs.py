"""C-SGS: integrated cluster extraction + summarization (Section 5).

C-SGS maintains the skeletal grid cells of the data space incrementally
across window slides. Cell *statuses* and cell *connections* carry
lifespans (Lemmas 5.1/5.2) pre-computed at insertion time, so expiration
needs no maintenance work: a status or connection simply stops being
valid once the window index passes its recorded lifespan.

Per window, the output stage runs a depth-first search over the currently
core cells (vertices) and currently valid connections (edges), collects
the attached edge cells, and emits each connected group as one cluster —
simultaneously in summarized form (:class:`~repro.core.sgs.SGS`) and in
full representation (:class:`~repro.clustering.cluster.Cluster`), the
latter derived from the objects stored in the group's cells.

State kept beyond the raw window contents:

* ``_cell_core_until[coord]`` — Lemma 5.1: the max core-career end over
  the cell's objects (monotone per event; self-correcting once the
  contributing object expires, since careers never outlive objects);
* ``_core_connections[(a, b)]`` — Lemma 5.2: last window in which core
  cells ``a`` and ``b`` are directly connected (some core-object pair,
  one in each, are neighbors);
* ``_edge_attachments[(a, b)]`` — last window in which some object in
  cell ``a`` is attached to a core object in core cell ``b``.

All three maps are updated by exactly two event kinds from the
:class:`~repro.core.lifespan.NeighborhoodTracker`: new-object insertion
(the object's own careers vs. each of its neighbors) and core-career
extension of an existing object (replayed against its non-core-career
neighbor list). This is the paper's "piggy-backed" summarization: no
extra range queries, no per-view cluster maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.clustering.cluster import Cluster
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.lifespan import NeighborhoodTracker, ObjectState
from repro.core.sgs import SGS
from repro.streams.windows import WindowBatch

Coord = Tuple[int, ...]
PairKey = Tuple[Coord, Coord]


def _pair_key(a: Coord, b: Coord) -> PairKey:
    return (a, b) if a <= b else (b, a)


@dataclass
class WindowOutput:
    """Result of one window: clusters in both representations.

    ``clusters[i]`` and ``summaries[i]`` describe the same cluster.
    """

    window_index: int
    clusters: List[Cluster] = field(default_factory=list)
    summaries: List[SGS] = field(default_factory=list)


class CSGS:
    """Integrated density-based cluster extraction + SGS summarization."""

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        grid=None,
        manage_grid: bool = True,
        provider=None,
        backend=None,
        cells=None,
        refinement=None,
    ):
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self.dimensions = int(dimensions)
        self.tracker = NeighborhoodTracker(
            theta_range,
            theta_count,
            dimensions,
            on_insert=self._handle_insert,
            on_extension=self._handle_extension,
            grid=grid,
            manage_grid=manage_grid,
            provider=provider,
            backend=backend,
            cells=cells,
            refinement=refinement,
        )
        self._cell_core_until: Dict[Coord, int] = {}
        self._core_connections: Dict[PairKey, int] = {}
        self._edge_attachments: Dict[PairKey, int] = {}

    # ------------------------------------------------------------------
    # Event handlers (insertion-time lifespan maintenance)
    # ------------------------------------------------------------------

    def _handle_insert(
        self, state: ObjectState, neighbors: List[ObjectState]
    ) -> None:
        window = self.tracker.current_window
        if state.core_until >= window:
            cell = state.cell
            if state.core_until > self._cell_core_until.get(cell, -1):
                self._cell_core_until[cell] = state.core_until
        for nb in neighbors:
            if nb.cell != state.cell:
                self._record_pair(state, nb)

    def _handle_extension(
        self,
        state: ObjectState,
        old_core_until: int,
        new_core_until: int,
        snapshot: List[ObjectState],
    ) -> None:
        del old_core_until  # superseded values need no replay of their own
        window = self.tracker.current_window
        cell = state.cell
        if new_core_until > self._cell_core_until.get(cell, -1):
            self._cell_core_until[cell] = new_core_until
        for other in snapshot:
            if other.obj.last_window < window or other.cell == cell:
                continue
            # Core-core connection: both careers and the neighborship.
            conn = min(new_core_until, other.core_until)
            if conn >= window:
                key = _pair_key(cell, other.cell)
                if conn > self._core_connections.get(key, -1):
                    self._core_connections[key] = conn
            # Edge attachment of the neighbor's cell to this core cell.
            attach = min(other.obj.last_window, new_core_until)
            if attach >= window:
                key = (other.cell, cell)
                if attach > self._edge_attachments.get(key, -1):
                    self._edge_attachments[key] = attach

    def _record_pair(self, a: ObjectState, b: ObjectState) -> None:
        """Record connection/attachment lifespans implied by a new
        neighbor pair (a just arrived, b preexisting, different cells)."""
        window = self.tracker.current_window
        conn = min(a.core_until, b.core_until)
        if conn >= window:
            key = _pair_key(a.cell, b.cell)
            if conn > self._core_connections.get(key, -1):
                self._core_connections[key] = conn
        attach_ab = min(a.obj.last_window, b.core_until)
        if attach_ab >= window:
            key = (a.cell, b.cell)
            if attach_ab > self._edge_attachments.get(key, -1):
                self._edge_attachments[key] = attach_ab
        attach_ba = min(b.obj.last_window, a.core_until)
        if attach_ba >= window:
            key = (b.cell, a.cell)
            if attach_ba > self._edge_attachments.get(key, -1):
                self._edge_attachments[key] = attach_ba

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------

    def begin_window(self, window_index: int) -> None:
        """Slide to ``window_index``: purge expired state and lifespans."""
        self.tracker.advance_to(window_index)
        self._prune(window_index)

    def ingest(self, obj, neighbor_objs=None):
        """Insert one object (optionally with pre-computed neighbors, for
        shared multi-query execution)."""
        return self.tracker.insert(obj, neighbor_objs)

    def emit(self, window_index: int) -> WindowOutput:
        """Emit the current window's clusters in both representations."""
        return self._emit(window_index)

    def process_batch(self, batch: WindowBatch) -> WindowOutput:
        """Slide to the batch's window, insert its tuples, emit output.

        Insertion runs through the tracker's batched fast path: one
        ``range_query_many`` pass over the whole slide instead of one
        range query per object.
        """
        self.begin_window(batch.index)
        self.tracker.insert_batch(batch.new_objects)
        return self._emit(batch.index)

    def process(self, batches: Iterable[WindowBatch]) -> Iterator[WindowOutput]:
        for batch in batches:
            yield self.process_batch(batch)

    def _prune(self, window: int) -> None:
        """Drop lifespan entries that ended before ``window``."""
        self._cell_core_until = {
            coord: until
            for coord, until in self._cell_core_until.items()
            if until >= window
        }
        self._core_connections = {
            key: until
            for key, until in self._core_connections.items()
            if until >= window
        }
        self._edge_attachments = {
            key: until
            for key, until in self._edge_attachments.items()
            if until >= window
        }

    # ------------------------------------------------------------------
    # Output stage (Section 5.4)
    # ------------------------------------------------------------------

    def _emit(self, window: int) -> WindowOutput:
        # Cell substrate: the provider itself for the grid backend, the
        # tracker's own CellMap for search-only backends.
        grid = self.tracker.cells
        states = self.tracker.states

        core_cells: Set[Coord] = {
            coord
            for coord, until in self._cell_core_until.items()
            if until >= window and grid.cell_population(coord) > 0
        }

        # Depth-first search over currently connected core cells.
        adjacency: Dict[Coord, List[Coord]] = {coord: [] for coord in core_cells}
        for (a, b), until in self._core_connections.items():
            if until >= window and a in core_cells and b in core_cells:
                adjacency[a].append(b)
                adjacency[b].append(a)
        # Connection-recording order (and hence adjacency-list and set
        # insertion order) varies with the neighbor-search backend; sort
        # every iteration over it so the emitted output is
        # backend-independent.
        for neighbors in adjacency.values():
            neighbors.sort()
        group_of: Dict[Coord, int] = {}
        group_cores: List[List[Coord]] = []
        for coord in sorted(core_cells):
            if coord in group_of:
                continue
            group_id = len(group_cores)
            members = []
            stack = [coord]
            group_of[coord] = group_id
            while stack:
                node = stack.pop()
                members.append(node)
                for neighbor in adjacency[node]:
                    if neighbor not in group_of:
                        group_of[neighbor] = group_id
                        stack.append(neighbor)
            group_cores.append(members)

        # Candidate edge cells from currently valid attachments. Note the
        # core/edge status of a cell is per cluster (Definition 4.2): a
        # cell that is core for cluster P can simultaneously be an edge
        # cell of cluster Q when one of its non-core objects is attached
        # to a core object of Q — so core cells attached across groups
        # are candidates too.
        edge_candidates: Set[Coord] = set()
        for (edge_coord, core_coord), until in self._edge_attachments.items():
            if until < window or core_coord not in core_cells:
                continue
            if edge_coord in core_cells and (
                group_of[edge_coord] == group_of[core_coord]
            ):
                continue
            if grid.cell_population(edge_coord) > 0:
                edge_candidates.add(edge_coord)

        # Per-group edge members, resolved through the objects'
        # non-core-career neighbor lists (no range queries).
        n_groups = len(group_cores)
        group_edge_members: List[Dict[int, ObjectState]] = [
            {} for _ in range(n_groups)
        ]
        group_edge_cells: List[Dict[Coord, int]] = [{} for _ in range(n_groups)]
        for edge_coord in sorted(edge_candidates):
            own_group = group_of.get(edge_coord)
            for obj in grid.objects_in_cell(edge_coord):
                state = states[obj.oid]
                if state.core_until >= window:
                    continue  # core objects belong only to their own group
                touched: Set[int] = set()
                for core_state in state.attached_cores_in(window):
                    group_id = group_of.get(core_state.cell)
                    if group_id is not None and group_id != own_group:
                        touched.add(group_id)
                for group_id in touched:
                    group_edge_members[group_id][state.oid] = state
                    cells = group_edge_cells[group_id]
                    cells[edge_coord] = cells.get(edge_coord, 0) + 1

        side = grid.side
        clusters: List[Cluster] = []
        summaries: List[SGS] = []
        for group_id, cores in enumerate(group_cores):
            core_objects: List = []
            edge_objects: List = []
            core_set = set(cores)
            for coord in cores:
                for obj in grid.objects_in_cell(coord):
                    if states[obj.oid].core_until >= window:
                        core_objects.append(obj)
                    else:
                        edge_objects.append(obj)
            for state in group_edge_members[group_id].values():
                edge_objects.append(state.obj)
            clusters.append(
                Cluster(group_id, core_objects, edge_objects, window)
            )

            cells: List[SkeletalGridCell] = []
            attached_cells = group_edge_cells[group_id]
            for coord in cores:
                connections = set(
                    neighbor
                    for neighbor in adjacency[coord]
                    if neighbor in core_set
                )
                for edge_coord in attached_cells:
                    until = self._edge_attachments.get((edge_coord, coord), -1)
                    if until >= window:
                        connections.add(edge_coord)
                cells.append(
                    SkeletalGridCell(
                        coord,
                        side,
                        grid.cell_population(coord),
                        CellStatus.CORE,
                        frozenset(connections),
                    )
                )
            for edge_coord, member_count in attached_cells.items():
                cells.append(
                    SkeletalGridCell(
                        edge_coord,
                        side,
                        member_count,
                        CellStatus.EDGE,
                        frozenset(),
                    )
                )
            summaries.append(
                SGS(cells, side, level=0, cluster_id=group_id, window_index=window)
            )

        return WindowOutput(window, clusters, summaries)

    # ------------------------------------------------------------------
    # Introspection for memory accounting
    # ------------------------------------------------------------------

    def state_sizes(self) -> Dict[str, int]:
        """Entry counts of the maintained meta-data (for memory models)."""
        hist_entries = sum(
            len(state.neighbor_hist) for state in self.tracker.states.values()
        )
        noncore_entries = sum(
            len(state.noncore_neighbors)
            for state in self.tracker.states.values()
        )
        return {
            "objects": len(self.tracker.states),
            "hist_entries": hist_entries,
            "noncore_entries": noncore_entries,
            "cells": len(self._cell_core_until),
            "core_connections": len(self._core_connections),
            "edge_attachments": len(self._edge_attachments),
        }
