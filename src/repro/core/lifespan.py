"""Lifespan analysis over sliding windows (Section 5.3).

In periodic sliding windows the lifespan of every object — and therefore
of every neighborship — is deterministic the moment the object arrives
(Observations 5.2/5.3). This module implements the paper's consequence of
that fact: *all* expiration effects are pre-computed at insertion time, so
window slides cost nothing beyond dropping expired objects.

The :class:`NeighborhoodTracker` maintains, per alive object:

* the **neighbor-expiry histogram** — a count of the object's neighbors
  keyed by the neighbors' last windows. The θc-th largest key is exactly
  ``win_θc_nei`` of Observation 5.4, giving the object's core-career end
  (``core_until``) in O(distinct keys).
* ``core_until`` — the last window (inclusive) in which the object is a
  core object, given everything known so far. It can only grow, and only
  when a new neighbor arrives (a *status prolong / promotion*, Figure 6).
* the **non-core-career neighbor list** (Section 5.3, auxiliary
  meta-data) — the neighbors whose neighborship outlives the object's
  core career. Its size is bounded by θc (otherwise the object would
  still be core), and it is exactly the information needed to (a) attach
  edge objects to clusters without re-running range queries and (b)
  propagate core-career extensions to cell connections / cluster views.

Consumers (C-SGS, Extra-N) subscribe via two callbacks:

* ``on_insert(state, neighbor_states)`` — after a new object's careers
  and its neighbors' careers are fully updated;
* ``on_extension(state, old_core_until, new_core_until, snapshot)`` —
  when an existing object's core career is promoted/prolonged, with a
  snapshot of its non-core-career neighbor list taken *before* pruning
  (the pairs whose joint careers may have been extended).

Exactly one range query runs per inserted object, matching the paper's
"minimum number of range query searches" guarantee — and because that
query dominates insertion cost, the search itself is delegated to a
pluggable :class:`~repro.index.provider.NeighborProvider` (grid, k-d
tree, or R-tree backend). The skeletal-grid *cell* bookkeeping C-SGS
needs is independent of the search backend: when the provider is
cell-backed (the grid), it doubles as the cell substrate; otherwise the
tracker keeps a bare :class:`~repro.index.grid_index.CellMap` alongside.

:meth:`NeighborhoodTracker.insert_batch` is the batched fast path: the
whole window batch is bulk-inserted and answered with one
``range_query_many`` pass, then careers are updated in arrival order —
producing output identical to object-at-a-time insertion.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.index.grid_index import CellMap
from repro.index.provider import (
    NeighborProvider,
    batched_neighborhoods,
    cell_substrate,
    resolve_provider,
)
from repro.streams.objects import StreamObject

Coord = Tuple[int, ...]

# Sentinel meaning "not core in any window known so far".
NEVER_CORE = -1


class ObjectState:
    """Lifespan bookkeeping for one alive stream object."""

    __slots__ = ("obj", "cell", "neighbor_hist", "core_until", "noncore_neighbors")

    def __init__(self, obj: StreamObject, cell: Coord):
        self.obj = obj
        self.cell = cell
        # {neighbor_last_window: count of such neighbors}
        self.neighbor_hist: Dict[int, int] = {}
        self.core_until: int = NEVER_CORE
        # Neighbors whose neighborship outlives this object's core career.
        self.noncore_neighbors: List["ObjectState"] = []

    @property
    def oid(self) -> int:
        return self.obj.oid

    @property
    def last_window(self) -> int:
        return self.obj.last_window

    def alive_in(self, window_index: int) -> bool:
        return self.obj.last_window >= window_index

    def is_core_in(self, window_index: int) -> bool:
        return self.core_until >= window_index

    def compute_core_until(self, window_index: int, theta_count: int) -> int:
        """Recompute the core-career end from the neighbor histogram.

        Returns the largest window ``w`` (capped at the object's own last
        window) such that at least θc neighbors are alive in ``w``, or
        :data:`NEVER_CORE` when fewer than θc neighbors are alive in the
        current window. Histogram keys before ``window_index`` are pruned
        as a side effect (those neighbors have expired).
        """
        hist = self.neighbor_hist
        stale = [key for key in hist if key < window_index]
        for key in stale:
            del hist[key]
        remaining = theta_count
        for key in sorted(hist, reverse=True):
            remaining -= hist[key]
            if remaining <= 0:
                return min(key, self.obj.last_window)
        return NEVER_CORE

    def is_edge_in(self, window_index: int) -> bool:
        """True when the object is an edge object in ``window_index``.

        Observation 5.4: an object is an edge object after (or instead of)
        its core career while at least one of its non-core-career
        neighbors is still a core object. Expired entries are pruned
        lazily here.
        """
        if self.core_until >= window_index:
            return False
        live = [
            nb
            for nb in self.noncore_neighbors
            if nb.obj.last_window >= window_index
        ]
        if len(live) != len(self.noncore_neighbors):
            self.noncore_neighbors = live
        return any(nb.core_until >= window_index for nb in live)

    def attached_cores_in(self, window_index: int) -> List["ObjectState"]:
        """The core objects this (edge) object is attached to at a window."""
        return [
            nb
            for nb in self.noncore_neighbors
            if nb.obj.last_window >= window_index
            and nb.core_until >= window_index
        ]

    def __repr__(self) -> str:
        return (
            f"ObjectState(oid={self.oid}, cell={self.cell}, "
            f"core_until={self.core_until})"
        )


InsertCallback = Callable[[ObjectState, List[ObjectState]], None]
ExtensionCallback = Callable[[ObjectState, int, int, List[ObjectState]], None]


class NeighborhoodTracker:
    """Shared incremental neighborhood/career maintenance.

    Drives the grid index, the per-object lifespan state, and the
    promotion/prolong event stream that both C-SGS (cell statuses and
    connections) and Extra-N (predicted cluster-membership views) consume.
    """

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        on_insert: Optional[InsertCallback] = None,
        on_extension: Optional[ExtensionCallback] = None,
        grid: Optional[NeighborProvider] = None,
        manage_grid: bool = True,
        provider: Optional[NeighborProvider] = None,
        backend: Optional[str] = None,
        cells: Optional[CellMap] = None,
        maintain_cells: bool = True,
        refinement: Optional[str] = None,
    ):
        if theta_count < 1:
            raise ValueError("theta_count must be at least 1")
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self.dimensions = int(dimensions)
        # A provider may be shared across trackers (multi-query
        # execution); then exactly one owner manages insert/remove on it.
        # ``grid`` is the historical name for the same parameter.
        if provider is not None and grid is not None:
            raise ValueError("pass either provider or grid, not both")
        provider = resolve_provider(
            provider if provider is not None else grid,
            backend,
            theta_range,
            dimensions,
            refinement=refinement,
        )
        self.provider = provider
        # Backward-compatible alias: the provider used to always be a grid.
        self.grid = provider
        # The SGS cell substrate: an externally shared CellMap (its
        # owner maintains it), one the provider itself maintains (the
        # grid *is* a CellMap; the auto backend keeps an observer one),
        # or a bare CellMap this tracker maintains. Consumers that never
        # read per-cell contents (Extra-N) pass ``maintain_cells=False``
        # to skip the bookkeeping; cell *coordinates* stay available.
        substrate = cell_substrate(provider)
        if cells is not None:
            self.cells: CellMap = cells
            self._manage_cells = False
        elif substrate is not None:
            self.cells = substrate
            self._manage_cells = False
        else:
            self.cells = CellMap(theta_range, dimensions)
            self._manage_cells = maintain_cells
        # Whether ``provider.insert`` returns coordinates of the very
        # substrate this tracker reads (grid and auto backends do).
        self._cell_backed = self.cells is substrate
        self.manage_grid = manage_grid
        self.states: Dict[int, ObjectState] = {}
        self.current_window = 0
        self._expiry_buckets: Dict[int, List[ObjectState]] = {}
        self._on_insert = on_insert
        self._on_extension = on_extension

    # ------------------------------------------------------------------
    # Window progression
    # ------------------------------------------------------------------

    def advance_to(self, window_index: int) -> int:
        """Move to ``window_index``, purging expired objects.

        Returns the number of objects expired. This — bucket removal — is
        the *only* expiration-time work, per the lifespan design.
        """
        if window_index < self.current_window:
            raise ValueError("windows must advance monotonically")
        expired = 0
        for window in range(self.current_window, window_index):
            bucket = self._expiry_buckets.pop(window, None)
            if not bucket:
                continue
            for state in bucket:
                del self.states[state.oid]
                if self.manage_grid:
                    self.provider.remove(state.obj)
                if self._manage_cells:
                    self.cells.remove(state.obj)
                expired += 1
        self.current_window = window_index
        return expired

    # ------------------------------------------------------------------
    # Insertion (Section 5.4, "Handling Insertions")
    # ------------------------------------------------------------------

    def insert(
        self,
        obj: StreamObject,
        neighbor_objs: Optional[List[StreamObject]] = None,
    ) -> ObjectState:
        """Insert a new object: one range query, then career updates.

        ``neighbor_objs`` lets a multi-query coordinator inject the
        shared range-query result (the object must then already be in
        the shared grid); by default the tracker runs the query itself.
        """
        if obj.last_window < self.current_window:
            raise ValueError(
                f"object {obj.oid} is already expired at window "
                f"{self.current_window}"
            )
        cell: Optional[Coord] = None
        if neighbor_objs is None:
            if not self.manage_grid:
                raise ValueError(
                    "a tracker on a shared provider needs neighbors injected"
                )
            placed = self.provider.insert(obj)
            if self._cell_backed:
                cell = placed  # the provider returns the cell coord
            neighbor_objs = self.provider.range_query(
                obj.coords, exclude_oid=obj.oid
            )
        return self._insert_prepared(obj, neighbor_objs, cell)

    def insert_batch(self, objects: Iterable[StreamObject]) -> None:
        """Insert a window batch through the batched range-query path.

        Delegates to :func:`~repro.index.provider.batched_neighborhoods`
        — one bulk insert plus one ``range_query_many`` pass — whose
        intra-batch crediting makes the career updates (and the event
        stream consumers see) identical to object-at-a-time insertion.
        """
        objects = list(objects)
        if not objects:
            return
        if not self.manage_grid:
            raise ValueError(
                "a tracker on a shared provider needs neighbors injected"
            )
        for obj in objects:
            if obj.last_window < self.current_window:
                raise ValueError(
                    f"object {obj.oid} is already expired at window "
                    f"{self.current_window}"
                )
        cell_backed = self._cell_backed
        for obj, placed, known in batched_neighborhoods(
            self.provider, objects
        ):
            self._insert_prepared(obj, known, placed if cell_backed else None)

    def _insert_prepared(
        self,
        obj: StreamObject,
        neighbor_objs: List[StreamObject],
        cell: Optional[Coord] = None,
    ) -> ObjectState:
        """Career updates for one object whose neighbors are resolved.

        ``cell`` is the object's grid coordinate when the caller already
        has it (the grid provider returns it on insert); otherwise it is
        derived here — inserting into the tracker's own CellMap when the
        provider is not cell-backed.
        """
        window = self.current_window
        theta_count = self.theta_count
        if self._manage_cells:
            cell = self.cells.insert(obj)
        elif cell is None:
            cell = self.cells.cell_coord(obj.coords)
        state = ObjectState(obj, cell)
        self.states[obj.oid] = state
        self._expiry_buckets.setdefault(obj.last_window, []).append(state)

        neighbors = [self.states[nb.oid] for nb in neighbor_objs]

        # New object's own careers.
        hist = state.neighbor_hist
        for nb in neighbors:
            key = nb.obj.last_window
            hist[key] = hist.get(key, 0) + 1
        state.core_until = state.compute_core_until(window, theta_count)
        threshold = max(state.core_until, window - 1)
        state.noncore_neighbors = [
            nb
            for nb in neighbors
            if min(obj.last_window, nb.obj.last_window) > threshold
        ]

        # Impact on existing neighbors: status promotion / prolong.
        for nb in neighbors:
            nb_hist = nb.neighbor_hist
            key = obj.last_window
            nb_hist[key] = nb_hist.get(key, 0) + 1
            old = nb.core_until
            new = nb.compute_core_until(window, theta_count)
            if new > old:
                nb.core_until = new
                snapshot = list(nb.noncore_neighbors)
                if self._on_extension is not None:
                    self._on_extension(nb, old, new, snapshot)
                nb.noncore_neighbors = [
                    other
                    for other in nb.noncore_neighbors
                    if other.obj.last_window >= window
                    and min(nb.obj.last_window, other.obj.last_window) > new
                ]
            if min(nb.obj.last_window, obj.last_window) > max(
                nb.core_until, window - 1
            ):
                nb.noncore_neighbors.append(state)

        if self._on_insert is not None:
            self._on_insert(state, neighbors)
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def alive_states(self) -> Iterator[ObjectState]:
        return iter(self.states.values())

    def alive_objects(self) -> List[StreamObject]:
        return [state.obj for state in self.states.values()]

    def state_of(self, oid: int) -> ObjectState:
        return self.states[oid]

    def __len__(self) -> int:
        return len(self.states)
