"""Skeletal grid cells — the building blocks of SGS (Definition 4.4).

Each cell carries the five attributes of the paper: location (grid
coordinate, from which the per-dimension minimum values follow), side
length, population, status (core/edge), and a connection vector. We store
connections as a frozen set of neighbor cell coordinates instead of a
fixed boolean vector over "adjacent" cells: with cell diagonal = θr,
directly connected core cells can be up to ``ceil(sqrt(d))`` grid steps
apart, so a ±1-step boolean vector cannot express all legal connections
in d >= 2 (see DESIGN.md). The byte-accounting model in
``repro.eval.memory`` still charges the paper's fixed per-cell cost so
storage comparisons stay commensurate.
"""

from __future__ import annotations

import enum
import math
from typing import FrozenSet, Tuple

from repro.index.grid_index import min_cell_gap_sq

Coord = Tuple[int, ...]


class CellStatus(enum.Enum):
    """Status of a skeletal grid cell (Definition 4.2)."""

    CORE = "core"
    EDGE = "edge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SkeletalGridCell:
    """One skeletal grid cell of an SGS.

    Attributes mirror Definition 4.4:

    * ``location`` — integer grid coordinate; the continuous minimum value
      on dimension ``i`` is ``location[i] * side_length``.
    * ``side_length`` — extent on every dimension (uniform cells).
    * ``population`` — number of cluster member objects inside the cell.
    * ``status`` — :class:`CellStatus`.
    * ``connections`` — coordinates of connected skeletal grid cells. Per
      Definition 4.4 only core cells carry connections (to directly
      connected core cells and to attached edge cells); for edge cells the
      set is empty.
    """

    __slots__ = ("location", "side_length", "population", "status", "connections")

    def __init__(
        self,
        location: Coord,
        side_length: float,
        population: int,
        status: CellStatus,
        connections: FrozenSet[Coord] = frozenset(),
    ):
        if population < 0:
            raise ValueError("population must be non-negative")
        if side_length <= 0:
            raise ValueError("side_length must be positive")
        self.location = tuple(location)
        self.side_length = float(side_length)
        self.population = int(population)
        self.status = status
        self.connections = frozenset(connections)

    @property
    def dimensions(self) -> int:
        return len(self.location)

    @property
    def is_core(self) -> bool:
        return self.status is CellStatus.CORE

    def lows(self) -> Tuple[float, ...]:
        """Continuous minimum value per dimension (the location vector)."""
        return tuple(c * self.side_length for c in self.location)

    def highs(self) -> Tuple[float, ...]:
        return tuple((c + 1) * self.side_length for c in self.location)

    def center(self) -> Tuple[float, ...]:
        return tuple((c + 0.5) * self.side_length for c in self.location)

    def cell_volume(self) -> float:
        return self.side_length ** self.dimensions

    def density(self) -> float:
        """Objects per unit volume inside this cell (Lemma 4.4)."""
        return self.population / self.cell_volume()

    def min_gap_to(self, other: "SkeletalGridCell") -> float:
        """Minimum distance between points of this cell and ``other``.

        Both cells must share the side length (one SGS level); the gap
        is the corner-to-corner :func:`~repro.index.grid_index.min_cell_gap_sq`
        — the same geometry the sphere-pruned offset tables are built
        from — and is 0.0 for touching or overlapping cells.
        """
        if other.side_length != self.side_length:
            raise ValueError("cells must share a side length")
        if other.dimensions != self.dimensions:
            raise ValueError("cells must share dimensionality")
        delta = tuple(
            b - a for a, b in zip(self.location, other.location)
        )
        return math.sqrt(min_cell_gap_sq(delta, self.side_length))

    def may_connect(
        self, other: "SkeletalGridCell", theta_range: float
    ) -> bool:
        """Whether the two cells *could* host directly connected core
        objects: some point pair, one per cell, within θr (boundary
        inclusive). Necessary for any connection of Definition 4.4 —
        cells failing this can never appear in each other's connection
        vectors, which is exactly the sphere-pruning predicate of the
        grid's offset tables. Compared in squared space (no sqrt round
        trip) so boundary pairs agree with that predicate."""
        if other.side_length != self.side_length:
            raise ValueError("cells must share a side length")
        if other.dimensions != self.dimensions:
            raise ValueError("cells must share dimensionality")
        delta = tuple(
            b - a for a, b in zip(self.location, other.location)
        )
        gap_sq = min_cell_gap_sq(delta, self.side_length)
        return gap_sq <= theta_range * theta_range

    def __repr__(self) -> str:
        return (
            f"SkeletalGridCell(loc={self.location}, status={self.status.value}, "
            f"pop={self.population}, conn={len(self.connections)})"
        )
