"""Cluster feature vectors for the non-locational feature index.

Section 7.1 organizes archived clusters along four non-locational
features captured by SGS: volume (number of skeletal grid cells), status
count (number of core cells), average density, and average connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.sgs import SGS

FEATURE_NAMES: Tuple[str, ...] = (
    "volume",
    "core_count",
    "avg_density",
    "avg_connectivity",
)


@dataclass(frozen=True)
class ClusterFeatures:
    """The four non-locational features of one summarized cluster."""

    volume: float
    core_count: float
    avg_density: float
    avg_connectivity: float

    @classmethod
    def from_sgs(cls, sgs: SGS) -> "ClusterFeatures":
        return cls(
            volume=float(sgs.volume),
            core_count=float(sgs.core_count),
            avg_density=sgs.average_density(),
            avg_connectivity=sgs.average_connectivity(),
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (
            self.volume,
            self.core_count,
            self.avg_density,
            self.avg_connectivity,
        )

    def __getitem__(self, name: str) -> float:
        if name not in FEATURE_NAMES:
            raise KeyError(name)
        return getattr(self, name)
