"""Multi-resolution SGS compression (Section 6.1).

The Basic SGS emitted by the Pattern Extractor is at Level 0 (finest
cells, diagonal = θr). A Level-n SGS combines every θ-sized hypercube of
Level n-1 cells into one coarser skeletal grid cell, in a single scan:

* side length multiplies by θ;
* a coarse cell is core when any covered finer cell is core;
* population is the sum of covered populations;
* a coarse connection exists between two coarse cells when any covered
  boundary cells of the finer level are connected across them.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.cells import CellStatus, Coord, SkeletalGridCell
from repro.core.sgs import SGS


def parent_coord(coord: Coord, factor: int) -> Coord:
    """The coarser-level cell containing ``coord`` when every ``factor``
    hypercube of finer cells folds into one coarser cell.

    This is the nesting relation of the multi-resolution cell hierarchy,
    shared by SGS coarsening and the multiplexing substrate
    (:mod:`repro.multiplex.provider` uses it to account for how each
    query rung's cells nest inside the shared top-rung gather cells).
    """
    # Python's floor division handles negative grid coordinates correctly.
    return tuple(c // factor for c in coord)


# Backward-compatible internal alias.
_parent_coord = parent_coord


def coarsen_sgs(sgs: SGS, factor: int = 3) -> SGS:
    """Build the next-coarser resolution level of an SGS.

    ``factor`` is the compression rate θ: each coarse cell covers a
    θ-sized hypercube of finer cells. Runs in one scan of the finer cells.
    """
    if factor < 2:
        raise ValueError("compression factor must be at least 2")

    populations: Dict[Coord, int] = {}
    statuses: Dict[Coord, CellStatus] = {}
    connections: Dict[Coord, Set[Coord]] = {}

    for cell in sgs.cells.values():
        parent = _parent_coord(cell.location, factor)
        populations[parent] = populations.get(parent, 0) + cell.population
        if cell.is_core:
            statuses[parent] = CellStatus.CORE
        else:
            statuses.setdefault(parent, CellStatus.EDGE)

    # Cross-boundary fine connections induce coarse connections. Fine
    # connection vectors live on core cells only (Definition 4.4), and
    # cover both core-core connections and edge attachments, so scanning
    # them reproduces both relations at the coarse level.
    for cell in sgs.cells.values():
        if not cell.connections:
            continue
        parent = _parent_coord(cell.location, factor)
        for other in cell.connections:
            other_parent = _parent_coord(other, factor)
            if other_parent == parent:
                continue
            if other not in sgs.cells:
                continue
            connections.setdefault(parent, set()).add(other_parent)
            connections.setdefault(other_parent, set()).add(parent)

    side = sgs.side_length * factor
    cells: List[SkeletalGridCell] = []
    for coord, population in populations.items():
        status = statuses[coord]
        conn: Set[Coord] = set()
        if status is CellStatus.CORE:
            conn = connections.get(coord, set())
        cells.append(
            SkeletalGridCell(coord, side, population, status, frozenset(conn))
        )
    return SGS(
        cells,
        side,
        level=sgs.level + 1,
        cluster_id=sgs.cluster_id,
        window_index=sgs.window_index,
    )


def resolution_ladder(sgs: SGS, factor: int = 3, levels: int = 2) -> List[SGS]:
    """Return ``[level0, level1, ..., level_n]`` (n = ``levels``).

    Level 0 is the input (Basic SGS); each further level is built by
    :func:`coarsen_sgs`. The ladder is what the budget-aware Pattern
    Archiver chooses from.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    ladder = [sgs]
    for _ in range(levels):
        ladder.append(coarsen_sgs(ladder[-1], factor))
    return ladder


def cells_needed_at_level(sgs: SGS, factor: int, level: int) -> int:
    """Predict the number of cells of ``sgs`` at a coarser ``level``
    without building it — the space-consumption estimate of Section 6.1's
    budget-aware resolution selection."""
    if level < sgs.level:
        raise ValueError("cannot predict a finer level than the input")
    scale = factor ** (level - sgs.level)
    parents = {
        tuple(c // scale for c in coord) for coord in sgs.cells
    }
    return len(parents)
