"""The paper's primary contribution: SGS, lifespan analysis, and C-SGS."""

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import CSGS, WindowOutput
from repro.core.features import ClusterFeatures
from repro.core.lifespan import NeighborhoodTracker, ObjectState
from repro.core.multires import coarsen_sgs, resolution_ladder
from repro.core.sgs import SGS

__all__ = [
    "CSGS",
    "CellStatus",
    "ClusterFeatures",
    "NeighborhoodTracker",
    "ObjectState",
    "SGS",
    "SkeletalGridCell",
    "WindowOutput",
    "coarsen_sgs",
    "resolution_ladder",
]
