"""Evolution-driven pattern archival (Section 6.2's anticipated policy).

Archiving every window's clusters stores near-duplicates: a stable
cluster barely changes between consecutive slides. This archiver stores
a cluster only when its *track* experiences something worth keeping:

* a structural event — EMERGED, MERGED, or SPLIT; or
* drift — the cell-level distance between the cluster and its last
  archived snapshot exceeds ``drift_threshold``; or
* staleness — more than ``max_gap`` windows since the track's last
  snapshot (so long-lived stable clusters keep a sparse trail).
"""

from __future__ import annotations

from typing import Dict, List

from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.csgs import WindowOutput
from repro.core.sgs import SGS
from repro.matching.alignment import anytime_alignment_search
from repro.matching.metric import DistanceMetricSpec
from repro.tracking.tracker import ClusterTracker, TrackEvent


class EvolutionDrivenArchiver:
    """Archive clusters only at structurally interesting moments."""

    def __init__(
        self,
        base: PatternBase,
        drift_threshold: float = 0.25,
        max_gap: int = 10,
        overlap_threshold: float = 0.1,
        level: int = 0,
    ):
        if not 0 <= drift_threshold <= 1:
            raise ValueError("drift_threshold must be in [0, 1]")
        if max_gap < 1:
            raise ValueError("max_gap must be at least 1")
        self.base = base
        self.drift_threshold = drift_threshold
        self.max_gap = max_gap
        self.tracker = ClusterTracker(overlap_threshold)
        self._inner = PatternArchiver(base, level=level)
        self._spec = DistanceMetricSpec()
        # track_id -> (window, SGS) of the last archived snapshot
        self._snapshots: Dict[int, tuple] = {}
        self.windows_seen = 0
        self.clusters_seen = 0

    def _drifted(self, track_id: int, sgs: SGS, window: int) -> bool:
        snapshot = self._snapshots.get(track_id)
        if snapshot is None:
            return True
        last_window, last_sgs = snapshot
        if window - last_window >= self.max_gap:
            return True
        # Drift means *structural* change: compare under the best small
        # alignment so a cluster that merely moved is not re-archived.
        distance = anytime_alignment_search(
            sgs, last_sgs, self._spec, max_expansions=4
        ).distance
        return distance > self.drift_threshold

    def archive_output(self, output: WindowOutput) -> List[ArchivedPattern]:
        """Track one window's clusters; archive the noteworthy ones."""
        self.windows_seen += 1
        self.clusters_seen += len(output.clusters)
        size_by_cluster = {
            id(sgs): cluster.size
            for cluster, sgs in zip(output.clusters, output.summaries)
        }
        archived: List[ArchivedPattern] = []
        for record in self.tracker.observe(output):
            if record.sgs is None:  # DISAPPEARED marks carry no summary
                continue
            structural = record.event in (
                TrackEvent.EMERGED,
                TrackEvent.MERGED,
                TrackEvent.SPLIT,
            )
            if not structural and not self._drifted(
                record.track_id, record.sgs, record.window_index
            ):
                continue
            full_size = size_by_cluster.get(
                id(record.sgs), record.sgs.population
            )
            pattern = self._inner.archive_sgs(record.sgs, full_size)
            if pattern is not None:
                archived.append(pattern)
                self._snapshots[record.track_id] = (
                    record.window_index,
                    record.sgs,
                )
        return archived

    def savings(self) -> float:
        """Fraction of observed clusters *not* archived."""
        if self.clusters_seen == 0:
            return 0.0
        return 1.0 - len(self.base) / self.clusters_seen
