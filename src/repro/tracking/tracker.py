"""Tracking density-based clusters across window slides.

Clusters in consecutive windows are linked by the overlap of their core
skeletal grid cells (the sliding window moves gradually, so a surviving
cluster keeps most of its core cells from one slide to the next). The
tracker classifies every cluster of the new window into the structural
events the stream-clustering literature distinguishes:

* ``EMERGED`` — no sufficiently overlapping predecessor;
* ``SURVIVED`` — exactly one predecessor, which maps only here (the
  track id is inherited);
* ``MERGED`` — more than one predecessor (a fresh track id; parents are
  recorded);
* ``SPLIT`` — a predecessor maps to several new clusters; the child with
  the largest overlap inherits the track id, the others get fresh ids
  with the parent recorded;
* ``DISAPPEARED`` — a predecessor with no successor (reported once, in
  the window where it vanished).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.csgs import WindowOutput
from repro.core.sgs import SGS

Coord = Tuple[int, ...]


class TrackEvent(enum.Enum):
    EMERGED = "emerged"
    SURVIVED = "survived"
    MERGED = "merged"
    SPLIT = "split"
    DISAPPEARED = "disappeared"


@dataclass
class TrackedCluster:
    """One cluster observation annotated with its track and event."""

    track_id: int
    window_index: int
    event: TrackEvent
    sgs: Optional[SGS]
    parent_tracks: List[int] = field(default_factory=list)


def _core_cells(sgs: SGS) -> Set[Coord]:
    return {cell.location for cell in sgs.cells.values() if cell.is_core}


def _overlap(a: Set[Coord], b: Set[Coord]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


class ClusterTracker:
    """Stateful window-to-window cluster correspondence."""

    def __init__(self, overlap_threshold: float = 0.1):
        if not 0 < overlap_threshold <= 1:
            raise ValueError("overlap_threshold must be in (0, 1]")
        self.overlap_threshold = overlap_threshold
        self._next_track = 0
        # track_id -> core-cell set of its latest observation
        self._previous: Dict[int, Set[Coord]] = {}
        self.history: Dict[int, List[TrackedCluster]] = {}

    def _new_track(self) -> int:
        track = self._next_track
        self._next_track += 1
        return track

    def observe(self, output: WindowOutput) -> List[TrackedCluster]:
        """Ingest one window's summaries; returns the annotated clusters
        (plus DISAPPEARED records for vanished tracks)."""
        window = output.window_index
        current = [(sgs, _core_cells(sgs)) for sgs in output.summaries]

        # Overlap matrix between previous tracks and current clusters.
        matches_per_track: Dict[int, List[Tuple[float, int]]] = {}
        parents_per_cluster: Dict[int, List[Tuple[float, int]]] = {
            i: [] for i in range(len(current))
        }
        for track_id, old_cells in self._previous.items():
            for i, (_, new_cells) in enumerate(current):
                overlap = _overlap(old_cells, new_cells)
                if overlap >= self.overlap_threshold:
                    matches_per_track.setdefault(track_id, []).append(
                        (overlap, i)
                    )
                    parents_per_cluster[i].append((overlap, track_id))

        # Which child inherits each splitting track: the best-overlap one.
        heir_of_track: Dict[int, int] = {}
        for track_id, matches in matches_per_track.items():
            heir_of_track[track_id] = max(matches)[1]

        results: List[TrackedCluster] = []
        new_previous: Dict[int, Set[Coord]] = {}
        for i, (sgs, new_cells) in enumerate(current):
            parents = sorted(parents_per_cluster[i], reverse=True)
            parent_ids = [track_id for _, track_id in parents]
            if not parents:
                track_id = self._new_track()
                event = TrackEvent.EMERGED
            elif len(parents) == 1:
                parent = parent_ids[0]
                if heir_of_track[parent] == i:
                    track_id = parent
                    event = (
                        TrackEvent.SURVIVED
                        if len(matches_per_track[parent]) == 1
                        else TrackEvent.SPLIT
                    )
                else:
                    track_id = self._new_track()
                    event = TrackEvent.SPLIT
            else:
                best = parent_ids[0]
                if (
                    heir_of_track[best] == i
                    and len(matches_per_track[best]) == 1
                ):
                    track_id = best
                else:
                    track_id = self._new_track()
                event = TrackEvent.MERGED
            record = TrackedCluster(
                track_id, window, event, sgs, parent_ids
            )
            results.append(record)
            self.history.setdefault(track_id, []).append(record)
            new_previous[track_id] = new_cells

        # Tracks without any successor disappeared this window.
        for track_id in self._previous:
            if track_id not in matches_per_track:
                record = TrackedCluster(
                    track_id, window, TrackEvent.DISAPPEARED, None
                )
                results.append(record)
                self.history.setdefault(track_id, []).append(record)
        self._previous = new_previous
        return results

    @property
    def active_tracks(self) -> List[int]:
        return sorted(self._previous)

    def track_length(self, track_id: int) -> int:
        """Number of live observations (excluding the DISAPPEARED mark)."""
        return sum(
            1
            for record in self.history.get(track_id, [])
            if record.event is not TrackEvent.DISAPPEARED
        )
