"""Cluster evolution tracking across windows (Section 6.2's future work).

The paper's Pattern Archiver anticipates "evolution driven" pattern
selection as future work; this subpackage implements it: clusters are
tracked across consecutive windows by core-cell overlap, structural
events (emerge / survive / merge / split / disappear) are detected, and
an evolution-driven archiver stores a cluster only when its track is new
or has drifted materially since its last archived snapshot.
"""

from repro.tracking.archiver import EvolutionDrivenArchiver
from repro.tracking.tracker import ClusterTracker, TrackEvent, TrackedCluster

__all__ = [
    "ClusterTracker",
    "EvolutionDrivenArchiver",
    "TrackEvent",
    "TrackedCluster",
]
