"""The always-on match service: one archive, every deployment mode.

:class:`MatchService` is the application object behind ``repro serve``
(and behind any embedding that wants a long-lived matching front end):
it owns a partitioned archive plus one
:class:`~repro.retrieval.shards.ShardedMatchEngine` whose executor is
picked by ``mode`` — so ``{serial, thread, process}`` are
interchangeable at the service boundary with identical answers — and
exposes the five operations of the HTTP surface as plain-dict
request/response methods:

* ``ingest``    — archive a new window pattern (and propagate it to the
  executor's shard copy, e.g. a process worker's hydrated replica);
* ``match``     — one Cluster Matching Query;
* ``match_many``— a batch, one shared per-shard gather;
* ``stats``     — archive/serving configuration plus request counters;
* ``healthz``   — liveness.

The service also fronts the query-multiplexing subsystem
(:mod:`repro.multiplex`): ``register_query`` / ``unregister_query``
admit and retire Continuous Clustering Queries at runtime, and
``stream`` feeds stream objects through the shared slide scheduler —
one batched range-query pass per slide regardless of how many queries
are registered. Queries registered with ``"archive": true`` feed their
window summaries into the served archive, immediately matchable.

Requests and responses are JSON-able dicts built on the wire forms of
:mod:`repro.serving.wire`; the HTTP layer (:mod:`repro.serving.httpd`)
only decodes/encodes JSON around these methods. A single lock
serializes operations — the engines and the archive are not safe under
concurrent mutation, and determinism is the product.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.archive.pattern_base import PatternBase
from repro.archive.persistence import load_pattern_base
from repro.config import ContinuousClusteringQuery
from repro.core.serialize import sgs_from_dict
from repro.matching.metric import DistanceMetricSpec
from repro.multiplex.scheduler import SlideScheduler
from repro.streams.objects import StreamObject
from repro.retrieval.engine import EngineStats, MatchResult
from repro.retrieval.queries import MatchQuery
from repro.retrieval.shards import ShardedMatchEngine, ShardedPatternBase
from repro.serving.wire import (
    metric_from_wire,
    metric_to_wire,
    stats_to_wire,
)

__all__ = ["MatchService", "ServiceError"]


class ServiceError(ValueError):
    """A malformed or unanswerable request (maps to HTTP 400)."""


def _result_to_dict(result: MatchResult) -> Dict[str, object]:
    return {
        "pattern_id": result.pattern.pattern_id,
        "window_index": result.pattern.window_index,
        "distance": result.distance,
        "alignment": list(result.alignment),
    }


class MatchService:
    """A long-lived matching front end over one (sharded) archive."""

    def __init__(
        self,
        base: ShardedPatternBase,
        spec: Optional[DistanceMetricSpec] = None,
        mode: Optional[str] = None,
        coarse_level: int = 0,
        max_alignment_expansions: int = 32,
        replicas: int = 1,
    ):
        self.base = base
        self.engine = ShardedMatchEngine(
            base,
            spec=spec,
            coarse_level=coarse_level,
            max_alignment_expansions=max_alignment_expansions,
            mode=mode,
            replicas=replicas,
        )
        self._lock = threading.Lock()
        self._counters = {
            "ingest": 0,
            "match": 0,
            "match_many": 0,
            "queries": 0,
            "register_query": 0,
            "unregister_query": 0,
            "stream": 0,
        }
        # The multiplexing front: created lazily by the first
        # register_query (its payload fixes the dimensionality).
        self._scheduler: Optional[SlideScheduler] = None
        self._stream_oid = 0

    @classmethod
    def from_archive(
        cls,
        path: Optional[str] = None,
        shards: int = 1,
        shard_key: str = "window",
        spec: Optional[DistanceMetricSpec] = None,
        mode: Optional[str] = None,
        coarse_level: int = 0,
        max_alignment_expansions: int = 32,
        inverted_levels: Optional[Sequence[int]] = None,
        replicas: int = 1,
        store: Optional[str] = None,
    ) -> "MatchService":
        """Hydrate a service from a persisted archive.

        ``path`` names a format-v3 dump file; ``store`` names a
        :mod:`repro.archive.store` backend (``sqlite:PATH``). Either
        alone works: a populated store opens directly — cold start
        reads metadata rows, skipping the full dump load — and a dump
        file loads into whatever store is asked for (the one-time
        import path). Giving both with a *populated* store is an
        error: the service cannot guess which archive should win.

        The archive is partitioned into ``shards`` by ``shard_key``
        (1 shard is a valid deployment — the seam still applies, e.g.
        ``mode="process"`` serves from one worker). ``replicas``
        spawns that many process workers per shard for failover
        (implying ``mode="process"`` when no mode is given). A
        format-v3 dump's inverted signatures transfer to the shards
        without recomputation.
        """
        if path is None and store is None:
            raise ServiceError(
                "from_archive needs an archive file or a store"
            )
        if path is None:
            base = PatternBase(store=store)
        else:
            if store is not None:
                probe = PatternBase(store=store)
                if len(probe):
                    probe.close()
                    raise ServiceError(
                        "store already holds patterns; serve it without "
                        "an archive file (or import into a fresh store)"
                    )
                base = load_pattern_base(path, store=probe.store)
            else:
                base = load_pattern_base(path)
        if inverted_levels:
            loaded = base.inverted_index()
            if loaded is None or not all(
                loaded.covers(level) for level in inverted_levels
            ):
                base.enable_inverted(tuple(inverted_levels))
        sharded = ShardedPatternBase.from_base(base, shards, shard_key)
        return cls(
            sharded,
            spec=spec,
            mode=mode,
            coarse_level=coarse_level,
            max_alignment_expansions=max_alignment_expansions,
            replicas=replicas,
        )

    # ------------------------------------------------------------------
    # Service surface (plain-dict in, plain-dict out)
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        return self.engine.mode

    def _parse_query(self, data: Dict[str, object]) -> MatchQuery:
        if not isinstance(data, dict):
            raise ServiceError("query must be a JSON object")
        for field in ("sgs", "threshold"):
            if field not in data:
                raise ServiceError(f"query is missing {field!r}")
        window_range = data.get("window_range")
        feature_ranges = data.get("feature_ranges")
        try:
            metric = (
                metric_from_wire(data["metric"])
                if data.get("metric") is not None
                else self.engine.spec
            )
            return MatchQuery(
                sgs=sgs_from_dict(data["sgs"]),
                threshold=float(data["threshold"]),
                top_k=data.get("top_k"),
                metric=metric,
                window_range=(
                    (int(window_range[0]), int(window_range[1]))
                    if window_range is not None
                    else None
                ),
                feature_ranges=(
                    {
                        str(name): (float(span[0]), float(span[1]))
                        for name, span in feature_ranges.items()
                    }
                    if feature_ranges
                    else None
                ),
                coarse_level=int(data.get("coarse_level", 0)),
            )
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"bad query: {error}") from None

    def _answer(self, results: List[MatchResult], stats: EngineStats):
        return {
            "results": [_result_to_dict(result) for result in results],
            "stats": stats_to_wire(stats),
        }

    def ingest(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Archive one pattern: ``{"sgs": <sgs dict>, "full_size": n}``."""
        if not isinstance(payload, dict) or "sgs" not in payload:
            raise ServiceError('ingest needs {"sgs": ..., "full_size": ...}')
        try:
            sgs = sgs_from_dict(payload["sgs"])
            full_size = int(payload.get("full_size", sgs.population))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"bad ingest payload: {error}") from None
        with self._lock:
            pattern = self.engine.ingest(sgs, full_size)
            self._counters["ingest"] += 1
            return {
                "pattern_id": pattern.pattern_id,
                "shard": self.base.shard_index_of(pattern.pattern_id),
                "archive_size": len(self.base),
            }

    def match(self, payload: Dict[str, object]) -> Dict[str, object]:
        query = self._parse_query(payload)
        with self._lock:
            results, stats = self.engine.match(query)
            self._counters["match"] += 1
            self._counters["queries"] += 1
            return self._answer(results, stats)

    def match_many(self, payload: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(payload, dict) or not isinstance(
            payload.get("queries"), list
        ):
            raise ServiceError('match_many needs {"queries": [...]}')
        queries = [self._parse_query(data) for data in payload["queries"]]
        with self._lock:
            answers = self.engine.match_many(queries)
            self._counters["match_many"] += 1
            self._counters["queries"] += len(queries)
            return {
                "answers": [
                    self._answer(results, stats)
                    for results, stats in answers
                ]
            }

    # ------------------------------------------------------------------
    # Query multiplexing (register / unregister / stream)
    # ------------------------------------------------------------------

    def _parse_clustering_query(
        self, payload: Dict[str, object], dimensions: int
    ) -> ContinuousClusteringQuery:
        if "query" in payload:
            from repro.query.parser import QueryParseError, parse_query

            try:
                query = parse_query(
                    str(payload["query"]), dimensions=dimensions
                )
            except QueryParseError as error:
                raise ServiceError(str(error)) from None
            if not isinstance(query, ContinuousClusteringQuery):
                raise ServiceError(
                    "only DETECT (continuous clustering) queries can be "
                    "registered for multiplexed execution"
                )
            return query
        for field in ("theta_range", "theta_count", "win", "slide"):
            if field not in payload:
                raise ServiceError(
                    'register needs a "query" DETECT template or '
                    "theta_range/theta_count/win/slide fields"
                )
        try:
            if payload.get("time_based"):
                return ContinuousClusteringQuery.time_based(
                    float(payload["theta_range"]),
                    int(payload["theta_count"]),
                    dimensions,
                    win=float(payload["win"]),
                    slide=float(payload["slide"]),
                    origin=float(payload.get("origin", 0.0)),
                )
            return ContinuousClusteringQuery.count_based(
                float(payload["theta_range"]),
                int(payload["theta_count"]),
                dimensions,
                win=int(payload["win"]),
                slide=int(payload["slide"]),
            )
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad query parameters: {error}") from None

    def _archive_sink(self, handle, output) -> None:
        # Runs under the service lock (stream() holds it): route each
        # window's summaries through the engine so executor-held shard
        # copies hear about them too, immediately matchable.
        for cluster, sgs in zip(output.clusters, output.summaries):
            self.engine.ingest(sgs, cluster.size)

    def register_query(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Admit a Continuous Clustering Query into the multiplexed run.

        ``{"query": "DETECT ..."}`` or explicit
        ``theta_range/theta_count/win/slide`` fields; the first
        registration must declare ``"dimensions"`` (it fixes the run).
        ``"archive": true`` routes the query's window summaries into
        the served archive.
        """
        if not isinstance(payload, dict):
            raise ServiceError("register_query expects a JSON object")
        with self._lock:
            if self._scheduler is None:
                if "dimensions" not in payload:
                    raise ServiceError(
                        'the first registered query must declare '
                        '"dimensions"'
                    )
                try:
                    self._scheduler = SlideScheduler(
                        int(payload["dimensions"]),
                        factor=float(payload.get("factor", 2.0)),
                    )
                except (TypeError, ValueError) as error:
                    raise ServiceError(str(error)) from None
            try:
                dimensions = int(
                    payload.get("dimensions", self._scheduler.dimensions)
                )
            except (TypeError, ValueError) as error:
                raise ServiceError(str(error)) from None
            query = self._parse_clustering_query(payload, dimensions)
            sink = self._archive_sink if payload.get("archive") else None
            try:
                handle = self._scheduler.register(query, sink=sink)
            except ValueError as error:
                raise ServiceError(str(error)) from None
            self._counters["register_query"] += 1
            return {"query": handle.describe()}

    def unregister_query(self, query_id) -> Dict[str, object]:
        """Stop a registered query; it receives no further windows."""
        with self._lock:
            if self._scheduler is None:
                raise ServiceError("no queries registered")
            try:
                handle = self._scheduler.unregister(int(query_id))
            except KeyError:
                raise ServiceError(
                    f"no registered query with id {query_id}"
                ) from None
            except (TypeError, ValueError) as error:
                raise ServiceError(str(error)) from None
            self._counters["unregister_query"] += 1
            return {"query": handle.describe()}

    def stream(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Feed stream objects through the multiplexed scheduler.

        ``{"objects": [[coord, ...], ...]}`` plus optional parallel
        ``"timestamps"`` (time-based windows) and ``"flush": true`` to
        force the final partial slide through. Returns the windows the
        batch closed, with a per-query result block each.
        """
        if not isinstance(payload, dict) or not isinstance(
            payload.get("objects"), list
        ):
            raise ServiceError('stream needs {"objects": [[coord, ...], ...]}')
        timestamps = payload.get("timestamps")
        if timestamps is not None and (
            not isinstance(timestamps, list)
            or len(timestamps) != len(payload["objects"])
        ):
            raise ServiceError("timestamps must parallel objects")
        with self._lock:
            if self._scheduler is None or not len(self._scheduler.registry):
                raise ServiceError("register a query before streaming")
            dimensions = self._scheduler.dimensions
            objects = []
            try:
                for i, coords in enumerate(payload["objects"]):
                    values = tuple(float(v) for v in coords)
                    if len(values) != dimensions:
                        raise ServiceError(
                            f"object {i} has {len(values)} coordinates; "
                            f"this run is {dimensions}-dimensional"
                        )
                    timestamp = (
                        float(timestamps[i]) if timestamps is not None else None
                    )
                    objects.append(
                        StreamObject(self._stream_oid + i, values, timestamp)
                    )
            except ServiceError:
                raise
            except (TypeError, ValueError) as error:
                raise ServiceError(f"bad stream objects: {error}") from None
            self._stream_oid += len(objects)
            try:
                windows = self._scheduler.feed(objects)
                if payload.get("flush"):
                    windows.extend(self._scheduler.flush())
            except ValueError as error:
                raise ServiceError(str(error)) from None
            self._counters["stream"] += 1
            return {
                "accepted": len(objects),
                "windows": [
                    {
                        "window": index,
                        "queries": {
                            str(qid): {
                                "clusters": len(output.clusters),
                                "cluster_sizes": [
                                    c.size for c in output.clusters
                                ],
                            }
                            for qid, output in sorted(outputs.items())
                        },
                    }
                    for index, outputs in windows
                ],
            }

    def stats(self) -> Dict[str, object]:
        with self._lock:
            executor = self.engine.executor
            return {
                "archive_size": len(self.base),
                "shards": self.base.shard_count,
                "shard_sizes": list(self.base.shard_sizes()),
                "partition_key": self.base.partition_key,
                "mode": self.engine.mode,
                "parallel": self.engine.parallel,
                "metric": metric_to_wire(self.engine.spec),
                "coarse_level": self.engine.coarse_level,
                # Replica health: worker replicas per shard, which are
                # currently alive, and how often reads failed over to
                # a sibling / workers were respawned. In-process modes
                # report one implicit replica and an empty liveness
                # table (there are no worker processes to die).
                "replicas": executor.replica_count,
                "replica_liveness": executor.replica_liveness(),
                "failovers": executor.failovers,
                "restarts": executor.restarts,
                # Where the pattern records live (backend, durability,
                # path, hydration-cache telemetry for a disk store).
                "store": self.base.store_info(),
                "requests": dict(self._counters),
                # Per-query blocks and sharing structure of the
                # multiplexed run, when one is active.
                "multiplex": (
                    self._scheduler.stats()
                    if self._scheduler is not None
                    else None
                ),
            }

    def healthz(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "mode": self.engine.mode,
            "archive_size": len(self.base),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.engine.close()
        self.base.close()

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
