"""Deterministic cross-shard merge of per-shard match answers.

Every deployment mode — in-process serial, thread pool, process pool —
funnels its per-shard ``(results, stats)`` pairs through
:func:`merge_shard_results`: concatenate, sort by
``(distance, pattern_id)`` (the same stable tie-break the single
engine uses), cut to ``top_k`` *after* the merge. Distances are
per-pattern computations independent of placement, so the merged
output is identical to a single unsharded engine's — and identical
across executors, which the executor-parity suite pins.

Stats aggregate provider-style: the merged plan reports
``entry="sharded"`` with the shard count, each shard's own entry
choice, and summed phase counters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.retrieval.engine import EngineStats, MatchResult
from repro.retrieval.queries import MatchQuery

#: Plan-entry label of a merged sharded execution.
ENTRY_SHARDED = "sharded"


def merge_shard_results(
    per_shard: Sequence[Tuple[List[MatchResult], EngineStats]],
    query: MatchQuery,
    parallel: bool,
) -> Tuple[List[MatchResult], EngineStats]:
    """Merge one query's per-shard answers (in shard order) into the
    single-engine-identical result list plus aggregated stats."""
    results: List[MatchResult] = []
    for shard_results, _ in per_shard:
        results.extend(shard_results)
    results.sort(key=lambda r: (r.distance, r.pattern.pattern_id))
    merged = EngineStats(
        archive_size=sum(s.archive_size for _, s in per_shard),
        plan={
            "entry": ENTRY_SHARDED,
            "shards": len(per_shard),
            "entries": [s.entry for _, s in per_shard],
            "archive": sum(s.archive_size for _, s in per_shard),
            "gathered": sum(s.gathered for _, s in per_shard),
            "shared_gather": any(
                s.plan.get("shared_gather") for _, s in per_shard
            ),
            "parallel": parallel,
        },
    )
    for _, stats in per_shard:
        merged.screened += stats.screened
        merged.feature_filtered += stats.feature_filtered
        merged.coarse_evaluated += stats.coarse_evaluated
        merged.coarse_rejected += stats.coarse_rejected
        merged.coarse_fast_accepted += stats.coarse_fast_accepted
        merged.refined += stats.refined
        merged.matches += stats.matches
    screens = {s.coarse_screen for _, s in per_shard if s.coarse_screen}
    if screens:
        merged.coarse_screen = (
            screens.pop() if len(screens) == 1 else "mixed"
        )
    if query.top_k is not None:
        results = results[: query.top_k]
    return results, merged
