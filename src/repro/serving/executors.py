"""The deployment-mode seam: where shard work runs.

A :class:`ShardExecutor` answers ``match`` / ``match_many`` for *every*
shard of a partitioned archive and returns the per-shard
``(results, stats)`` pairs in shard order — the caller (the
:class:`~repro.retrieval.shards.ShardedMatchEngine` facade or the
always-on service) merges them through
:func:`repro.serving.merge.merge_shard_results`. Three implementations
are interchangeable with identical answers:

* :class:`SerialExecutor` — an in-process loop over the shard engines;
  the deterministic-profiling and single-shard baseline.
* :class:`ThreadExecutor` — the shard engines on **one persistent
  thread pool**, created at construction and shut down by ``close()``
  (the facade used to build a ``ThreadPoolExecutor`` per call; the
  pool is now owned for the executor's lifetime).
* :class:`ProcessExecutor` — ``replicas`` OS processes per shard
  (one by default). Each worker **hydrates its shard once from a
  persisted format-v3 dump** (written at construction through
  :func:`repro.archive.persistence.dump_pattern_base`, inverted
  cell-signature section included, so workers start with warm posting
  lists), then answers tasks over a request/response queue pair.
  Reads route round-robin across a shard's live replicas; a replica
  that dies with a read in flight triggers **failover** — the task is
  resubmitted to a live sibling immediately while the dead worker
  respawns in the background — and only a shard with *no* live
  replica left falls back to the respawn-and-wait path. Ingests fan
  out to every replica of the owning shard and are journaled (per
  shard, **after** every replica acknowledged) for respawn replay.
  Crash recovery never changes answers, because replicas hydrate from
  the same dump and shard answers are deterministic.

Results cross the process boundary as
``[pattern_id, distance, alignment]`` triples
(:mod:`repro.serving.wire`) and re-attach to the caller's own archive
copy through a resolver, so the merged output is bit-identical to the
serial path's.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import tempfile
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.archive.persistence import dump_pattern_base, load_pattern_base
from repro.core.serialize import sgs_from_dict, sgs_to_dict
from repro.serving.wire import (
    metric_from_wire,
    query_from_wire,
    query_to_wire,
    results_from_wire,
    results_to_wire,
    stats_from_wire,
    stats_to_wire,
)

#: The supported deployment modes, in escalation order.
MODES = ("serial", "thread", "process")

#: How many consecutive crash-restarts one task may trigger before the
#: executor gives up and raises.
DEFAULT_RESTART_LIMIT = 3

#: Seconds between liveness checks while awaiting a worker reply.
_POLL_SECONDS = 0.05


def validate_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(
            f"unknown serving mode {mode!r}; expected one of {MODES}"
        )
    return mode


class ShardExecutor:
    """Protocol base: per-shard execution behind one seam.

    ``match``/``match_many`` return per-shard answers in shard order;
    ``ingest`` propagates a newly archived pattern to whatever copy of
    its shard the executor serves from (a no-op for in-process modes,
    which share the caller's live archive); ``close`` releases owned
    resources and is idempotent. Executors are context managers.

    The replica/failover surface is uniform: in-process modes serve
    from the caller's one live archive, so they report one replica,
    no liveness table, and zero failover counters.
    """

    mode: str = ""
    #: Worker replicas per shard (only ``process`` mode runs real ones).
    replica_count: int = 1
    #: Workers respawned after a crash.
    restarts: int = 0
    #: Tasks retried on a live sibling replica after a worker death.
    failovers: int = 0

    def __init__(self) -> None:
        self._closed = False

    @property
    def parallel(self) -> bool:
        return False

    def replica_liveness(self) -> List[List[bool]]:
        """Per-shard replica liveness (empty for in-process modes,
        which have no worker processes to die)."""
        return []

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def match(self, query) -> List[Tuple[list, object]]:
        raise NotImplementedError

    def match_many(self, queries) -> List[List[Tuple[list, object]]]:
        raise NotImplementedError

    def ingest(self, shard_index: int, pattern: ArchivedPattern) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run every shard's work in the calling thread, in shard order."""

    mode = "serial"

    def __init__(self, engines: Sequence):
        super().__init__()
        self.engines = list(engines)

    def match(self, query):
        self._check_open()
        return [engine.match(query) for engine in self.engines]

    def match_many(self, queries):
        self._check_open()
        return [engine.match_many(queries) for engine in self.engines]


class ThreadExecutor(ShardExecutor):
    """Shard fan-out on one persistent, lifecycle-managed thread pool.

    The pool is constructed once and reused for every call —
    ``close()`` (or the context manager) shuts it down. Threads are
    spawned lazily by the pool, so an executor that never runs a query
    costs nothing beyond the object itself.
    """

    mode = "thread"

    def __init__(self, engines: Sequence, max_workers: Optional[int] = None):
        super().__init__()
        self.engines = list(engines)
        if max_workers is None:
            max_workers = len(self.engines)
        self.max_workers = max(1, min(int(max_workers), len(self.engines)))
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-shard",
        )

    @property
    def parallel(self) -> bool:
        return len(self.engines) > 1 and self.max_workers > 1

    def _fan_out(self, work: Callable):
        self._check_open()
        futures = [
            self._pool.submit(work, engine) for engine in self.engines
        ]
        # Collect every future before propagating the first failure —
        # abandoning in-flight siblings would leave them mutating
        # shared engine state (ladder caches, stats) with the caller
        # already unwinding.
        results = []
        first_error: Optional[BaseException] = None
        for future in futures:
            if first_error is not None:
                future.cancel()
            try:
                results.append(future.result())
            except CancelledError:
                pass
            except BaseException as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def match(self, query):
        return self._fan_out(lambda engine: engine.match(query))

    def match_many(self, queries):
        return self._fan_out(lambda engine: engine.match_many(queries))

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
        super().close()


# ----------------------------------------------------------------------
# Process workers
# ----------------------------------------------------------------------


def _worker_main(dump_path, config, request_queue, response_queue):
    """One shard worker: hydrate from the format-v3 dump, then serve.

    Runs in a child process. Tasks arrive as
    ``(task_id, command, payload)`` tuples; ``None`` shuts the worker
    down. Replies are ``(task_id, "ok" | "error", payload)``.
    """
    from repro.retrieval.engine import MatchEngine

    base = load_pattern_base(dump_path)
    engine = MatchEngine(
        base,
        spec=metric_from_wire(config["metric"]),
        max_alignment_expansions=config["max_alignment_expansions"],
        coarse_level=config["coarse_level"],
        coarse_margin=config["coarse_margin"],
        ladder_factor=config["ladder_factor"],
        min_coarse_cells=config["min_coarse_cells"],
        use_inverted=config["use_inverted"],
    )
    while True:
        task = request_queue.get()
        if task is None:
            return
        task_id, command, payload = task
        try:
            if command == "match":
                results, stats = engine.match(query_from_wire(payload))
                reply = (results_to_wire(results), stats_to_wire(stats))
            elif command == "match_many":
                queries = [query_from_wire(data) for data in payload]
                reply = [
                    (results_to_wire(results), stats_to_wire(stats))
                    for results, stats in engine.match_many(queries)
                ]
            elif command == "ingest":
                pattern_id, sgs_data, full_size = payload
                base.restore(
                    ArchivedPattern(
                        pattern_id, sgs_from_dict(sgs_data), full_size
                    )
                )
                reply = len(base)
            elif command == "ping":
                reply = os.getpid()
            elif command == "crash":
                # Fault-injection hook (see ProcessExecutor.
                # inject_crash): die mid-task, exactly like a SIGKILL
                # from outside, after an optional delay that lets the
                # parent submit real work behind this task first.
                time.sleep(float(payload or 0.0))
                os.kill(os.getpid(), signal.SIGKILL)
            else:
                raise ValueError(f"unknown worker command {command!r}")
            response_queue.put((task_id, "ok", reply))
        except Exception as error:  # surface, don't die: the parent
            # treats a dead worker as a crash and restarts it; a
            # malformed task should fail loudly instead.
            response_queue.put(
                (task_id, "error", f"{type(error).__name__}: {error}")
            )


def _child_import_path() -> None:
    """Make ``repro`` importable in spawned children.

    ``spawn`` children rebuild ``sys.path`` from the environment, not
    from the parent interpreter — a source checkout run with
    ``PYTHONPATH=src`` (or pytest's ``pythonpath`` setting) would leave
    them unable to import this module. Prepend the package root to
    ``PYTHONPATH`` so every future spawn inherits it.
    """
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing
            else package_root
        )


class _Replica:
    """One worker process (plus its queue pair) serving one shard."""

    __slots__ = ("process", "requests", "responses")

    def __init__(self, process, requests, responses):
        self.process = process
        self.requests = requests
        self.responses = responses

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


#: Sentinel returned by the reply poll when the polled replica died
#: with the task in flight.
_DEAD = object()


class ProcessExecutor(ShardExecutor):
    """``replicas`` multiprocessing workers per shard, with failover.

    Construction persists each shard to a format-v3 dump in an owned
    temporary directory and spawns ``replicas`` workers per shard;
    each worker hydrates from its shard's dump exactly once and then
    answers match / match_many / ingest tasks over its own queue pair.

    **Reads** (match / match_many) route round-robin across a shard's
    live replicas. A replica found dead with a read in flight fails
    over: the task is resubmitted to a live sibling immediately and
    the dead worker respawns in the background (its journal replay is
    queued ahead of any future task, so it comes back consistent
    without anyone waiting on it). Only when a shard has no live
    replica left does the read wait for a synchronous respawn — the
    single-replica legacy path. Per-task retries are bounded by
    ``restart_limit``.

    **Ingests** fan out to every replica of the owning shard and are
    journaled per shard — *after* every replica acknowledged, so a
    worker death mid-ingest (respawn replays the journal, then the
    entry is resubmitted) applies the entry exactly once. Journaling
    before submission made replay *and* resubmission both carry the
    entry, and recovery died on the worker's duplicate-id error.

    ``resolve`` maps result pattern ids back to the caller's own
    archive records (typically ``ShardedPatternBase.get``), so the
    returned :class:`MatchResult` objects are indistinguishable from
    the in-process executors'.
    """

    mode = "process"

    def __init__(
        self,
        shards: Sequence[PatternBase],
        engine_config: Dict[str, object],
        resolve: Callable[[int], Optional[ArchivedPattern]],
        restart_limit: int = DEFAULT_RESTART_LIMIT,
        mp_start: str = "spawn",
        replicas: int = 1,
    ):
        super().__init__()
        import multiprocessing

        if not shards:
            raise ValueError("ProcessExecutor needs at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self._config = dict(engine_config)
        self._resolve = resolve
        self.restart_limit = int(restart_limit)
        self.replica_count = int(replicas)
        self._context = multiprocessing.get_context(mp_start)
        if mp_start != "fork":
            _child_import_path()
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        self._dump_paths = []
        for index, shard in enumerate(shards):
            path = os.path.join(self._tempdir.name, f"shard-{index}.sgsa")
            dump_pattern_base(shard, path)
            self._dump_paths.append(path)
        self._groups: List[List[Optional[_Replica]]] = [
            [None] * self.replica_count for _ in shards
        ]
        #: Round-robin read cursor per shard.
        self._cursor = [0] * len(shards)
        #: Ingests accepted after the hydration dump (journaled only
        #: once every replica acknowledged), replayed into respawned
        #: workers before any later task.
        self._ingest_log: List[List[tuple]] = [[] for _ in shards]
        self._task_counter = 0
        self.restarts = 0
        self.failovers = 0
        for shard in range(len(shards)):
            for replica in range(self.replica_count):
                self._spawn(shard, replica)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._groups)

    @property
    def parallel(self) -> bool:
        return self.shard_count > 1

    def worker_pids(self) -> List[int]:
        """Every worker pid, shard-major (one per shard at the default
        ``replicas=1``)."""
        return [rep.process.pid for group in self._groups for rep in group]

    def replica_pids(self) -> List[List[int]]:
        return [
            [rep.process.pid for rep in group] for group in self._groups
        ]

    def replica_liveness(self) -> List[List[bool]]:
        return [
            [rep is not None and rep.alive for rep in group]
            for group in self._groups
        ]

    def inject_crash(
        self, shard: int, replica: int, delay: float = 0.0
    ) -> None:
        """Fault-injection hook (tests / chaos drills): make one
        replica worker SIGKILL itself after ``delay`` seconds and pin
        the shard's read cursor to it, so the next read deterministically
        lands on a worker that dies mid-task."""
        self._check_open()
        self._submit_to(shard, replica, "crash", float(delay))
        self._cursor[shard] = replica

    def _spawn(self, shard: int, replica: int) -> None:
        request_queue = self._context.Queue()
        response_queue = self._context.Queue()
        worker = self._context.Process(
            target=_worker_main,
            args=(
                self._dump_paths[shard],
                self._config,
                request_queue,
                response_queue,
            ),
            name=f"repro-shard-{shard}r{replica}",
            daemon=True,
        )
        worker.start()
        self._groups[shard][replica] = _Replica(
            worker, request_queue, response_queue
        )

    def _discard(self, shard: int, replica: int) -> None:
        rep = self._groups[shard][replica]
        if rep is None:
            return
        for channel in (rep.requests, rep.responses):
            channel.close()
            # Never block interpreter exit on a dead worker's
            # unflushed feeder thread.
            channel.cancel_join_thread()
        self._groups[shard][replica] = None

    def _respawn(self, shard: int, replica: int, wait: bool) -> None:
        """Respawn one replica from its shard dump and queue the
        ingest-journal replay. With ``wait=False`` the replay runs in
        the background — the fresh worker applies it FIFO before any
        later task, so nothing needs to block on it; ``wait=True``
        (the no-live-sibling path) blocks until the replay is applied.
        """
        rep = self._groups[shard][replica]
        if rep is not None:
            rep.process.join(timeout=0.5)
            self._discard(shard, replica)
        self._spawn(shard, replica)
        self.restarts += 1
        replay_ids = [
            self._submit_to(shard, replica, "ingest", entry)
            for entry in self._ingest_log[shard]
        ]
        if wait:
            for task_id in replay_ids:
                if self._poll(shard, replica, task_id) is _DEAD:
                    raise RuntimeError(
                        f"shard {shard} replica {replica} died during "
                        f"journal replay"
                    )

    # ------------------------------------------------------------------
    # The task protocol
    # ------------------------------------------------------------------

    def _submit_to(self, shard: int, replica: int, command: str, payload) -> int:
        self._task_counter += 1
        self._groups[shard][replica].requests.put(
            (self._task_counter, command, payload)
        )
        return self._task_counter

    def _poll(self, shard: int, replica: int, task_id: int):
        """Wait for one task's reply on one replica; returns the reply
        payload, or :data:`_DEAD` when the replica died first."""
        rep = self._groups[shard][replica]
        while True:
            try:
                reply_id, status, reply = rep.responses.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                if rep.alive:
                    continue
                return _DEAD
            if reply_id != task_id:
                # The only replies not awaited on this queue are
                # journal-replay acks from a background respawn; an
                # error there means the replica's state diverged.
                if status == "error":
                    raise RuntimeError(
                        f"shard {shard} replica {replica} journal "
                        f"replay failed: {reply}"
                    )
                continue
            if status == "error":
                raise RuntimeError(
                    f"shard worker {shard} failed: {reply}"
                )
            return reply

    def _live_sibling(self, shard: int, not_replica: int) -> Optional[int]:
        group = self._groups[shard]
        count = len(group)
        for step in range(count):
            replica = (self._cursor[shard] + step) % count
            if replica == not_replica:
                continue
            rep = group[replica]
            if rep is not None and rep.alive:
                self._cursor[shard] = (replica + 1) % count
                return replica
        return None

    def _pick(self, shard: int) -> int:
        """Round-robin routing: the next live replica of a shard.
        Replicas found dead at routing time are respawned in the
        background (repair piggybacks on reads); if every replica is
        dead, the read routes to the freshly respawned cursor replica —
        its queued journal replay precedes the task, so answers stay
        correct."""
        group = self._groups[shard]
        count = len(group)
        chosen = None
        for step in range(count):
            replica = (self._cursor[shard] + step) % count
            rep = group[replica]
            if rep is not None and rep.alive:
                if chosen is None:
                    chosen = replica
            else:
                self._respawn(shard, replica, wait=False)
        if chosen is None:
            chosen = self._cursor[shard] % count
        self._cursor[shard] = (chosen + 1) % count
        return chosen

    def _await_read(
        self, shard: int, replica: int, task_id: int, command: str, payload
    ):
        """Collect one read's reply, failing over to a live sibling —
        not waiting out a respawn — when the serving replica dies with
        the task in flight."""
        attempts = 0
        while True:
            reply = self._poll(shard, replica, task_id)
            if reply is not _DEAD:
                return reply
            attempts += 1
            if attempts > self.restart_limit:
                raise RuntimeError(
                    f"shard {shard} lost {attempts} workers on one "
                    f"{command} task; giving up"
                )
            sibling = self._live_sibling(shard, replica)
            if sibling is None:
                # No live replica left: the respawn-and-wait path is
                # all that remains (the single-replica deployment's
                # only option).
                self._respawn(shard, replica, wait=True)
            else:
                # Hot-path failover: the task moves to the sibling
                # now; the dead worker rebuilds in the background.
                self._respawn(shard, replica, wait=False)
                self.failovers += 1
                replica = sibling
            task_id = self._submit_to(shard, replica, command, payload)

    def _fan_out(self, command: str, payload):
        """Submit one task per shard (to its routed replica), then
        collect in shard order — shards compute concurrently in their
        own processes, and per-shard failover happens during collection
        without stalling the other shards."""
        self._check_open()
        slots = []
        for shard in range(self.shard_count):
            replica = self._pick(shard)
            slots.append(
                (replica, self._submit_to(shard, replica, command, payload))
            )
        return [
            self._await_read(shard, replica, task_id, command, payload)
            for shard, (replica, task_id) in enumerate(slots)
        ]

    def _await_ingest(
        self, shard: int, replica: int, task_id: int, entry
    ):
        """Collect one replica's ingest ack; a replica dying mid-ingest
        is respawned (journal replay first — the entry is *not* in the
        journal yet) and the entry resubmitted, applying exactly once."""
        attempts = 0
        while True:
            reply = self._poll(shard, replica, task_id)
            if reply is not _DEAD:
                return reply
            attempts += 1
            if attempts > self.restart_limit:
                raise RuntimeError(
                    f"shard {shard} replica {replica} crashed "
                    f"{attempts} times on one ingest task; giving up"
                )
            self._respawn(shard, replica, wait=False)
            task_id = self._submit_to(shard, replica, "ingest", entry)

    # ------------------------------------------------------------------
    # The executor surface
    # ------------------------------------------------------------------

    def match(self, query):
        wire_query = query_to_wire(query)
        return [
            (
                results_from_wire(results, self._resolve),
                stats_from_wire(stats),
            )
            for results, stats in self._fan_out("match", wire_query)
        ]

    def match_many(self, queries):
        wire_queries = [query_to_wire(query) for query in queries]
        return [
            [
                (
                    results_from_wire(results, self._resolve),
                    stats_from_wire(stats),
                )
                for results, stats in per_query
            ]
            for per_query in self._fan_out("match_many", wire_queries)
        ]

    def ingest(self, shard_index: int, pattern: ArchivedPattern) -> None:
        """Fan one archived pattern out to every replica of its shard.

        The journal entry is appended only after *every* replica
        acknowledged — a worker that dies mid-ingest is respawned
        (replaying a journal that does not yet hold the entry) and the
        entry resubmitted, so it applies exactly once. Appending
        before submission was the crash-recovery double-apply bug:
        the respawn replayed the entry *and* the await resubmitted it,
        and the worker's duplicate-id error killed recovery.
        """
        self._check_open()
        entry = (
            pattern.pattern_id,
            sgs_to_dict(pattern.sgs),
            pattern.full_size,
        )
        group = self._groups[shard_index]
        submitted = []
        for replica in range(len(group)):
            rep = group[replica]
            if rep is None or not rep.alive:
                # A dead replica still needs the entry: respawn it now
                # (background replay first, FIFO before the entry).
                self._respawn(shard_index, replica, wait=False)
            submitted.append(
                (replica, self._submit_to(shard_index, replica, "ingest", entry))
            )
        for replica, task_id in submitted:
            self._await_ingest(shard_index, replica, task_id, entry)
        self._ingest_log[shard_index].append(entry)

    def close(self) -> None:
        if self._closed:
            return
        for shard, group in enumerate(self._groups):
            for rep in group:
                if rep is None:
                    continue
                try:
                    if rep.alive:
                        rep.requests.put(None)
                except (ValueError, OSError):
                    pass
        for shard, group in enumerate(self._groups):
            for replica, rep in enumerate(group):
                if rep is None:
                    continue
                rep.process.join(timeout=2.0)
                if rep.alive:
                    rep.process.terminate()
                    rep.process.join(timeout=1.0)
                self._discard(shard, replica)
        self._tempdir.cleanup()
        super().close()

    def __del__(self):  # best-effort: explicit close() is the API
        try:
            self.close()
        except Exception:
            pass


def build_executor(
    mode: Optional[str],
    engines: Sequence,
    base=None,
    max_workers: Optional[int] = None,
    worker_config: Optional[Dict[str, object]] = None,
    replicas: int = 1,
) -> ShardExecutor:
    """Construct the executor for a deployment mode.

    ``mode=None`` keeps the facade's historical default: serial for a
    single shard (or ``max_workers <= 1``), the thread pool otherwise —
    unless ``replicas > 1``, which implies process workers (replication
    only exists as worker processes). An explicit in-process mode with
    ``replicas > 1`` is a contradiction and raises. ``process``
    additionally needs ``base`` (the partitioned archive, for shard
    dumps and result resolution) and ``worker_config`` (the picklable
    engine construction arguments).
    """
    replicas = int(replicas)
    if replicas < 1:
        raise ValueError("replicas must be positive")
    if mode is None:
        if replicas > 1:
            mode = "process"
        else:
            workers = (
                len(engines) if max_workers is None else int(max_workers)
            )
            mode = "thread" if len(engines) > 1 and workers > 1 else "serial"
    validate_mode(mode)
    if mode in ("serial", "thread") and replicas > 1:
        raise ValueError(
            f"replicas={replicas} needs process mode; {mode!r} serves "
            f"from the caller's one live archive"
        )
    if mode == "serial":
        return SerialExecutor(engines)
    if mode == "thread":
        return ThreadExecutor(engines, max_workers=max_workers)
    if base is None or worker_config is None:
        raise ValueError(
            "process mode needs the partitioned base and a worker config"
        )
    return ProcessExecutor(
        base.shards(), worker_config, base.get, replicas=replicas
    )
