"""The deployment-mode seam: where shard work runs.

A :class:`ShardExecutor` answers ``match`` / ``match_many`` for *every*
shard of a partitioned archive and returns the per-shard
``(results, stats)`` pairs in shard order — the caller (the
:class:`~repro.retrieval.shards.ShardedMatchEngine` facade or the
always-on service) merges them through
:func:`repro.serving.merge.merge_shard_results`. Three implementations
are interchangeable with identical answers:

* :class:`SerialExecutor` — an in-process loop over the shard engines;
  the deterministic-profiling and single-shard baseline.
* :class:`ThreadExecutor` — the shard engines on **one persistent
  thread pool**, created at construction and shut down by ``close()``
  (the facade used to build a ``ThreadPoolExecutor`` per call; the
  pool is now owned for the executor's lifetime).
* :class:`ProcessExecutor` — one OS process per shard. Each worker
  **hydrates its shard once from a persisted format-v3 dump** (written
  at construction through :func:`repro.archive.persistence.\
dump_pattern_base`, inverted cell-signature section included, so
  workers start with warm posting lists), then answers tasks over a
  request/response queue pair. A worker that dies mid-task is
  respawned from the same dump, post-dump ingests are replayed from a
  journal, and the interrupted task is resubmitted — crash recovery
  never changes answers, because shard answers are deterministic.

Results cross the process boundary as
``[pattern_id, distance, alignment]`` triples
(:mod:`repro.serving.wire`) and re-attach to the caller's own archive
copy through a resolver, so the merged output is bit-identical to the
serial path's.
"""

from __future__ import annotations

import os
import queue as queue_module
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.archive.persistence import dump_pattern_base, load_pattern_base
from repro.core.serialize import sgs_from_dict, sgs_to_dict
from repro.serving.wire import (
    metric_from_wire,
    query_from_wire,
    query_to_wire,
    results_from_wire,
    results_to_wire,
    stats_from_wire,
    stats_to_wire,
)

#: The supported deployment modes, in escalation order.
MODES = ("serial", "thread", "process")

#: How many consecutive crash-restarts one task may trigger before the
#: executor gives up and raises.
DEFAULT_RESTART_LIMIT = 3

#: Seconds between liveness checks while awaiting a worker reply.
_POLL_SECONDS = 0.05


def validate_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(
            f"unknown serving mode {mode!r}; expected one of {MODES}"
        )
    return mode


class ShardExecutor:
    """Protocol base: per-shard execution behind one seam.

    ``match``/``match_many`` return per-shard answers in shard order;
    ``ingest`` propagates a newly archived pattern to whatever copy of
    its shard the executor serves from (a no-op for in-process modes,
    which share the caller's live archive); ``close`` releases owned
    resources and is idempotent. Executors are context managers.
    """

    mode: str = ""

    def __init__(self) -> None:
        self._closed = False

    @property
    def parallel(self) -> bool:
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def match(self, query) -> List[Tuple[list, object]]:
        raise NotImplementedError

    def match_many(self, queries) -> List[List[Tuple[list, object]]]:
        raise NotImplementedError

    def ingest(self, shard_index: int, pattern: ArchivedPattern) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run every shard's work in the calling thread, in shard order."""

    mode = "serial"

    def __init__(self, engines: Sequence):
        super().__init__()
        self.engines = list(engines)

    def match(self, query):
        self._check_open()
        return [engine.match(query) for engine in self.engines]

    def match_many(self, queries):
        self._check_open()
        return [engine.match_many(queries) for engine in self.engines]


class ThreadExecutor(ShardExecutor):
    """Shard fan-out on one persistent, lifecycle-managed thread pool.

    The pool is constructed once and reused for every call —
    ``close()`` (or the context manager) shuts it down. Threads are
    spawned lazily by the pool, so an executor that never runs a query
    costs nothing beyond the object itself.
    """

    mode = "thread"

    def __init__(self, engines: Sequence, max_workers: Optional[int] = None):
        super().__init__()
        self.engines = list(engines)
        if max_workers is None:
            max_workers = len(self.engines)
        self.max_workers = max(1, min(int(max_workers), len(self.engines)))
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-shard",
        )

    @property
    def parallel(self) -> bool:
        return len(self.engines) > 1 and self.max_workers > 1

    def _fan_out(self, work: Callable):
        self._check_open()
        futures = [
            self._pool.submit(work, engine) for engine in self.engines
        ]
        return [future.result() for future in futures]

    def match(self, query):
        return self._fan_out(lambda engine: engine.match(query))

    def match_many(self, queries):
        return self._fan_out(lambda engine: engine.match_many(queries))

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
        super().close()


# ----------------------------------------------------------------------
# Process workers
# ----------------------------------------------------------------------


def _worker_main(dump_path, config, request_queue, response_queue):
    """One shard worker: hydrate from the format-v3 dump, then serve.

    Runs in a child process. Tasks arrive as
    ``(task_id, command, payload)`` tuples; ``None`` shuts the worker
    down. Replies are ``(task_id, "ok" | "error", payload)``.
    """
    from repro.retrieval.engine import MatchEngine

    base = load_pattern_base(dump_path)
    engine = MatchEngine(
        base,
        spec=metric_from_wire(config["metric"]),
        max_alignment_expansions=config["max_alignment_expansions"],
        coarse_level=config["coarse_level"],
        coarse_margin=config["coarse_margin"],
        ladder_factor=config["ladder_factor"],
        min_coarse_cells=config["min_coarse_cells"],
        use_inverted=config["use_inverted"],
    )
    while True:
        task = request_queue.get()
        if task is None:
            return
        task_id, command, payload = task
        try:
            if command == "match":
                results, stats = engine.match(query_from_wire(payload))
                reply = (results_to_wire(results), stats_to_wire(stats))
            elif command == "match_many":
                queries = [query_from_wire(data) for data in payload]
                reply = [
                    (results_to_wire(results), stats_to_wire(stats))
                    for results, stats in engine.match_many(queries)
                ]
            elif command == "ingest":
                pattern_id, sgs_data, full_size = payload
                base.restore(
                    ArchivedPattern(
                        pattern_id, sgs_from_dict(sgs_data), full_size
                    )
                )
                reply = len(base)
            elif command == "ping":
                reply = os.getpid()
            else:
                raise ValueError(f"unknown worker command {command!r}")
            response_queue.put((task_id, "ok", reply))
        except Exception as error:  # surface, don't die: the parent
            # treats a dead worker as a crash and restarts it; a
            # malformed task should fail loudly instead.
            response_queue.put(
                (task_id, "error", f"{type(error).__name__}: {error}")
            )


def _child_import_path() -> None:
    """Make ``repro`` importable in spawned children.

    ``spawn`` children rebuild ``sys.path`` from the environment, not
    from the parent interpreter — a source checkout run with
    ``PYTHONPATH=src`` (or pytest's ``pythonpath`` setting) would leave
    them unable to import this module. Prepend the package root to
    ``PYTHONPATH`` so every future spawn inherits it.
    """
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing
            else package_root
        )


class ProcessExecutor(ShardExecutor):
    """One multiprocessing worker per shard, restart-on-crash.

    Construction persists each shard to a format-v3 dump in an owned
    temporary directory and spawns one worker per shard; each worker
    hydrates from its dump exactly once and then answers match /
    match_many / ingest tasks over its own queue pair. A worker found
    dead while a task is in flight is respawned from the dump, the
    post-dump ingest journal is replayed, and the task is resubmitted
    (at most ``restart_limit`` times per task).

    ``resolve`` maps result pattern ids back to the caller's own
    archive records (typically ``ShardedPatternBase.get``), so the
    returned :class:`MatchResult` objects are indistinguishable from
    the in-process executors'.
    """

    mode = "process"

    def __init__(
        self,
        shards: Sequence[PatternBase],
        engine_config: Dict[str, object],
        resolve: Callable[[int], Optional[ArchivedPattern]],
        restart_limit: int = DEFAULT_RESTART_LIMIT,
        mp_start: str = "spawn",
    ):
        super().__init__()
        import multiprocessing

        if not shards:
            raise ValueError("ProcessExecutor needs at least one shard")
        self._config = dict(engine_config)
        self._resolve = resolve
        self.restart_limit = int(restart_limit)
        self._context = multiprocessing.get_context(mp_start)
        if mp_start != "fork":
            _child_import_path()
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        self._dump_paths = []
        for index, shard in enumerate(shards):
            path = os.path.join(self._tempdir.name, f"shard-{index}.sgsa")
            dump_pattern_base(shard, path)
            self._dump_paths.append(path)
        self._workers: List[object] = [None] * len(shards)
        self._requests: List[object] = [None] * len(shards)
        self._responses: List[object] = [None] * len(shards)
        #: Ingests accepted after the hydration dump, replayed into a
        #: respawned worker before any resubmission.
        self._ingest_log: List[List[tuple]] = [[] for _ in shards]
        self._task_counter = 0
        self.restarts = 0
        for index in range(len(shards)):
            self._spawn(index)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._workers)

    @property
    def parallel(self) -> bool:
        return self.shard_count > 1

    def worker_pids(self) -> List[int]:
        return [worker.pid for worker in self._workers]

    def _spawn(self, index: int) -> None:
        request_queue = self._context.Queue()
        response_queue = self._context.Queue()
        worker = self._context.Process(
            target=_worker_main,
            args=(
                self._dump_paths[index],
                self._config,
                request_queue,
                response_queue,
            ),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        worker.start()
        self._workers[index] = worker
        self._requests[index] = request_queue
        self._responses[index] = response_queue

    def _discard_queues(self, index: int) -> None:
        for queues in (self._requests, self._responses):
            channel = queues[index]
            if channel is not None:
                channel.close()
                # Never block interpreter exit on a dead worker's
                # unflushed feeder thread.
                channel.cancel_join_thread()
            queues[index] = None

    def _restart(self, index: int) -> None:
        """Respawn a crashed worker from its dump and replay the
        post-dump ingest journal."""
        worker = self._workers[index]
        if worker is not None:
            worker.join(timeout=0.5)
        self._discard_queues(index)
        self._spawn(index)
        self.restarts += 1
        for entry in self._ingest_log[index]:
            task_id = self._submit(index, "ingest", entry)
            self._await(index, task_id, allow_restart=False)

    # ------------------------------------------------------------------
    # The task protocol
    # ------------------------------------------------------------------

    def _submit(self, index: int, command: str, payload) -> int:
        self._task_counter += 1
        self._requests[index].put((self._task_counter, command, payload))
        return self._task_counter

    def _await(
        self,
        index: int,
        task_id: int,
        command: Optional[str] = None,
        payload=None,
        allow_restart: bool = True,
    ):
        """Wait for one task's reply, restarting the worker (and
        resubmitting) if it dies with the task in flight."""
        attempts = 0
        while True:
            try:
                reply_id, status, reply = self._responses[index].get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                if self._workers[index].is_alive():
                    continue
                if not allow_restart or command is None:
                    raise RuntimeError(
                        f"shard worker {index} died during {command or 'replay'}"
                    )
                attempts += 1
                if attempts > self.restart_limit:
                    raise RuntimeError(
                        f"shard worker {index} crashed {attempts} times "
                        f"on one {command} task; giving up"
                    )
                self._restart(index)
                task_id = self._submit(index, command, payload)
                continue
            if reply_id != task_id:
                continue  # stale reply from before a restart
            if status == "error":
                raise RuntimeError(
                    f"shard worker {index} failed: {reply}"
                )
            return reply

    def _fan_out(self, command: str, payload):
        """Submit one task to every worker, then collect in shard
        order — shards compute concurrently in their own processes."""
        self._check_open()
        task_ids = [
            self._submit(index, command, payload)
            for index in range(self.shard_count)
        ]
        return [
            self._await(index, task_ids[index], command, payload)
            for index in range(self.shard_count)
        ]

    # ------------------------------------------------------------------
    # The executor surface
    # ------------------------------------------------------------------

    def match(self, query):
        wire_query = query_to_wire(query)
        return [
            (
                results_from_wire(results, self._resolve),
                stats_from_wire(stats),
            )
            for results, stats in self._fan_out("match", wire_query)
        ]

    def match_many(self, queries):
        wire_queries = [query_to_wire(query) for query in queries]
        return [
            [
                (
                    results_from_wire(results, self._resolve),
                    stats_from_wire(stats),
                )
                for results, stats in per_query
            ]
            for per_query in self._fan_out("match_many", wire_queries)
        ]

    def ingest(self, shard_index: int, pattern: ArchivedPattern) -> None:
        self._check_open()
        entry = (
            pattern.pattern_id,
            sgs_to_dict(pattern.sgs),
            pattern.full_size,
        )
        self._ingest_log[shard_index].append(entry)
        task_id = self._submit(shard_index, "ingest", entry)
        self._await(shard_index, task_id, "ingest", entry)

    def close(self) -> None:
        if self._closed:
            return
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                if worker.is_alive():
                    self._requests[index].put(None)
            except (ValueError, OSError):
                pass
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            worker.join(timeout=2.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
            self._discard_queues(index)
        self._tempdir.cleanup()
        super().close()

    def __del__(self):  # best-effort: explicit close() is the API
        try:
            self.close()
        except Exception:
            pass


def build_executor(
    mode: Optional[str],
    engines: Sequence,
    base=None,
    max_workers: Optional[int] = None,
    worker_config: Optional[Dict[str, object]] = None,
) -> ShardExecutor:
    """Construct the executor for a deployment mode.

    ``mode=None`` keeps the facade's historical default: serial for a
    single shard (or ``max_workers <= 1``), the thread pool otherwise.
    ``process`` additionally needs ``base`` (the partitioned archive,
    for shard dumps and result resolution) and ``worker_config`` (the
    picklable engine construction arguments).
    """
    if mode is None:
        workers = len(engines) if max_workers is None else int(max_workers)
        mode = "thread" if len(engines) > 1 and workers > 1 else "serial"
    validate_mode(mode)
    if mode == "serial":
        return SerialExecutor(engines)
    if mode == "thread":
        return ThreadExecutor(engines, max_workers=max_workers)
    if base is None or worker_config is None:
        raise ValueError(
            "process mode needs the partitioned base and a worker config"
        )
    return ProcessExecutor(base.shards(), worker_config, base.get)
