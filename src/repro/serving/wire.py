"""Wire forms of queries, results, and stats.

Two serving boundaries move matching traffic out of the caller's
address space — the :class:`~repro.serving.executors.ProcessExecutor`
task queue and the JSON-over-HTTP service — and both need the same
thing: a plain-data form of :class:`~repro.retrieval.queries.MatchQuery`
and of the engine's ``(results, stats)`` answers built from dicts,
lists, strings, and numbers only (picklable *and* JSON-able).

Results travel as ``[pattern_id, distance, alignment]`` triples: the
pattern records themselves stay wherever an archive copy lives, and
:func:`results_from_wire` re-attaches them through a caller-supplied
resolver (typically ``base.get``). Distances are produced by the same
code on either side of the boundary, so a round trip is bit-exact —
the executor-parity suite pins merged answers byte for byte across
serial, thread, and process modes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import ArchivedPattern
from repro.core.serialize import sgs_from_dict, sgs_to_dict
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval.engine import EngineStats, MatchResult
from repro.retrieval.queries import MatchQuery

__all__ = [
    "metric_from_wire",
    "metric_to_wire",
    "query_from_wire",
    "query_to_wire",
    "results_from_wire",
    "results_to_wire",
    "stats_from_wire",
    "stats_to_wire",
]


def metric_to_wire(spec: DistanceMetricSpec) -> Dict[str, object]:
    return {
        "position_sensitive": spec.position_sensitive,
        "weights": dict(spec.weights),
    }


def metric_from_wire(data: Dict[str, object]) -> DistanceMetricSpec:
    return DistanceMetricSpec(
        position_sensitive=bool(data["position_sensitive"]),
        weights={
            str(name): float(value)
            for name, value in data["weights"].items()
        },
    )


def query_to_wire(query: MatchQuery) -> Dict[str, object]:
    return {
        "sgs": sgs_to_dict(query.sgs),
        "threshold": query.threshold,
        "top_k": query.top_k,
        "metric": metric_to_wire(query.metric),
        "window_range": (
            list(query.window_range)
            if query.window_range is not None
            else None
        ),
        "feature_ranges": (
            {name: list(span) for name, span in query.feature_ranges.items()}
            if query.feature_ranges
            else None
        ),
        "coarse_level": query.coarse_level,
    }


def query_from_wire(data: Dict[str, object]) -> MatchQuery:
    window_range = data.get("window_range")
    feature_ranges = data.get("feature_ranges")
    return MatchQuery(
        sgs=sgs_from_dict(data["sgs"]),
        threshold=float(data["threshold"]),
        top_k=data.get("top_k"),
        metric=metric_from_wire(data["metric"]),
        window_range=(
            (int(window_range[0]), int(window_range[1]))
            if window_range is not None
            else None
        ),
        feature_ranges=(
            {
                str(name): (float(span[0]), float(span[1]))
                for name, span in feature_ranges.items()
            }
            if feature_ranges
            else None
        ),
        coarse_level=int(data.get("coarse_level", 0)),
    )


def results_to_wire(
    results: Sequence[MatchResult],
) -> List[List[object]]:
    return [
        [r.pattern.pattern_id, r.distance, list(r.alignment)]
        for r in results
    ]


def results_from_wire(
    data: Sequence[Sequence[object]],
    resolve: Callable[[int], Optional[ArchivedPattern]],
) -> List[MatchResult]:
    results: List[MatchResult] = []
    for pattern_id, distance, alignment in data:
        pattern = resolve(int(pattern_id))
        if pattern is None:
            raise KeyError(
                f"result pattern {pattern_id} is not in the local archive"
            )
        results.append(
            MatchResult(pattern, float(distance), tuple(alignment))
        )
    return results


#: The integer phase counters of :class:`EngineStats`, in wire order.
_STAT_COUNTERS: Tuple[str, ...] = (
    "screened",
    "feature_filtered",
    "coarse_evaluated",
    "coarse_rejected",
    "coarse_fast_accepted",
    "refined",
    "matches",
)


def stats_to_wire(stats: EngineStats) -> Dict[str, object]:
    wire: Dict[str, object] = {
        "archive_size": stats.archive_size,
        "plan": dict(stats.plan),
        "coarse_screen": stats.coarse_screen,
    }
    for name in _STAT_COUNTERS:
        wire[name] = getattr(stats, name)
    return wire


def stats_from_wire(data: Dict[str, object]) -> EngineStats:
    stats = EngineStats(
        archive_size=int(data["archive_size"]),
        plan=dict(data["plan"]),
    )
    stats.coarse_screen = str(data.get("coarse_screen", ""))
    for name in _STAT_COUNTERS:
        setattr(stats, name, int(data.get(name, 0)))
    return stats
