"""JSON-over-HTTP front end for :class:`MatchService` — stdlib only.

``repro serve`` binds a :class:`http.server.ThreadingHTTPServer` whose
handler dispatches to one shared :class:`~repro.serving.service.\
MatchService`:

========  ============  ====================================
method    path          body / answer
========  ============  ====================================
GET       /healthz      liveness ``{"status": "ok", ...}``
GET       /stats        archive + serving configuration
POST      /ingest       ``{"sgs": <sgs dict>, "full_size"}``
POST      /match        a wire-form match query
POST      /match_many   ``{"queries": [<query>, ...]}``
========  ============  ====================================

Bodies and answers are JSON; a malformed request answers 400 with
``{"error": ...}``, an unknown path 404, a handler crash 500. The
server threads only decode and encode here — every operation runs
under the service's own lock, so threading the HTTP layer costs no
determinism.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.serving.service import MatchService, ServiceError

__all__ = ["MatchRequestHandler", "make_server"]

#: Largest accepted request body, a guard against runaway posts.
MAX_BODY_BYTES = 64 * 1024 * 1024


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes the five service endpoints; JSON in, JSON out."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MatchService:
        return self.server.service  # attached by make_server

    def log_message(self, format, *args):  # quiet by default; the CLI
        pass  # announces the bound address once instead.

    def _reply(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body is required")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large")
        return json.loads(self.rfile.read(length))

    def _dispatch(self, handler, with_body: bool) -> None:
        try:
            payload = self._read_json() if with_body else None
            answer = handler(payload) if with_body else handler()
            self._reply(200, answer)
        except (ServiceError, json.JSONDecodeError) as error:
            self._reply(400, {"error": str(error)})
        except Exception as error:  # a crash must answer, not hang the
            # client: the connection is keep-alive under HTTP/1.1.
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._dispatch(self.service.healthz, with_body=False)
        elif self.path == "/stats":
            self._dispatch(self.service.stats, with_body=False)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        routes = {
            "/ingest": self.service.ingest,
            "/match": self.service.match,
            "/match_many": self.service.match_many,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        self._dispatch(handler, with_body=True)


def make_server(
    service: MatchService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[ThreadingHTTPServer, str, int]:
    """Bind the service; returns ``(server, host, bound_port)``.

    ``port=0`` lets the OS pick a free port — the caller reads the
    bound one back (the CLI prints it; tests parse it). Call
    ``server.serve_forever()`` to run and ``server.shutdown()`` +
    ``server.server_close()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), MatchRequestHandler)
    server.daemon_threads = True
    server.service = service
    bound_host, bound_port = server.server_address[:2]
    return server, str(bound_host), int(bound_port)
