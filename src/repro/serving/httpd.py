"""JSON-over-HTTP front end for :class:`MatchService` — stdlib only.

``repro serve`` binds a :class:`http.server.ThreadingHTTPServer` whose
handler dispatches to one shared :class:`~repro.serving.service.\
MatchService`:

========  =============  ====================================
method    path           body / answer
========  =============  ====================================
GET       /healthz       liveness ``{"status": "ok", ...}``
GET       /stats         archive + serving configuration
POST      /ingest        ``{"sgs": <sgs dict>, "full_size"}``
POST      /match         a wire-form match query
POST      /match_many    ``{"queries": [<query>, ...]}``
POST      /queries       register a clustering query
POST      /stream        feed objects to registered queries
DELETE    /queries/<id>  unregister query ``<id>``
========  =============  ====================================

Bodies and answers are JSON; a malformed request answers 400 with
``{"error": ...}``, an unknown path 404, a handler crash 500. The
server threads only decode and encode here — every operation runs
under the service's own lock, so threading the HTTP layer costs no
determinism.

Error replies never poison the HTTP/1.1 keep-alive stream: a request
rejected *before* its body was read (oversized, unknown path) has the
unread bytes drained — bounded by :data:`DRAIN_LIMIT_BYTES` — so the
next request on the same socket starts at a request line, and when
draining is unreasonable (body too large, or a malformed
``Content-Length`` that leaves the stream unparseable) the reply
carries ``Connection: close`` instead.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.serving.service import MatchService, ServiceError

__all__ = ["MatchRequestHandler", "make_server"]

#: Largest accepted request body, a guard against runaway posts.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Largest unread body an error reply will drain to keep the
#: connection reusable; anything bigger closes the connection instead.
DRAIN_LIMIT_BYTES = 1024 * 1024


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes the five service endpoints; JSON in, JSON out."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Class attributes, not module constants, so deployments (and the
    #: regression tests) can tighten them per handler.
    max_body_bytes = MAX_BODY_BYTES
    drain_limit = DRAIN_LIMIT_BYTES

    @property
    def service(self) -> MatchService:
        return self.server.service  # attached by make_server

    def log_message(self, format, *args):  # quiet by default; the CLI
        pass  # announces the bound address once instead.

    def _reply(self, status: int, payload, close: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # send_header("Connection", "close") also flips
            # self.close_connection, so the server really hangs up.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _declared_body_length(self):
        """The request's declared body length: an int, or ``None`` when
        the Content-Length header is non-numeric (the stream position
        of the next request is then unknowable)."""
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            return max(0, int(raw))
        except ValueError:
            return None

    def _read_json(self):
        length = self._declared_body_length()
        if length is None:
            raise ServiceError(
                "malformed Content-Length header "
                f"{self.headers.get('Content-Length')!r}"
            )
        if length <= 0:
            raise ServiceError("request body is required")
        if length > self.max_body_bytes:
            raise ServiceError("request body too large")
        data = self.rfile.read(length)
        self._unread_body = 0
        return json.loads(data)

    def _reply_error(self, status: int, message: str) -> None:
        """Answer an error without corrupting the keep-alive stream:
        drain the unread body (bounded) so the socket stays reusable,
        or close the connection when the stream can't be resynced."""
        unread = self._unread_body
        close = False
        if unread is None:
            close = True  # unknown body length: no way to resync
        elif unread > 0:
            if unread <= self.drain_limit:
                self.rfile.read(unread)
            else:
                close = True
        self._reply(status, {"error": message}, close=close)

    def _dispatch(self, handler, with_body: bool) -> None:
        # Until _read_json consumes it, the declared body is pending on
        # the socket; error replies must account for it.
        self._unread_body = self._declared_body_length() if with_body else 0
        try:
            payload = self._read_json() if with_body else None
            answer = handler(payload) if with_body else handler()
            self._reply(200, answer)
        except (ServiceError, json.JSONDecodeError) as error:
            self._reply_error(400, str(error))
        except Exception as error:  # a crash must answer, not hang the
            # client: the connection is keep-alive under HTTP/1.1.
            self._reply_error(500, f"{type(error).__name__}: {error}")

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._dispatch(self.service.healthz, with_body=False)
        elif self.path == "/stats":
            self._dispatch(self.service.stats, with_body=False)
        else:
            self._unread_body = 0
            self._reply_error(404, f"unknown path {self.path}")

    def do_POST(self) -> None:
        routes = {
            "/ingest": self.service.ingest,
            "/match": self.service.match,
            "/match_many": self.service.match_many,
            "/queries": self.service.register_query,
            "/stream": self.service.stream,
        }
        handler = routes.get(self.path)
        if handler is None:
            # The unknown-path reply still owes the stream its body.
            self._unread_body = self._declared_body_length()
            self._reply_error(404, f"unknown path {self.path}")
            return
        self._dispatch(handler, with_body=True)

    def do_DELETE(self) -> None:
        prefix = "/queries/"
        if not self.path.startswith(prefix):
            self._unread_body = self._declared_body_length()
            self._reply_error(404, f"unknown path {self.path}")
            return
        query_id = self.path[len(prefix):]
        self._unread_body = self._declared_body_length()
        try:
            self._reply(200, self.service.unregister_query(query_id))
        except ServiceError as error:
            self._reply_error(400, str(error))
        except Exception as error:
            self._reply_error(500, f"{type(error).__name__}: {error}")


def make_server(
    service: MatchService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[ThreadingHTTPServer, str, int]:
    """Bind the service; returns ``(server, host, bound_port)``.

    ``port=0`` lets the OS pick a free port — the caller reads the
    bound one back (the CLI prints it; tests parse it). Call
    ``server.serve_forever()`` to run and ``server.shutdown()`` +
    ``server.server_close()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), MatchRequestHandler)
    server.daemon_threads = True
    server.service = service
    bound_host, bound_port = server.server_address[:2]
    return server, str(bound_host), int(bound_port)
