"""Deployment seam for serving the Pattern Base.

:mod:`repro.retrieval.shards` partitions the archive and plans per
shard; *this* package decides **where the shard work runs** and how a
long-lived deployment fronts it:

* :mod:`repro.serving.merge` — the deterministic cross-shard merge
  (concatenate, sort by ``(distance, pattern_id)``, cut to ``top_k``),
  shared by every execution mode so answers never depend on placement
  or parallelism;
* :mod:`repro.serving.executors` — the :class:`ShardExecutor` seam
  with three interchangeable implementations: ``serial`` (in-process
  loop), ``thread`` (one persistent, lifecycle-managed pool), and
  ``process`` (multiprocessing workers that hydrate their shard once
  from a persisted format-v3 dump and restart on crash; ``replicas=N``
  runs N workers per shard with round-robin reads and mid-task
  failover to a live sibling);
* :mod:`repro.serving.wire` — the picklable/JSON-able wire forms of
  queries, results, and stats that cross the process and HTTP
  boundaries;
* :mod:`repro.serving.service` / :mod:`repro.serving.httpd` — the
  always-on front end: a :class:`MatchService` application object and
  a stdlib JSON-over-HTTP server (``repro serve``) exposing
  ``/ingest``, ``/match``, ``/match_many``, ``/stats``, ``/healthz``.

:class:`~repro.retrieval.shards.ShardedMatchEngine` is a thin facade
over this seam: it owns one executor for its lifetime and merges
through :func:`~repro.serving.merge.merge_shard_results`, so
``{serial, thread, process}`` are interchangeable via its ``mode``
argument (or ``repro serve --mode``) with identical answers.
"""

from repro.serving.executors import (
    MODES,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
    build_executor,
    validate_mode,
)
from repro.serving.merge import ENTRY_SHARDED, merge_shard_results

__all__ = [
    "ENTRY_SHARDED",
    "MODES",
    "MatchService",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ThreadExecutor",
    "build_executor",
    "merge_shard_results",
    "validate_mode",
]


def __getattr__(name):
    # MatchService lives behind a lazy import: service.py builds
    # ShardedPatternBase instances, and a module-level import here
    # would close an import cycle through repro.retrieval.shards.
    if name == "MatchService":
        from repro.serving.service import MatchService

        return MatchService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
