"""Runtime registry of concurrent Continuous Clustering Queries.

The registry is the control plane of the multiplexing subsystem: it
hands out stable integer query ids, tracks each query's lifecycle, and
holds the per-query result sink and counters. The data plane — cohort
formation, the shared substrate, window execution — lives in
:mod:`repro.multiplex.scheduler`, which reads the registry at every
batch boundary:

* ``pending`` — registered, not yet picked up by the scheduler; the
  query starts with the next processed batch;
* ``active``  — executing; its sink receives one
  :class:`~repro.core.csgs.WindowOutput` per window;
* ``stopped`` — unregistered (or registered then cancelled before ever
  running); it receives nothing further, and the scheduler detaches its
  pipeline at the next batch boundary.

Registration accepts any
:class:`~repro.config.ContinuousClusteringQuery`; a validator installed
by the scheduler rejects queries that cannot join the multiplexed run
(dimensionality mismatch, misaligned window slide) at ``register``
time, before an id is assigned.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.config import ContinuousClusteringQuery
from repro.core.csgs import WindowOutput

__all__ = ["PENDING", "ACTIVE", "STOPPED", "RegisteredQuery", "QueryRegistry"]

PENDING = "pending"
ACTIVE = "active"
STOPPED = "stopped"

#: A per-query result sink: called once per emitted window.
Sink = Callable[["RegisteredQuery", WindowOutput], None]


class RegisteredQuery:
    """One registered query: stable id, lifecycle, sink, counters."""

    __slots__ = (
        "id",
        "query",
        "sink",
        "state",
        "start_window",
        "stop_window",
        "rung_level",
        "dedicated",
        "counters",
    )

    def __init__(
        self,
        query_id: int,
        query: ContinuousClusteringQuery,
        sink: Optional[Sink],
    ):
        self.id = query_id
        self.query = query
        self.sink = sink
        self.state = PENDING
        #: First window index the query executed in (set on activation).
        self.start_window: Optional[int] = None
        #: First window index the query no longer executed in.
        self.stop_window: Optional[int] = None
        #: The substrate rung serving this query's θr (``None`` until
        #: activation, and for dedicated-fallback queries).
        self.rung_level: Optional[int] = None
        #: True when the query runs on a dedicated provider (θr not
        #: snappable onto the ladder, or sharing disabled).
        self.dedicated = False
        self.counters: Dict[str, int] = {"windows": 0, "clusters": 0}

    def deliver(self, output: WindowOutput) -> None:
        """Count one emitted window and hand it to the sink, if any."""
        self.counters["windows"] += 1
        self.counters["clusters"] += len(output.clusters)
        if self.sink is not None:
            self.sink(self, output)

    def describe(self) -> Dict[str, object]:
        """A JSON-able status block (the ``/stats`` per-query entry)."""
        return {
            "id": self.id,
            "state": self.state,
            "theta_range": self.query.theta_range,
            "theta_count": self.query.theta_count,
            "dimensions": self.query.dimensions,
            "win": self.query.window.win,
            "slide": self.query.window.slide,
            "rung": self.rung_level,
            "dedicated": self.dedicated,
            "start_window": self.start_window,
            "stop_window": self.stop_window,
            "windows": self.counters["windows"],
            "clusters": self.counters["clusters"],
        }

    def __repr__(self) -> str:
        return (
            f"RegisteredQuery(id={self.id}, state={self.state!r}, "
            f"theta_range={self.query.theta_range}, "
            f"theta_count={self.query.theta_count})"
        )


class QueryRegistry:
    """Thread-safe registration/unregistration of clustering queries."""

    def __init__(
        self,
        validator: Optional[
            Callable[[ContinuousClusteringQuery], None]
        ] = None,
    ):
        self._validator = validator
        self._lock = threading.Lock()
        self._queries: Dict[int, RegisteredQuery] = {}
        self._next_id = 1

    def register(
        self,
        query: ContinuousClusteringQuery,
        sink: Optional[Sink] = None,
    ) -> RegisteredQuery:
        """Admit a query; returns its handle (``.id`` is stable).

        The query is ``pending`` until the scheduler's next batch
        boundary. A validator (installed by the scheduler) raises
        ``ValueError`` here — before an id is assigned — when the query
        cannot join the run.
        """
        if not isinstance(query, ContinuousClusteringQuery):
            raise ValueError(
                "register expects a ContinuousClusteringQuery, got "
                f"{type(query).__name__}"
            )
        if self._validator is not None:
            self._validator(query)
        with self._lock:
            handle = RegisteredQuery(self._next_id, query, sink)
            self._queries[handle.id] = handle
            self._next_id += 1
            return handle

    def unregister(self, query_id: int) -> RegisteredQuery:
        """Stop a query. It receives no further outputs; the scheduler
        detaches its pipeline at the next batch boundary."""
        with self._lock:
            handle = self._queries.get(int(query_id))
            if handle is None:
                raise KeyError(f"no registered query with id {query_id}")
            if handle.state == STOPPED:
                raise ValueError(f"query {handle.id} is already stopped")
            handle.state = STOPPED
            return handle

    def get(self, query_id: int) -> RegisteredQuery:
        with self._lock:
            handle = self._queries.get(int(query_id))
            if handle is None:
                raise KeyError(f"no registered query with id {query_id}")
            return handle

    def snapshot(self) -> List[RegisteredQuery]:
        """All handles ever registered, in id order."""
        with self._lock:
            return [self._queries[qid] for qid in sorted(self._queries)]

    def in_state(self, state: str) -> List[RegisteredQuery]:
        return [h for h in self.snapshot() if h.state == state]

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)

    def describe(self) -> List[Dict[str, object]]:
        return [handle.describe() for handle in self.snapshot()]
