"""Query multiplexing: many concurrent queries, one shared substrate.

The subsystem has three layers:

* :mod:`repro.multiplex.registry` — the control plane: runtime
  registration/unregistration of Continuous Clustering Queries with
  stable ids, lifecycle states, per-query sinks and counters;
* :mod:`repro.multiplex.provider` — the storage plane: a
  multi-resolution neighbor provider serving queries with differing θr
  from one hierarchical cell structure (θr snapped onto a geometric
  rung ladder, exact-match only);
* :mod:`repro.multiplex.scheduler` — the data plane: a slide scheduler
  aligning window slides across registered queries, answering each
  stream batch with **one** batched range-query pass and fanning the
  neighbor lists out to per-cohort C-SGS pipelines.

The standing guarantee: multiplexed output is byte-identical to running
each query in its own independent pipeline (``tests/test_multiplex.py``
pins it across index backends).
"""

from repro.multiplex.provider import MultiResolutionProvider, RungView
from repro.multiplex.registry import (
    ACTIVE,
    PENDING,
    QueryRegistry,
    RegisteredQuery,
    STOPPED,
)
from repro.multiplex.scheduler import SlideScheduler

__all__ = [
    "ACTIVE",
    "PENDING",
    "STOPPED",
    "MultiResolutionProvider",
    "QueryRegistry",
    "RegisteredQuery",
    "RungView",
    "SlideScheduler",
]
