"""The batched slide scheduler: k queries, one range-query pass.

This is the data plane of query multiplexing. All registered queries'
window slides are aligned on one slide bucketing (the first registered
query fixes it; later registrations must agree on slide semantics —
window *sizes* may differ). Per stream batch the scheduler performs
**one** ``range_query_many`` pass over the shared multi-resolution
substrate and fans the per-object neighbor lists out to member C-SGS
pipelines — the window-function playbook: partition the stream once
(slide buckets), order it once (arrival), pre-aggregate the frame
(top-rung neighbor candidates with exact squared distances), then let
every query evaluate its own predicate over the shared frame instead of
re-running the search.

Queries are grouped into **cohorts** by ``(rung, lifespan,
activation window)``. A cohort is exactly the degenerate same-θr case
:class:`~repro.clustering.shared.SharedCSGS` implements, so each cohort
*is* a ``SharedCSGS`` — coordinator-fed for snapped rungs (neighbor
lists injected from the shared pass), owner-mode for the dedicated
fallback (a θr the ladder can't represent, or sharing disabled via the
A/B escape hatch). Each cohort owns a genuine
:class:`~repro.index.grid_index.CellMap` at its exact θr and per-cohort
window-stamped object clones, which is what makes the multiplexed
output **byte-identical** to independent per-query runs: cell
addressing, window stamps, and neighbor sets all match what a dedicated
pipeline computes (the equivalence suite pins it, across backends).

Per-query visibility over the shared pass is three exact filters on the
candidate ``(object, squared distance)`` pairs:

* radius — ``sqdist <= θr²`` (θr *is* the rung radius, exactly);
* admission — the neighbor arrived at or after the cohort's activation
  window (a query registered mid-stream never sees older objects, same
  as a fresh independent run);
* liveness — the neighbor's arrival bucket plus the cohort's lifespan
  still covers the current window (per-query window sizes differ, so an
  object may be expired for one query while alive for another).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import ContinuousClusteringQuery
from repro.clustering.shared import SharedCSGS
from repro.core.csgs import WindowOutput
from repro.index.grid_index import CellMap
from repro.multiplex.provider import MultiResolutionProvider, RungView
from repro.multiplex.registry import (
    ACTIVE,
    PENDING,
    QueryRegistry,
    RegisteredQuery,
    STOPPED,
    Sink,
)
from repro.streams.objects import StreamObject
from repro.streams.windows import (
    TimeBasedWindowSpec,
    WindowBatch,
    WindowSpec,
)

__all__ = ["SlideScheduler"]


class _Cohort:
    """One (θr, lifespan, activation) group of co-executing queries."""

    __slots__ = (
        "seq",
        "key",
        "theta_range",
        "lifespan",
        "start_window",
        "level",
        "shared",
        "queries",
    )

    def __init__(
        self,
        seq: int,
        key: Tuple,
        theta_range: float,
        lifespan: int,
        start_window: int,
        level: Optional[int],
        shared: SharedCSGS,
    ):
        self.seq = seq
        self.key = key
        self.theta_range = theta_range
        self.lifespan = lifespan
        self.start_window = start_window
        #: Substrate rung (``None`` = dedicated-provider fallback).
        self.level = level
        self.shared = shared
        #: Attached queries per θc (two identical queries share one
        #: member pipeline and receive the same output object).
        self.queries: Dict[int, List[RegisteredQuery]] = {}


class SlideScheduler:
    """Align slides across registered queries; one shared pass per batch.

    ``shared=False`` is the A/B escape hatch: every query runs on a
    dedicated provider (grouped only with exact-θr peers), bypassing the
    multi-resolution substrate entirely — same answers, independent
    cost, which is what makes the sharing ablation honest.
    """

    def __init__(
        self,
        dimensions: int,
        registry: Optional[QueryRegistry] = None,
        factor: float = 2.0,
        shared: bool = True,
        refinement: Optional[str] = None,
    ):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        if factor < 2:
            raise ValueError("ladder factor must be at least 2")
        self.dimensions = int(dimensions)
        self.factor = float(factor)
        self.sharing_enabled = bool(shared)
        self.refinement = refinement
        if registry is None:
            registry = QueryRegistry(validator=self._validate_query)
        self.registry = registry
        self.provider: Optional[MultiResolutionProvider] = None
        self._base_spec: Optional[WindowSpec] = None
        self._cohorts: Dict[Tuple, _Cohort] = {}
        self._attached: Dict[int, Tuple] = {}  # query id -> cohort key
        self._cohort_seq = 0
        self._expiry: Dict[int, List[StreamObject]] = {}
        self._purge_window = 0
        self._next_index: Optional[int] = None
        self.windows_processed = 0
        # Incremental windowing state for feed()/flush().
        self._current: Optional[WindowBatch] = None
        self._arrival_index = 0

    # ------------------------------------------------------------------
    # Registration (delegates to the registry; validation lives here)
    # ------------------------------------------------------------------

    def register(
        self,
        query: ContinuousClusteringQuery,
        sink: Optional[Sink] = None,
    ) -> RegisteredQuery:
        return self.registry.register(query, sink=sink)

    def unregister(self, query_id: int) -> RegisteredQuery:
        return self.registry.unregister(query_id)

    def _validate_query(self, query: ContinuousClusteringQuery) -> None:
        if query.dimensions != self.dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions; this "
                f"multiplexed run is {self.dimensions}-dimensional"
            )
        spec = query.window
        base = self._base_spec
        if base is None:
            # The first query fixes the slide bucketing for the run.
            self._base_spec = spec
            return
        if type(spec) is not type(base):
            raise ValueError(
                "window kinds cannot be mixed in one multiplexed run: "
                f"the run slides {type(base).__name__}, the query asks "
                f"{type(spec).__name__}"
            )
        if spec.slide != base.slide:
            raise ValueError(
                f"query slide {spec.slide} does not align with the "
                f"run's slide {base.slide}; all multiplexed queries "
                "must share one slide (window sizes may differ)"
            )
        if isinstance(spec, TimeBasedWindowSpec) and (
            spec.origin != base.origin
        ):
            raise ValueError(
                f"query window origin {spec.origin} does not align "
                f"with the run's origin {base.origin}"
            )

    # ------------------------------------------------------------------
    # Cohort lifecycle (batch-boundary sync with the registry)
    # ------------------------------------------------------------------

    def _sync(self, index: int) -> None:
        pending: List[RegisteredQuery] = []
        for handle in self.registry.snapshot():
            if handle.state == STOPPED and handle.id in self._attached:
                self._detach(handle, index)
            elif handle.state == PENDING:
                pending.append(handle)
        if not pending:
            return
        # Group same-boundary activations so queries sharing (rung,
        # lifespan) land in one cohort from the start.
        groups: Dict[Tuple, List[RegisteredQuery]] = {}
        levels: Dict[int, Optional[int]] = {}
        for handle in pending:
            level = self._snap(handle.query)
            levels[handle.id] = level
            key = self._cohort_key(handle.query, level, index)
            groups.setdefault(key, []).append(handle)
        for key, handles in groups.items():
            cohort = self._cohorts.get(key)
            if cohort is None:
                cohort = self._make_cohort(key, handles, index)
                self._cohorts[key] = cohort
            for handle in handles:
                count = handle.query.theta_count
                cohort.queries.setdefault(count, []).append(handle)
                handle.state = ACTIVE
                handle.start_window = index
                handle.rung_level = cohort.level
                handle.dedicated = cohort.level is None
                if cohort.level is not None:
                    self.provider.acquire(cohort.level)
                self._attached[handle.id] = key

    def _snap(self, query: ContinuousClusteringQuery) -> Optional[int]:
        if not self.sharing_enabled:
            return None
        if self.provider is None:
            # The first activated query anchors the ladder at its θr.
            self.provider = MultiResolutionProvider(
                query.theta_range,
                self.dimensions,
                factor=self.factor,
                refinement=self.refinement,
            )
        return self.provider.snap_level(query.theta_range)

    def _cohort_key(
        self,
        query: ContinuousClusteringQuery,
        level: Optional[int],
        index: int,
    ) -> Tuple:
        lifespan = query.window.windows_per_object
        if level is not None:
            return ("rung", level, lifespan, index)
        # Dedicated pipelines honor the query's declared backend and
        # refinement (the shared substrate has its own), so those are
        # part of what makes two fallback queries co-executable.
        return (
            "dedicated",
            query.theta_range,
            lifespan,
            index,
            query.index_backend,
            query.refinement,
        )

    def _make_cohort(
        self, key: Tuple, handles: List[RegisteredQuery], index: int
    ) -> _Cohort:
        query = handles[0].query
        lifespan = query.window.windows_per_object
        counts: List[int] = []
        for handle in handles:
            if handle.query.theta_count not in counts:
                counts.append(handle.query.theta_count)
        level = key[1] if key[0] == "rung" else None
        if level is not None:
            theta = self.provider.theta_at(level)
            shared = SharedCSGS(
                theta,
                counts,
                self.dimensions,
                provider=RungView(self.provider, level),
                cells=CellMap(theta, self.dimensions),
                manage_provider=False,
            )
        else:
            shared = SharedCSGS(
                query.theta_range,
                counts,
                self.dimensions,
                backend=query.index_backend,
                refinement=query.refinement,
            )
        self._cohort_seq += 1
        return _Cohort(
            self._cohort_seq,
            key,
            query.theta_range if level is None else self.provider.theta_at(level),
            lifespan,
            index,
            level,
            shared,
        )

    def _detach(self, handle: RegisteredQuery, index: int) -> None:
        key = self._attached.pop(handle.id)
        cohort = self._cohorts[key]
        count = handle.query.theta_count
        peers = cohort.queries[count]
        peers.remove(handle)
        handle.stop_window = index
        if not peers:
            del cohort.queries[count]
            cohort.shared.remove_member(count)
        if handle.rung_level is not None:
            self.provider.release(handle.rung_level)
        if not cohort.queries:
            del self._cohorts[key]

    def _ordered_cohorts(self) -> List[_Cohort]:
        return sorted(self._cohorts.values(), key=lambda c: c.seq)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def process_batch(
        self, batch: WindowBatch
    ) -> Dict[int, WindowOutput]:
        """Execute one slide for every registered query.

        Returns ``{query_id: WindowOutput}`` for the queries active in
        this window (sinks are called as well).
        """
        index = batch.index
        if self._next_index is not None and index < self._next_index:
            raise ValueError(
                f"windows must advance monotonically ({index} < "
                f"{self._next_index})"
            )
        self._sync(index)
        objects = list(batch.new_objects)
        cohorts = self._ordered_cohorts()
        snapped = [c for c in cohorts if c.level is not None]
        if self.provider is not None:
            self._purge_provider(index)
        results: Dict[int, WindowOutput] = {}
        # Clone stamps depend only on (batch index, lifespan), so all
        # cohorts sharing a lifespan share one clone list per batch (no
        # cohort ever mutates a clone after creation).
        clones_by_life: Dict[int, List[StreamObject]] = {}
        if snapped:
            max_lifespan = max(c.lifespan for c in snapped)
            for obj in objects:
                # Master stamps: arrival bucket, and retention until the
                # longest-lived active cohort is done with the object.
                obj.first_window = index
                obj.last_window = index + max_lifespan - 1
            # Masters already carry exactly the stamps a max-lifespan
            # clone would, so those cohorts ingest them directly.
            clones_by_life[max_lifespan] = objects
            candidates = (
                self.provider.batch_neighborhoods(objects)
                if objects
                else []
            )
            for obj in objects:
                self._expiry.setdefault(obj.last_window, []).append(obj)
            for cohort in snapped:
                outputs = self._run_snapped(
                    cohort,
                    index,
                    objects,
                    self._clones_for(clones_by_life, objects, index, cohort),
                    candidates,
                )
                self._fan_out(cohort, outputs, results)
        for cohort in cohorts:
            if cohort.level is not None:
                continue
            clones = self._clones_for(clones_by_life, objects, index, cohort)
            outputs = cohort.shared.process_batch(WindowBatch(index, clones))
            self._fan_out(cohort, outputs, results)
        self.windows_processed += 1
        self._next_index = index + 1
        return results

    def _run_snapped(
        self,
        cohort: _Cohort,
        index: int,
        objects: List[StreamObject],
        clones: List[StreamObject],
        candidates: List[Tuple[List[StreamObject], List[float]]],
    ) -> Dict[int, WindowOutput]:
        shared = cohort.shared
        shared.begin_window(index)
        sq_range = cohort.theta_range * cohort.theta_range
        start = cohort.start_window
        horizon = index - cohort.lifespan  # arrival bucket must exceed it
        pending = {obj.oid for obj in objects}
        for obj, clone, (neighbors, sq_dists) in zip(
            objects, clones, candidates
        ):
            pending.discard(obj.oid)
            known: List[StreamObject] = []
            # Distance-sorted candidates: this rung's radius cut is the
            # prefix up to θ² — the shared pass is scanned once per
            # cohort at the *cohort's* density, not the top rung's.
            for neighbor in neighbors[: bisect_right(sq_dists, sq_range)]:
                if neighbor.oid in pending:
                    # The later half of an intra-batch pair is credited
                    # when the later object is processed.
                    continue
                bucket = neighbor.first_window
                if bucket < start or bucket <= horizon:
                    continue
                known.append(neighbor)
            shared.ingest(clone, known)
        return shared.emit(index)

    @staticmethod
    def _clones_for(
        cache: Dict[int, List[StreamObject]],
        objects: List[StreamObject],
        index: int,
        cohort: _Cohort,
    ) -> List[StreamObject]:
        """This batch's object copies carrying the cohort's window stamps
        (the career maths reads neighbor lifespans off those two
        integers, so they must match what an independent run would
        stamp); one list per distinct lifespan, shared across cohorts."""
        clones = cache.get(cohort.lifespan)
        if clones is None:
            last = index + cohort.lifespan - 1
            clones = []
            for obj in objects:
                clone = StreamObject(obj.oid, obj.coords, obj.timestamp)
                clone.first_window = index
                clone.last_window = last
                clones.append(clone)
            cache[cohort.lifespan] = clones
        return clones

    def _fan_out(
        self,
        cohort: _Cohort,
        outputs: Dict[int, WindowOutput],
        results: Dict[int, WindowOutput],
    ) -> None:
        for count, output in outputs.items():
            for handle in cohort.queries.get(count, ()):
                handle.deliver(output)
                results[handle.id] = output

    def _purge_provider(self, index: int) -> None:
        for window in range(self._purge_window, index):
            for obj in self._expiry.pop(window, ()):
                self.provider.remove(obj)
        self._purge_window = index

    # ------------------------------------------------------------------
    # Stream driving (incremental windowing over the aligned slide)
    # ------------------------------------------------------------------

    def feed(
        self, source: Iterable[StreamObject]
    ) -> List[Tuple[int, Dict[int, WindowOutput]]]:
        """Consume stream objects, processing every slide they complete.

        Returns ``[(window_index, {query_id: output}), ...]`` for the
        windows closed by this call; a final partial slide stays pending
        until more objects arrive (or :meth:`flush` forces it).
        """
        spec = self._base_spec
        if spec is None:
            raise ValueError(
                "register at least one query before feeding the stream"
            )
        results: List[Tuple[int, Dict[int, WindowOutput]]] = []
        for obj in source:
            bucket = spec.slide_bucket(obj, self._arrival_index)
            self._arrival_index += 1
            if self._current is None:
                floor = self._next_index or 0
                if bucket < floor:
                    raise ValueError(
                        "stream is not ordered: object belongs to an "
                        f"already closed slide ({bucket} < {floor})"
                    )
                self._current = WindowBatch(index=bucket)
            if bucket < self._current.index:
                raise ValueError(
                    "stream is not ordered: object belongs to an already "
                    f"closed slide ({bucket} < {self._current.index})"
                )
            while bucket > self._current.index:
                closing = self._current
                self._current = WindowBatch(index=closing.index + 1)
                results.append((closing.index, self.process_batch(closing)))
            self._current.new_objects.append(obj)
        return results

    def flush(self) -> List[Tuple[int, Dict[int, WindowOutput]]]:
        """Force the pending partial slide through, if any."""
        if self._current is None:
            return []
        closing = self._current
        self._current = None
        return [(closing.index, self.process_batch(closing))]

    def run(
        self, source: Iterable[StreamObject]
    ) -> List[Tuple[int, Dict[int, WindowOutput]]]:
        """Drive a finite stream to completion: feed, then flush."""
        results = self.feed(source)
        results.extend(self.flush())
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A JSON-able status block (CLI ``repro multiplex`` and the
        serving layer's ``/stats`` render it)."""
        rungs: List[Dict[str, object]] = []
        provider_stats: Optional[Dict[str, object]] = None
        if self.provider is not None:
            refs = self.provider.active_rungs()
            rungs = [
                {
                    "level": level,
                    "theta_range": self.provider.theta_at(level),
                    "queries": refs[level],
                    "top": level == self.provider.top_level,
                }
                for level in sorted(refs)
            ]
            provider_stats = dict(self.provider.stats)
            provider_stats["objects"] = len(self.provider)
            provider_stats["anchor_theta"] = self.provider.anchor_theta
        cohorts: List[Dict[str, object]] = []
        dedicated_range_queries = 0
        for cohort in self._ordered_cohorts():
            occupied = list(cohort.shared.cells.occupied_cells())
            entry: Dict[str, object] = {
                "mode": "shared" if cohort.level is not None else "dedicated",
                "rung": cohort.level,
                "theta_range": cohort.theta_range,
                "lifespan": cohort.lifespan,
                "start_window": cohort.start_window,
                "theta_counts": sorted(cohort.queries),
                "queries": sum(len(v) for v in cohort.queries.values()),
                "cells": len(occupied),
            }
            if cohort.level is not None and self.provider is not None:
                entry["top_cells"] = self.provider.nesting_of(
                    occupied, cohort.level
                )
            else:
                dedicated_range_queries += cohort.shared.range_queries_run
            cohorts.append(entry)
        return {
            "dimensions": self.dimensions,
            "sharing": self.sharing_enabled,
            "factor": self.factor,
            "windows_processed": self.windows_processed,
            "queries": self.registry.describe(),
            "rungs": rungs,
            "cohorts": cohorts,
            "provider": provider_stats,
            "dedicated_range_queries": dedicated_range_queries,
        }
