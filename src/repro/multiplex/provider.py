"""Multi-resolution neighbor provider: one substrate, many θr values.

Queries multiplexed over one stream rarely agree on θr. This module
serves all of them from **one** hierarchical cell structure by snapping
each query's θr onto a rung of a geometric ladder anchored at the first
query's radius::

    θ(level) = anchor · factor ** level        (level ∈ ℤ, factor ≥ 2)

The ladder is the same geometric cell hierarchy as SGS multi-resolution
coarsening (:mod:`repro.core.multires`): a rung's cells nest ``factor``
per axis inside the next rung's cells (:func:`~repro.core.multires.\
parent_coord` is the nesting relation, and :meth:`MultiResolutionProvider.\
nesting_of` reports it for any rung against the top one).

Snapping is **exact-match only**: a θr joins a rung iff it equals
``anchor · factor ** level`` bit-for-bit. With the default ``factor=2``
the rung radii are exact IEEE-754 scalings of the anchor, so every
snapped query's radius *is* its rung radius — which is what makes the
parity guarantee unconditional: filtering the top-rung gather by the
rung radius observes exactly the neighbor set a dedicated θr index
would return (the Hypothesis suite pins this). A θr that does not hit a
rung is reported unsnappable and the scheduler falls back to a
dedicated provider for it (the A/B escape hatch forces that fallback
for every query).

Query answering is batched: the provider keeps one gather
:class:`~repro.index.grid_index.GridIndex` at the **top active rung**
(the coarsest radius any registered query needs) plus one master
:class:`~repro.geometry.coordstore.CoordStore`, and answers a whole
window batch with a single ``range_query_many`` pass at the top radius.
Per-rung filtering happens on the exact canonical squared distances
(the same kernels every backend refines through), so finer rungs read
their neighbor lists out of the shared pass for free.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via either branch below
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.multires import parent_coord
from repro.geometry.coordstore import CoordStore
from repro.index.grid_index import GridIndex
from repro.streams.objects import StreamObject

__all__ = ["MultiResolutionProvider", "RungView"]


class MultiResolutionProvider:
    """Serve range queries at every rung of a geometric θr ladder.

    ``anchor_theta`` is rung 0 (by convention the first snapped query's
    θr); ``factor`` is the geometric step between rungs, validated by
    the same rule as SGS coarsening (at least 2). Rungs are reference
    counted by :meth:`acquire` / :meth:`release`; the gather index is
    (re)built whenever the top active rung changes — between batches,
    never inside one.
    """

    def __init__(
        self,
        anchor_theta: float,
        dimensions: int,
        factor: float = 2.0,
        refinement: Optional[str] = None,
    ):
        if anchor_theta <= 0:
            raise ValueError("anchor_theta must be positive")
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        if factor < 2:
            # Same contract as repro.core.multires.coarsen_sgs.
            raise ValueError("ladder factor must be at least 2")
        self.anchor_theta = float(anchor_theta)
        self.dimensions = int(dimensions)
        self.factor = float(factor)
        self.refinement = refinement
        #: Master coordinate rows: every live object, canonical kernels.
        self.store = CoordStore(self.dimensions, refinement=refinement)
        self._objects: Dict[int, StreamObject] = {}
        self._rung_refs: Dict[int, int] = {}
        self._gather: Optional[GridIndex] = None
        self._gather_level: Optional[int] = None
        self.stats: Dict[str, int] = {
            "range_query_batches": 0,
            "range_queries": 0,
            "gather_builds": 0,
        }

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def theta_at(self, level: int) -> float:
        """Radius of rung ``level`` (levels may be negative)."""
        return self.anchor_theta * self.factor ** level

    def snap_level(self, theta_range: float) -> Optional[int]:
        """The rung whose radius equals ``theta_range`` exactly, if any.

        Exact float equality, never tolerance: an approximate snap
        would silently change the neighbor sets a query observes.
        """
        theta = float(theta_range)
        if theta <= 0:
            raise ValueError("theta_range must be positive")
        guess = round(math.log(theta / self.anchor_theta, self.factor))
        for level in (guess - 1, guess, guess + 1):
            if self.theta_at(level) == theta:
                return level
        return None

    def acquire(self, level: int) -> "RungView":
        """Reference a rung (one registered query reading it); returns
        the rung's provider-protocol view."""
        level = int(level)
        self._rung_refs[level] = self._rung_refs.get(level, 0) + 1
        self._sync_gather()
        return RungView(self, level)

    def release(self, level: int) -> None:
        level = int(level)
        refs = self._rung_refs.get(level, 0)
        if refs <= 0:
            raise KeyError(f"rung {level} has no active references")
        if refs == 1:
            del self._rung_refs[level]
        else:
            self._rung_refs[level] = refs - 1
        self._sync_gather()

    @property
    def top_level(self) -> Optional[int]:
        """The coarsest active rung (the gather radius), if any."""
        return self._gather_level

    def active_rungs(self) -> Dict[int, int]:
        """``{level: reference count}`` of the currently acquired rungs."""
        return dict(self._rung_refs)

    def _sync_gather(self) -> None:
        top = max(self._rung_refs) if self._rung_refs else None
        if top == self._gather_level:
            return
        if top is None:
            self._gather = None
            self._gather_level = None
            return
        gather = GridIndex(
            self.theta_at(top), self.dimensions, refinement=self.refinement
        )
        for obj in self._objects.values():
            gather.insert(obj)
        self._gather = gather
        self._gather_level = top
        self.stats["gather_builds"] += 1

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def remove(self, obj: StreamObject) -> None:
        """Drop one object from the substrate (master store + gather)."""
        if self._objects.pop(obj.oid, None) is None:
            raise KeyError(f"object {obj.oid} not present in substrate")
        self.store.remove(obj.oid)
        if self._gather is not None:
            self._gather.remove(obj)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, oid: int) -> bool:
        return oid in self._objects

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def batch_neighborhoods(
        self, objects: Sequence[StreamObject]
    ) -> List[Tuple[List[StreamObject], List[float]]]:
        """Insert a window batch and answer it with **one** batched pass.

        Returns, per probe object in order, its candidate neighbors
        within the *top* rung radius as parallel ``(neighbors,
        squared distances)`` lists **sorted ascending by distance** —
        distances from the canonical kernels, so a consumer cutting the
        prefix at ``sqdist <= θ²`` for any finer rung θ (a single
        bisect) observes exactly what a dedicated θ index would return.
        Candidate lists include earlier batch-mates *and* later ones
        (the whole batch is inserted first); per-query intra-batch
        crediting is the scheduler's job, as in
        :func:`~repro.index.provider.batched_neighborhoods`.
        """
        if self._gather is None:
            raise ValueError(
                "no active rung: acquire one before feeding the substrate"
            )
        objects = list(objects)
        for obj in objects:
            # Store first: it validates (duplicate oid, dimensionality)
            # and raises before gather membership is touched.
            self.store.add(obj)
            self._gather.insert(obj)
            self._objects[obj.oid] = obj
        neighbor_lists = self._gather.range_query_many(
            [(obj.coords, obj.oid) for obj in objects]
        )
        self.stats["range_query_batches"] += 1
        self.stats["range_queries"] += len(objects)
        out: List[Tuple[List[StreamObject], List[float]]] = []
        for obj, neighbors in zip(objects, neighbor_lists):
            if not neighbors:
                out.append(([], []))
                continue
            sq_dists = self.store.sq_dists_to(
                obj.coords, [nb.oid for nb in neighbors]
            )
            # Sort once here so every rung's radius cut is a bisect
            # over the prefix instead of a scan of the full top-rung
            # candidate list (sort by index: distance ties must not
            # fall through to comparing StreamObjects).
            if _np is not None and len(sq_dists) > 16:
                order = _np.argsort(
                    _np.asarray(sq_dists), kind="stable"
                ).tolist()
            else:
                order = sorted(
                    range(len(sq_dists)), key=sq_dists.__getitem__
                )
            out.append(
                (
                    [neighbors[i] for i in order],
                    [sq_dists[i] for i in order],
                )
            )
        return out

    def range_query_at(
        self, coords: Sequence[float], level: int, exclude_oid: int = -1
    ) -> List[StreamObject]:
        """One range query at a rung's radius, served from the shared
        gather: top-rung candidates filtered by the rung's exact θ²."""
        if self._gather is None:
            raise ValueError(
                "no active rung: acquire one before querying the substrate"
            )
        if level > self._gather_level:
            raise ValueError(
                f"rung {level} is above the top active rung "
                f"{self._gather_level}"
            )
        candidates = self._gather.range_query(coords, exclude_oid=exclude_oid)
        if not candidates or level == self._gather_level:
            return candidates
        theta = self.theta_at(level)
        sq_range = theta * theta
        sq_dists = self.store.sq_dists_to(
            coords, [obj.oid for obj in candidates]
        )
        return [
            obj
            for obj, sq in zip(candidates, sq_dists)
            if sq <= sq_range
        ]

    # ------------------------------------------------------------------
    # Hierarchy accounting
    # ------------------------------------------------------------------

    def nesting_of(self, cells: Iterable[Tuple[int, ...]], level: int) -> int:
        """How many distinct *top-rung* cells a rung's occupied cells
        fold into, via the multi-resolution nesting relation.

        A diagnostic of the sharing structure (``repro multiplex``
        prints it): few parents per many fine cells means the rung's
        queries ride densely inside the shared gather cells. Cell
        *addressing* for correctness always uses each rung's own
        :class:`~repro.index.grid_index.CellMap`; this accounting uses
        the integer nesting relation, which is what it is for.
        """
        if self._gather_level is None:
            return 0
        span = int(round(self.factor ** (self._gather_level - level)))
        if span <= 1:
            return len(set(cells))
        return len({parent_coord(coord, span) for coord in cells})


class RungView:
    """A rung's read view of the shared substrate, shaped like a
    :class:`~repro.index.provider.NeighborProvider` for consumers that
    expect one (member pipelines hold it; mutation stays with the
    provider's owner — the slide scheduler)."""

    def __init__(self, provider: MultiResolutionProvider, level: int):
        self.provider = provider
        self.level = int(level)
        self.theta_range = provider.theta_at(level)
        self.dimensions = provider.dimensions

    def range_query(
        self, coords: Sequence[float], exclude_oid: int = -1
    ) -> List[StreamObject]:
        return self.provider.range_query_at(
            coords, self.level, exclude_oid=exclude_oid
        )

    def range_query_many(self, queries) -> List[List[StreamObject]]:
        return [
            self.range_query(coords, exclude_oid=exclude_oid)
            for coords, exclude_oid in queries
        ]

    def __len__(self) -> int:
        return len(self.provider)

    def __repr__(self) -> str:
        return (
            f"RungView(level={self.level}, theta_range={self.theta_range})"
        )
