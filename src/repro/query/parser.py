"""Parser for the paper's declarative query templates (Figures 2 and 3).

Continuous clustering queries::

    DETECT DensityBasedClusters f+s FROM stream
    USING theta_range = 0.1 AND theta_cnt = 8
    IN Windows WITH win = 10000 AND slide = 1000

    -- time-based windows use duration suffixes:
    ... IN Windows WITH win = 60s AND slide = 10s

Cluster matching queries::

    GIVEN DensityBasedClusters C1
    SELECT DensityBasedClusters FROM History
    WHERE Distance <= 0.25
    [USING position_sensitive]
    [WEIGHT volume = 0.1 AND core_count = 0.2
        AND avg_density = 0.4 AND avg_connectivity = 0.3]
    [TOP 5]
    [MATCH WITH level = 1 AND windows = 3..9]

The ``MATCH WITH`` clause carries retrieval-engine execution options:
``level`` is the multi-resolution coarse entry level of the
coarse-to-fine refiner, ``windows = lo..hi`` restricts matching to an
inclusive span of archived window indices.

The grammar is whitespace- and case-insensitive on keywords. Parsing
produces the same dataclasses the programmatic API uses
(:class:`~repro.config.ContinuousClusteringQuery` /
:class:`~repro.config.ClusterMatchingQuery`), so the textual form is a
thin veneer, not a second code path.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Union

from repro.config import ClusterMatchingQuery, ContinuousClusteringQuery
from repro.matching.metric import DistanceMetricSpec


class QueryParseError(ValueError):
    """Raised when query text does not match the supported templates."""


_DETECT = re.compile(
    r"""
    ^DETECT\s+DensityBasedClusters(?:\s*(?P<repr>f\+s|f|s))?\s+
    FROM\s+(?P<stream>\w+)\s+
    USING\s+theta_?range\s*=\s*(?P<range>[\d.eE+-]+)\s+
    AND\s+theta_?(?:cnt|count)\s*=\s*(?P<count>\d+)\s+
    IN\s+WINDOWS?\s+WITH\s+
    win\s*=\s*(?P<win>[\d.]+)(?P<winunit>s|ms|m)?\s+
    AND\s+slide\s*=\s*(?P<slide>[\d.]+)(?P<slideunit>s|ms|m)?
    \s*(?:;\s*)?$
    """,
    re.IGNORECASE | re.VERBOSE,
)

_MATCH = re.compile(
    r"""
    ^GIVEN\s+DensityBasedClusters?\s+(?P<given>\w+)\s+
    SELECT\s+DensityBasedClusters?\s*(?:\w+\s+)?FROM\s+History\s+
    WHERE\s+Distance(?:\s*\([^)]*\))?\s*<=\s*(?P<threshold>[\d.eE+-]+)
    (?:\s+USING\s+(?P<ps>position_?sensitive))?
    (?:\s+WEIGHT\s+(?P<weights>.+?))?
    (?:\s+TOP\s+(?P<topk>\d+))?
    (?:\s+MATCH\s+WITH\s+(?P<matchopts>.+?))?
    \s*(?:;\s*)?$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_WEIGHT_TERM = re.compile(
    r"(?P<name>\w+)\s*=\s*(?P<value>[\d.eE+-]+)", re.IGNORECASE
)

_MATCH_LEVEL = re.compile(
    r"(?:coarse_?)?level\s*=\s*(?P<level>\d+)", re.IGNORECASE
)
_MATCH_WINDOWS = re.compile(
    r"windows?\s*=\s*(?P<lo>\d+)\s*\.\.\s*(?P<hi>\d+)", re.IGNORECASE
)

_UNIT_SECONDS = {"s": 1.0, "ms": 1e-3, "m": 60.0}


def _normalize(text: str) -> str:
    return re.sub(r"\s+", " ", text.strip())


def _parse_weights(text: str) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    for term in _WEIGHT_TERM.finditer(text):
        weights[term.group("name").lower()] = float(term.group("value"))
    if not weights:
        raise QueryParseError(f"cannot parse WEIGHT clause: {text!r}")
    return weights


def _parse_match_options(text: Optional[str]):
    """``MATCH WITH level = n AND windows = lo..hi`` — retrieval-engine
    execution options (both terms optional, in either order). Every
    AND-separated term must fully match a known option, so typo'd
    names (``sublevel``, ``rewindows``) are rejected, not absorbed."""
    coarse_level = 0
    window_range = None
    if not text:
        return coarse_level, window_range
    terms = [
        term.strip()
        for term in re.split(r"\s+AND\s+", text, flags=re.IGNORECASE)
        if term.strip()
    ]
    for term in terms:
        level = _MATCH_LEVEL.fullmatch(term)
        if level:
            coarse_level = int(level.group("level"))
            continue
        windows = _MATCH_WINDOWS.fullmatch(term)
        if windows:
            window_range = (
                int(windows.group("lo")), int(windows.group("hi"))
            )
            continue
        raise QueryParseError(
            f"cannot parse MATCH WITH term: {term!r} "
            "(expected level = n or windows = lo..hi)"
        )
    return coarse_level, window_range


def parse_query(
    text: str, dimensions: Optional[int] = None
) -> Union[ContinuousClusteringQuery, ClusterMatchingQuery]:
    """Parse one query; returns the matching spec dataclass.

    ``dimensions`` is required for DETECT queries (the textual template
    does not carry the stream's dimensionality).
    """
    normalized = _normalize(text)
    detect = _DETECT.match(normalized)
    if detect:
        if dimensions is None:
            raise QueryParseError(
                "DETECT queries need the stream dimensionality "
                "(pass dimensions=...)"
            )
        win_unit = detect.group("winunit")
        slide_unit = detect.group("slideunit")
        if bool(win_unit) != bool(slide_unit):
            raise QueryParseError(
                "win and slide must both be counts or both be durations"
            )
        theta_range = float(detect.group("range"))
        theta_count = int(detect.group("count"))
        if win_unit:
            win = float(detect.group("win")) * _UNIT_SECONDS[win_unit.lower()]
            slide = float(detect.group("slide")) * _UNIT_SECONDS[
                slide_unit.lower()
            ]
            return ContinuousClusteringQuery.time_based(
                theta_range, theta_count, dimensions, win, slide
            )
        win_value = detect.group("win")
        slide_value = detect.group("slide")
        if "." in win_value or "." in slide_value:
            raise QueryParseError(
                "count-based win/slide must be integers (add a duration "
                "suffix like 's' for time-based windows)"
            )
        return ContinuousClusteringQuery.count_based(
            theta_range, theta_count, dimensions, int(win_value),
            int(slide_value),
        )

    match = _MATCH.match(normalized)
    if match:
        weights_text = match.group("weights")
        if weights_text:
            metric = DistanceMetricSpec(
                position_sensitive=bool(match.group("ps")),
                weights=_parse_weights(weights_text),
            )
        else:
            metric = DistanceMetricSpec(
                position_sensitive=bool(match.group("ps"))
            )
        top_k = match.group("topk")
        coarse_level, window_range = _parse_match_options(
            match.group("matchopts")
        )
        return ClusterMatchingQuery(
            sim_threshold=float(match.group("threshold")),
            metric=metric,
            top_k=int(top_k) if top_k else None,
            coarse_level=coarse_level,
            window_range=window_range,
        )

    raise QueryParseError(
        f"query does not match the DETECT or GIVEN/SELECT templates: "
        f"{normalized[:80]!r}"
    )
