"""Textual query front-end for the paper's query templates."""

from repro.query.parser import QueryParseError, parse_query

__all__ = ["QueryParseError", "parse_query"]
