"""Matching-query retrieval over the archived Stream History.

The Pattern Base stores summarized clusters behind two feature indices
(Section 7.1); this package turns it into a servable workload:

* :mod:`repro.retrieval.queries` — the query model
  (:class:`~repro.retrieval.queries.MatchQuery`: threshold / top-k,
  metric spec, window-range and feature constraints, coarse entry
  level);
* :mod:`repro.retrieval.planner` — per-query entry-index selection
  (R-tree / feature grid / full scan) with a provider-style stats
  report;
* :mod:`repro.retrieval.engine` — the coarse-to-fine refiner
  (:class:`~repro.retrieval.engine.MatchEngine`) with a cached
  multi-resolution ladder and batched ``match_many`` serving;
* :mod:`repro.retrieval.inverted` — the persistent inverted
  cell-signature index (posting lists over canonical-origin coarse
  cells) that replaces the per-pattern ladder walk on the coarse
  screening hot path;
* :mod:`repro.retrieval.shards` — partition-parallel serving
  (:class:`~repro.retrieval.shards.ShardedPatternBase` /
  :class:`~repro.retrieval.shards.ShardedMatchEngine`): plan per
  shard, fan ``match_many`` out across shards, merge
  deterministically.

``repro.archive.analyzer.PatternAnalyzer`` is a thin façade over this
package; new callers should use :class:`MatchEngine` directly.
"""

from repro.retrieval.engine import EngineStats, MatchEngine, MatchResult
from repro.retrieval.inverted import InvertedCellIndex
from repro.retrieval.planner import (
    ENTRY_FEATURE_GRID,
    ENTRY_INVERTED,
    ENTRY_RTREE,
    ENTRY_SCAN,
    SCAN_CUTOFF,
    plan_query,
)
from repro.retrieval.queries import MatchQuery
from repro.retrieval.shards import (
    PARTITION_KEYS,
    ShardedMatchEngine,
    ShardedPatternBase,
)

__all__ = [
    "ENTRY_FEATURE_GRID",
    "ENTRY_INVERTED",
    "ENTRY_RTREE",
    "ENTRY_SCAN",
    "EngineStats",
    "InvertedCellIndex",
    "MatchEngine",
    "MatchQuery",
    "MatchResult",
    "PARTITION_KEYS",
    "SCAN_CUTOFF",
    "ShardedMatchEngine",
    "ShardedPatternBase",
    "plan_query",
]
