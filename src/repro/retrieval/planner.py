"""Query planning: pick the entry index for one matching query.

The Pattern Base maintains two feature indices (Section 7.1): the R-tree
over cluster MBRs and the non-locational feature grid. The planner picks
the entry point per query and reports its choice in a stats dict, the
way the neighbor-search providers report gathering telemetry:

* ``rtree`` — position-sensitive queries probe the locational index
  with the query MBR (non-overlapping clusters are maximally distant,
  so candidates outside it cannot match);
* ``feature-grid`` — position-insensitive queries range-probe the
  feature grid with the threshold-derived candidate ranges
  (Section 7.2), intersected with any explicit feature constraints;
* ``inverted`` — position-insensitive queries with a coarse entry
  level served by the base's inverted cell-signature index
  (:mod:`repro.retrieval.inverted`) enter through its posting lists
  when the candidate feature ranges have no filtering power: the
  certified coarse screen replaces the full archive walk, returning
  only its survivors;
* ``scan`` — the fallback when no index probe can beat a plain
  walk: a tiny archive, or candidate ranges so wide they cover every
  occupied feature bin (no filtering power) with no inverted index to
  fall back on.

Gathering is separated from screening so batched serving can share one
gather across a batch: :func:`gather` hits the index once,
:func:`screen` applies one query's exact constraints to any candidate
superset — applying it to the shared pool yields byte-identical results
to a per-query gather.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.features import FEATURE_NAMES, ClusterFeatures
from repro.geometry.mbr import MBR
from repro.matching.metric import feature_search_ranges
from repro.retrieval.queries import MatchQuery

#: Archives at or below this size skip index probes entirely: walking a
#: handful of patterns is cheaper than a 4-D bin enumeration.
SCAN_CUTOFF = 8

ENTRY_RTREE = "rtree"
ENTRY_FEATURE_GRID = "feature-grid"
ENTRY_INVERTED = "inverted"
ENTRY_SCAN = "scan"


class QueryPlan:
    """A resolved entry choice for one query (or a shared batch)."""

    __slots__ = ("entry", "lows", "highs", "mbr")

    def __init__(
        self,
        entry: str,
        lows: Optional[List[float]] = None,
        highs: Optional[List[float]] = None,
        mbr: Optional[MBR] = None,
    ):
        self.entry = entry
        self.lows = lows
        self.highs = highs
        self.mbr = mbr


def constraint_bounds(
    query: MatchQuery, features: ClusterFeatures
) -> Tuple[List[float], List[float]]:
    """Threshold-derived candidate ranges intersected with the query's
    explicit feature constraints, in :data:`FEATURE_NAMES` order."""
    lows, highs = feature_search_ranges(
        features, query.metric, query.threshold
    )
    if query.feature_ranges:
        for d, name in enumerate(FEATURE_NAMES):
            explicit = query.feature_ranges.get(name)
            if explicit is None:
                continue
            lows[d] = max(lows[d], explicit[0])
            highs[d] = min(highs[d], explicit[1])
    return lows, highs


def plan_query(
    base: PatternBase,
    query: MatchQuery,
    features: ClusterFeatures,
    mbr: MBR,
    inverted: bool = False,
) -> QueryPlan:
    """Choose the entry index for one query against one archive.

    ``inverted`` declares that the caller can serve this query through
    the base's inverted cell-signature index (the engine checks
    coverage, mode, and rung geometry before offering it); the planner
    then prefers it over a filtering-power-less scan.
    """
    if query.metric.position_sensitive:
        return QueryPlan(ENTRY_RTREE, mbr=mbr)
    lows, highs = constraint_bounds(query, features)
    if len(base) <= SCAN_CUTOFF:
        return QueryPlan(ENTRY_SCAN, lows=lows, highs=highs)
    if base.feature_index().covers_occupied_extent(lows, highs):
        if inverted:
            return QueryPlan(ENTRY_INVERTED, lows=lows, highs=highs)
        return QueryPlan(ENTRY_SCAN, lows=lows, highs=highs)
    return QueryPlan(ENTRY_FEATURE_GRID, lows=lows, highs=highs)


def gather(base: PatternBase, plan: QueryPlan) -> List[ArchivedPattern]:
    """Execute a plan's index probe; returns the candidate superset.

    The ``inverted`` entry is executed by the engine itself (its screen
    holds the per-query posting counters); asked here, it degrades to
    the full walk the screen would otherwise replace.
    """
    if plan.entry == ENTRY_RTREE:
        return base.overlapping(plan.mbr)
    if plan.entry == ENTRY_FEATURE_GRID:
        return base.in_feature_ranges(plan.lows, plan.highs)
    return list(base.all_patterns())


def screen(
    candidates: Sequence[ArchivedPattern],
    query: MatchQuery,
    mbr: MBR,
    lows: Optional[Sequence[float]] = None,
    highs: Optional[Sequence[float]] = None,
) -> List[ArchivedPattern]:
    """Apply one query's exact gather-equivalent constraints to a
    candidate superset (shared batch gathers pass a union pool here).

    Position-sensitive queries re-check MBR intersection; position-
    insensitive queries re-check the candidate feature ranges — both are
    exactly the predicates the per-query index probe evaluates, so the
    output is identical to gathering for this query alone. The window
    constraint (which no index covers) is applied for both modes.
    """
    result: List[ArchivedPattern] = []
    position_sensitive = query.metric.position_sensitive
    for pattern in candidates:
        if not query.admits_window(pattern.window_index):
            continue
        if position_sensitive:
            if not pattern.mbr.intersects(mbr):
                continue
            if not query.admits_features(pattern.features):
                continue
        else:
            values = pattern.features.as_tuple()
            if any(
                value < low or value > high
                for value, low, high in zip(values, lows, highs)
            ):
                continue
        result.append(pattern)
    return result


def plan_stats(
    plan: QueryPlan, archive_size: int, gathered: int, shared: bool = False
) -> Dict[str, object]:
    """The planner's report, shaped like the index providers' stats."""
    return {
        "entry": plan.entry,
        "archive": archive_size,
        "gathered": gathered,
        "shared_gather": shared,
    }
