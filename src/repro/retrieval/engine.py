"""The coarse-to-fine matching engine over the Pattern Base.

Execution of one :class:`~repro.retrieval.queries.MatchQuery` is a
filter-and-refine ladder, cheapest predicate first:

1. **Plan + gather** — :mod:`repro.retrieval.planner` picks the entry
   index (R-tree / feature grid / scan) and gathers candidates.
2. **Screen** — exact window-range and feature-constraint predicates.
3. **Cluster-feature filter** — the cheap cluster-level distance on the
   four SGS features (plus the locational term when position
   sensitive); candidates already beyond the threshold stop here. This
   is the paper's "only ~6% need the grid-level match" filter.
4. **Coarse entry** (optional, ``coarse_level > 0``) — cell-level match
   at a coarser rung of the multi-resolution ladder (Section 6.1),
   built lazily per pattern and cached across queries; candidates whose
   coarse distance exceeds ``threshold + coarse_margin`` are rejected
   without ever touching their full stored cells. Position-insensitive
   screening coarsens *canonicalized* forms (:func:`canonical_origin`)
   so that translated near-duplicates coarsen in phase. The margin keeps the
   screen conservative — coarsening smooths cell structure, so a
   coarse distance is an estimate, not a bound; the margin absorbs
   that estimation error (the oracle equivalence suite pins that the
   default margin drops nothing on seeded archives; ``margin >= 1``
   makes the screen vacuous and hence exact by construction). The
   screen also stands down for candidates whose coarse form shrinks
   below ``min_coarse_cells`` — a 1–4 cell summary estimates too
   noisily to reject on, and refines for pennies.
5. **Refine** — the expensive stored-resolution cell-level match
   (:mod:`repro.matching.cell_match`, through the anytime alignment
   search when position-insensitive); survivors within the threshold
   are returned closest-first.

When the Pattern Base carries an inverted cell-signature index
(:mod:`repro.retrieval.inverted`) covering the query's coarse level,
step 4 runs against precomputed posting lists and signatures instead of
the lazily built per-pattern ladder: one posting-list accumulation per
query, then an O(1)-to-O(histogram) certified bound per candidate —
zero ladder walks on the hot path, and provably never rejecting a
candidate the ladder screen would keep. The planner may additionally
pick the index as the *entry* (``inverted``) when the feature ranges
have no filtering power, replacing the full archive scan with the
screen's survivor set.

:meth:`MatchEngine.match_many` serves a batch of queries through one
shared candidate gather per entry index (the union box / union MBR),
then screens the shared pool per query — identical results to
query-at-a-time execution, with the index probed once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.features import ClusterFeatures
from repro.core.multires import coarsen_sgs
from repro.core.sgs import SGS
from repro.geometry.mbr import MBR
from repro.matching.alignment import anytime_alignment_search
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import DistanceMetricSpec, cluster_feature_distance
from repro.retrieval import planner
from repro.retrieval.inverted import InvertedScreen, canonical_origin
from repro.retrieval.queries import MatchQuery

__all__ = [
    "DEFAULT_COARSE_MARGIN",
    "DEFAULT_LADDER_FACTOR",
    "EngineStats",
    "MatchEngine",
    "MatchResult",
    "MIN_COARSE_CELLS",
    "canonical_origin",
]

#: Default compression rate θ of the engine's resolution ladder (the
#: multires default; see :func:`repro.core.multires.coarsen_sgs`).
DEFAULT_LADDER_FACTOR = 3

#: Default slack added to the threshold at the coarse entry level.
#: Calibration: with canonical-phase coarsening and the
#: ``min_coarse_cells`` guard, the worst observed coarse-over-fine
#: error across the pinned workloads is ~0.11 (guard-skipped pairs can
#: err far worse, which is why the guard exists); the margin sits at
#: ~2x that. The oracle equivalence suite and the benchmark gate pin
#: that nothing is dropped at this setting.
DEFAULT_COARSE_MARGIN = 0.25

#: Below this many cells a coarse SGS carries too little structure for
#: a trustworthy distance estimate (a 1–4 cell summary mismatching a
#: neighbor can read near 1.0 against a true distance of 0.4), and is
#: cheap to refine directly anyway: the coarse screen skips it.
MIN_COARSE_CELLS = 6


@dataclass(frozen=True)
class MatchResult:
    """One matched pattern with its refined distance."""

    pattern: ArchivedPattern
    distance: float
    alignment: tuple


def compose_query(
    engine,
    sgs: SGS,
    threshold: float,
    top_k: Optional[int] = None,
    spec: Optional[DistanceMetricSpec] = None,
    coarse_level: Optional[int] = None,
    window_range: Optional[Tuple[int, int]] = None,
) -> MatchQuery:
    """Build a :class:`MatchQuery` from parts, filling the metric and
    coarse entry level from an engine's defaults (shared by the plain
    and sharded engines' ``match_sgs`` wrappers)."""
    return MatchQuery(
        sgs=sgs,
        threshold=threshold,
        top_k=top_k,
        metric=spec if spec is not None else engine.spec,
        window_range=window_range,
        coarse_level=(
            engine.coarse_level if coarse_level is None else coarse_level
        ),
    )


@dataclass
class EngineStats:
    """Per-query execution accounting, phase by phase."""

    archive_size: int = 0
    #: The planner's report: entry index, candidates gathered, whether
    #: the gather was shared across a batch.
    plan: Dict[str, object] = field(default_factory=dict)
    screened: int = 0
    feature_filtered: int = 0
    coarse_evaluated: int = 0
    coarse_rejected: int = 0
    #: Candidates the inverted screen accepted straight off the posting
    #: counters, without touching their signature histograms.
    coarse_fast_accepted: int = 0
    #: Which coarse screen ran: "ladder", "inverted", or "" (no coarse
    #: entry for this query).
    coarse_screen: str = ""
    refined: int = 0
    matches: int = 0

    @property
    def entry(self) -> str:
        return str(self.plan.get("entry", ""))

    @property
    def gathered(self) -> int:
        return int(self.plan.get("gathered", 0))

    @property
    def refine_fraction(self) -> float:
        """Fraction of archived clusters that needed the stored-level
        cell match."""
        if self.archive_size == 0:
            return 0.0
        return self.refined / self.archive_size

    def as_dict(self) -> Dict[str, object]:
        return {
            "archive": self.archive_size,
            **self.plan,
            "screened": self.screened,
            "feature_filtered": self.feature_filtered,
            "coarse_evaluated": self.coarse_evaluated,
            "coarse_rejected": self.coarse_rejected,
            "coarse_fast_accepted": self.coarse_fast_accepted,
            "coarse_screen": self.coarse_screen,
            "refined": self.refined,
            "matches": self.matches,
        }


class MatchEngine:
    """Filter-and-refine retrieval over one Pattern Base.

    ``coarse_level`` / ``coarse_margin`` set the default multi-
    resolution entry (a query's own ``coarse_level`` wins when set);
    ``max_alignment_expansions`` budgets the anytime alignment search at
    the stored level, ``coarse_expansions`` at coarse rungs (coarse
    SGS are small, so a reduced budget suffices). Per-pattern ladders
    are built lazily and cached across queries; each build is recorded
    in the pattern's ``ladder_hint`` so a persisted archive (format v2)
    can re-warm the cache after reload via :meth:`warm_ladders`.
    """

    def __init__(
        self,
        base: PatternBase,
        spec: Optional[DistanceMetricSpec] = None,
        max_alignment_expansions: int = 32,
        coarse_level: int = 0,
        coarse_margin: float = DEFAULT_COARSE_MARGIN,
        ladder_factor: int = DEFAULT_LADDER_FACTOR,
        min_coarse_cells: int = MIN_COARSE_CELLS,
        use_inverted: bool = True,
    ):
        if max_alignment_expansions < 1:
            raise ValueError("max_alignment_expansions must be positive")
        if coarse_level < 0:
            raise ValueError("coarse_level must be non-negative")
        if coarse_margin < 0:
            raise ValueError("coarse_margin must be non-negative")
        if ladder_factor < 2:
            raise ValueError("ladder_factor must be at least 2")
        self.base = base
        self.spec = spec if spec is not None else DistanceMetricSpec()
        self.max_alignment_expansions = int(max_alignment_expansions)
        self.coarse_level = int(coarse_level)
        self.coarse_margin = float(coarse_margin)
        self.ladder_factor = int(ladder_factor)
        self.min_coarse_cells = int(min_coarse_cells)
        #: When False the engine ignores any inverted cell-signature
        #: index on the base and always screens through the lazy
        #: ladder — the A/B escape hatch the benchmarks compare.
        self.use_inverted = bool(use_inverted)
        self.coarse_expansions = max(8, self.max_alignment_expansions // 2)
        #: Ladder cache keyed ``(pattern_id, canonical)``: position-
        #: insensitive screens use the canonical-origin phase (see
        #: :func:`canonical_origin`), position-sensitive ones the raw
        #: absolute phase. Values are ``(source_sgs, [level0, ...])``;
        #: the source reference detects a swapped-out stored SGS.
        self._ladders: Dict[Tuple[int, bool], Tuple[SGS, List[SGS]]] = {}
        # Eviction and compaction flow back through the base's removal
        # listeners: the engine drops the dead pattern's cached ladders
        # the moment it leaves the archive (weakly held — neither side
        # pins the other).
        subscribe = getattr(base, "subscribe", None)
        if subscribe is not None:
            subscribe(self)

    def pattern_removed(self, pattern_id: int) -> None:
        """Base removal-listener hook: invalidate the pattern's cached
        ladders so eviction can never resurrect it from the cache."""
        self.invalidate(pattern_id)

    # ------------------------------------------------------------------
    # Multi-resolution ladder cache
    # ------------------------------------------------------------------

    def pattern_at_level(
        self, pattern: ArchivedPattern, level: int, canonical: bool = True
    ) -> SGS:
        """The pattern's SGS ``level`` coarsening steps above its stored
        representation (level 0 = the stored SGS itself, canonicalized
        to the origin when ``canonical``)."""
        key = (pattern.pattern_id, canonical)
        cached = self._ladders.get(key)
        if cached is None or cached[0] is not pattern.sgs:
            root = canonical_origin(pattern.sgs) if canonical else pattern.sgs
            cached = (pattern.sgs, [root])
            self._ladders[key] = cached
        ladder = cached[1]
        while len(ladder) <= level:
            ladder.append(coarsen_sgs(ladder[-1], self.ladder_factor))
        built = len(ladder) - 1
        if pattern.ladder_hint < built:
            pattern.ladder_hint = built
        return ladder[level]

    def warm_ladders(self) -> int:
        """Rebuild each pattern's cached ladder up to its persisted
        ``ladder_hint`` (in the engine default spec's phase); returns
        the number of levels materialized."""
        canonical = not self.spec.position_sensitive
        built = 0
        for pattern in self.base.all_patterns():
            if pattern.ladder_hint > 0:
                self.pattern_at_level(
                    pattern, pattern.ladder_hint, canonical=canonical
                )
                built += pattern.ladder_hint
        return built

    def invalidate(self, pattern_id: Optional[int] = None) -> None:
        """Drop cached ladders (for one pattern, or all of them)."""
        if pattern_id is None:
            self._ladders.clear()
        else:
            for canonical in (False, True):
                self._ladders.pop((pattern_id, canonical), None)

    def cached_ladder_levels(self) -> int:
        """Total coarser levels currently materialized (telemetry)."""
        return sum(
            len(ladder) - 1 for _, ladder in self._ladders.values()
        )

    def close(self) -> None:
        """Release owned resources — nothing for the in-process engine;
        present so a single-shard engine and the sharded facade (whose
        executors hold thread pools or worker processes) share one
        lifecycle surface."""

    def __enter__(self) -> "MatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _maybe_prune_ladders(self) -> None:
        """Drop ladders of patterns evicted from the base.

        Removal paths (budget eviction, retention sweeps) do not know
        about engines, so a long-lived engine over a churning archive
        would otherwise pin every dead pattern's ladder forever. The
        sweep is amortized: it only runs once the cache outgrows twice
        the live archive (both phases counted)."""
        if len(self._ladders) <= 2 * max(16, len(self.base)):
            return
        self._ladders = {
            key: value
            for key, value in self._ladders.items()
            if key[0] in self.base
        }

    # ------------------------------------------------------------------
    # Single-query serving
    # ------------------------------------------------------------------

    def _inverted_screen_for(
        self, query: MatchQuery
    ) -> Optional[InvertedScreen]:
        """The certified posting-list screen for one query, when the
        base's inverted index covers its coarse level (position-
        insensitive only: the canonical-origin keys normalize exactly
        the translations that mode ignores)."""
        if (
            not self.use_inverted
            or query.coarse_level <= 0
            or query.metric.position_sensitive
        ):
            return None
        index_of = getattr(self.base, "inverted_index", None)
        index = index_of() if index_of is not None else None
        if index is None or not index.covers(query.coarse_level):
            return None
        if index.factor != self.ladder_factor:
            # A mismatched compression rate describes different coarse
            # cells than the ladder would: stand down rather than screen
            # against the wrong rung geometry.
            return None
        return InvertedScreen(
            index,
            query.coarse_level,
            query.sgs,
            query.threshold + self.coarse_margin,
            self.min_coarse_cells,
        )

    def match(
        self, query: MatchQuery
    ) -> Tuple[List[MatchResult], EngineStats]:
        """Execute one matching query; returns (results, stats) with
        results sorted by (distance, pattern_id) and cut to ``top_k``."""
        self._maybe_prune_ladders()
        features = ClusterFeatures.from_sgs(query.sgs)
        mbr = query.sgs.mbr()
        screen = self._inverted_screen_for(query)
        plan = planner.plan_query(
            self.base, query, features, mbr, inverted=screen is not None
        )
        if plan.entry == planner.ENTRY_INVERTED:
            candidates = screen.survivors(self.base)
        else:
            candidates = planner.gather(self.base, plan)
        stats = EngineStats(
            archive_size=len(self.base),
            plan=planner.plan_stats(plan, len(self.base), len(candidates)),
        )
        results = self._refine(
            query, features, mbr, candidates, plan, stats, screen
        )
        return results, stats

    def match_sgs(
        self,
        sgs: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
        coarse_level: Optional[int] = None,
        window_range: Optional[Tuple[int, int]] = None,
    ) -> Tuple[List[MatchResult], EngineStats]:
        """Convenience wrapper: build the :class:`MatchQuery` from parts
        (engine defaults fill the metric and coarse level)."""
        return self.match(
            compose_query(
                self, sgs, threshold, top_k, spec, coarse_level,
                window_range,
            )
        )

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------

    def match_many(
        self, queries: Sequence[MatchQuery]
    ) -> List[Tuple[List[MatchResult], EngineStats]]:
        """Serve a batch of queries, amortizing candidate gathering.

        Queries are grouped by entry index; each group probes its index
        *once* with the union of the group's search boxes (union MBR
        for the R-tree, per-dimension union ranges for the feature
        grid) and every member screens the shared pool with its own
        exact predicates — the same predicates its solo index probe
        would have applied, so results are identical to calling
        :meth:`match` per query. Scan-entry queries share the single
        archive walk.
        """
        self._maybe_prune_ladders()
        prepared = []
        for query in queries:
            features = ClusterFeatures.from_sgs(query.sgs)
            mbr = query.sgs.mbr()
            screen = self._inverted_screen_for(query)
            plan = planner.plan_query(
                self.base, query, features, mbr, inverted=screen is not None
            )
            prepared.append((query, features, mbr, plan, screen))

        groups: Dict[str, List[int]] = {}
        for i, entry_plan in enumerate(prepared):
            groups.setdefault(entry_plan[3].entry, []).append(i)

        pools: Dict[str, List[ArchivedPattern]] = {}
        for entry, members in groups.items():
            if entry == planner.ENTRY_RTREE:
                union_mbr = prepared[members[0]][2]
                for i in members[1:]:
                    union_mbr = union_mbr.union(prepared[i][2])
                pools[entry] = self.base.overlapping(union_mbr)
            elif entry == planner.ENTRY_FEATURE_GRID:
                lows = list(prepared[members[0]][3].lows)
                highs = list(prepared[members[0]][3].highs)
                for i in members[1:]:
                    plan = prepared[i][3]
                    lows = [min(a, b) for a, b in zip(lows, plan.lows)]
                    highs = [max(a, b) for a, b in zip(highs, plan.highs)]
                pools[entry] = self.base.in_feature_ranges(lows, highs)
            elif entry == planner.ENTRY_INVERTED:
                # Shared pool = union of the members' survivor sets;
                # each member's refine re-applies its own (memoized)
                # screen, so pooling never changes that query's answer.
                pooled: Dict[int, ArchivedPattern] = {}
                for i in members:
                    for pattern in prepared[i][4].survivors(self.base):
                        pooled[pattern.pattern_id] = pattern
                pools[entry] = [
                    pooled[pattern_id] for pattern_id in sorted(pooled)
                ]
            else:
                pools[entry] = list(self.base.all_patterns())

        out: List[Tuple[List[MatchResult], EngineStats]] = []
        shared = len(queries) > 1
        for query, features, mbr, plan, screen in prepared:
            pool = pools[plan.entry]
            stats = EngineStats(
                archive_size=len(self.base),
                plan=planner.plan_stats(
                    plan, len(self.base), len(pool), shared=shared
                ),
            )
            out.append(
                (
                    self._refine(
                        query, features, mbr, pool, plan, stats, screen
                    ),
                    stats,
                )
            )
        return out

    # ------------------------------------------------------------------
    # The coarse-to-fine refiner
    # ------------------------------------------------------------------

    def _query_ladder(
        self, sgs: SGS, level: int, canonical: bool
    ) -> List[SGS]:
        ladder = [canonical_origin(sgs) if canonical else sgs]
        while len(ladder) <= level:
            ladder.append(coarsen_sgs(ladder[-1], self.ladder_factor))
        return ladder

    def _cell_distance(
        self,
        query_sgs: SGS,
        pattern_sgs: SGS,
        spec: DistanceMetricSpec,
        expansions: int,
    ) -> Tuple[float, tuple]:
        if spec.position_sensitive:
            return (
                cell_level_distance(query_sgs, pattern_sgs, spec, None),
                (0,) * query_sgs.dimensions,
            )
        search = anytime_alignment_search(
            query_sgs, pattern_sgs, spec, max_expansions=expansions
        )
        return search.distance, search.alignment

    def _refine(
        self,
        query: MatchQuery,
        features: ClusterFeatures,
        mbr: MBR,
        candidates: Sequence[ArchivedPattern],
        plan: planner.QueryPlan,
        stats: EngineStats,
        screen: Optional[InvertedScreen] = None,
    ) -> List[MatchResult]:
        spec = query.metric
        threshold = query.threshold
        coarse_level = query.coarse_level
        screened = planner.screen(
            candidates, query, mbr, lows=plan.lows, highs=plan.highs
        )
        stats.screened = len(screened)
        canonical = not spec.position_sensitive
        use_ladder = coarse_level > 0 and screen is None
        if coarse_level > 0:
            stats.coarse_screen = "ladder" if use_ladder else "inverted"
        query_ladder = (
            self._query_ladder(query.sgs, coarse_level, canonical)
            if use_ladder
            else [query.sgs]
        )

        results: List[MatchResult] = []
        for pattern in screened:
            coarse = cluster_feature_distance(
                features, pattern.features, spec, mbr, pattern.mbr
            )
            if coarse > threshold:
                continue
            stats.feature_filtered += 1
            if screen is not None:
                if not screen.admits(pattern.pattern_id):
                    continue
            elif use_ladder:
                coarse_query = query_ladder[coarse_level]
                coarse_pattern = self.pattern_at_level(
                    pattern, coarse_level, canonical=canonical
                )
                if (
                    len(coarse_query) >= self.min_coarse_cells
                    and len(coarse_pattern) >= self.min_coarse_cells
                ):
                    stats.coarse_evaluated += 1
                    coarse_distance, _ = self._cell_distance(
                        coarse_query,
                        coarse_pattern,
                        spec,
                        self.coarse_expansions,
                    )
                    if coarse_distance > threshold + self.coarse_margin:
                        stats.coarse_rejected += 1
                        continue
            stats.refined += 1
            distance, alignment = self._cell_distance(
                query.sgs,
                pattern.sgs,
                spec,
                self.max_alignment_expansions,
            )
            if distance <= threshold:
                results.append(MatchResult(pattern, distance, alignment))

        if screen is not None:
            # The screen's counters cover its whole lifetime for this
            # query — gather-phase survivors and refine-phase rescreens
            # alike (verdicts are memoized, so nothing double-counts).
            stats.coarse_evaluated = screen.evaluated
            stats.coarse_rejected = screen.rejected
            stats.coarse_fast_accepted = screen.fast_accepted
        results.sort(key=lambda r: (r.distance, r.pattern.pattern_id))
        stats.matches = len(results)
        if query.top_k is not None:
            results = results[: query.top_k]
        return results
