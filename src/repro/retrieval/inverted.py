"""The persistent inverted cell-signature index over the Pattern Base.

The PR-4 coarse screen walks a per-pattern multi-resolution ladder: for
every feature-filtered candidate it materializes the pattern's coarse
SGS (lazily, cached) and runs an alignment search against the coarse
query. That is per-candidate work proportional to the pattern's cell
structure, paid on the query hot path. Classic IR practice says the
archive should instead carry a precomputed *inverted index*: posting
lists keyed by the terms of each document, intersected at query time.

Here a pattern's "terms" are its **canonical-origin coarse-cell
coordinates**: translate the stored SGS so its minimum corner sits at
the origin (:func:`canonical_origin` — pure translations then coarsen
in phase), then floor-divide every cell location by ``factor**level``.
The resulting cell set is exactly the cell set of the matching engine's
canonical ladder rung (iterated floor division equals division by the
product), computed without building any intermediate SGS. Signatures
are maintained incrementally as patterns enter and leave the base —
streaming re-warm during archival, not at first query — and persisted
with the archive (format v3), so a reloaded history serves its first
coarse query with zero ladder walks.

The screen itself is **certified conservative**. For two cell sets of
sizes ``a`` and ``b`` overlapping in ``m`` positions under some
alignment, the cell-level distance of :mod:`repro.matching.cell_match`
satisfies::

    distance >= (a + b - 2m) / (a + b - m)

(matched pairs contribute >= 0, every unmatched cell contributes
exactly 1, and the total is divided by ``a + b - m`` compared
positions). The bound is decreasing in ``m``, so any upper bound ``M``
on the overlap achievable under *any* alignment certifies a lower
bound on the distance under every alignment the anytime search could
ever return. Two overlap bounds are used, cheapest first:

* the posting-list counter ``m0`` (overlap at the canonical alignment,
  accumulated for all candidates in one pass over the query's posting
  lists) gives a *fast accept*: ``m0`` is achievable, so if the bound
  at ``m0`` is already within the threshold no upper bound can reject;
* the per-axis histogram cross-correlation: the overlap under a shift
  ``s`` is at most ``sum_v min(h_a[v], h_b[v + s_i])`` for every axis
  ``i`` (project the matched cells onto the axis), so
  ``M = min(a, b, min_i max_t corr_i(t))`` bounds every alignment.
  Histograms are tiny precomputed integer tuples in the signature.

A pattern is rejected only when the certified floor exceeds
``threshold + coarse_margin`` — therefore **every pattern the ladder
screen keeps, this screen keeps** (the ladder's anytime distance is at
least the true minimum, which is at least the floor), pinned by the
Hypothesis property suite. The ``min_coarse_cells`` stand-down of the
ladder screen is mirrored verbatim.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.sgs import SGS

Coord = Tuple[int, ...]

#: Default coarse rung(s) indexed: one level above the stored
#: representation (the matching engine's default coarse entry).
DEFAULT_INVERTED_LEVELS: Tuple[int, ...] = (1,)

#: Default compression rate θ between rungs — must match the matching
#: engine's ladder factor (:data:`repro.retrieval.engine
#: .DEFAULT_LADDER_FACTOR`) for the signatures to describe the same
#: coarse cells the ladder screen would materialize.
DEFAULT_INVERTED_FACTOR = 3


def canonical_origin(sgs: SGS) -> SGS:
    """Translate an SGS so its minimum cell corner sits at the origin.

    Coarsening is *phase-sensitive*: ``floor(c / θ)`` cuts the coarse
    grid at absolute positions, so two identical clusters translated
    relative to each other coarsen into structurally different cell
    sets (a fine shift of 1 cannot be expressed as any integer coarse
    shift). Position-insensitive coarse screening therefore coarsens
    the canonicalized form — pure translations then coarsen
    identically, and the coarse distance tracks the fine one.
    """
    dims = sgs.dimensions
    mins = [min(coord[i] for coord in sgs.cells) for i in range(dims)]
    if not any(mins):
        return sgs
    cells = []
    for cell in sgs.cells.values():
        location = tuple(c - m for c, m in zip(cell.location, mins))
        connections = frozenset(
            tuple(c - m for c, m in zip(conn, mins))
            for conn in cell.connections
        )
        cells.append(
            type(cell)(
                location,
                cell.side_length,
                cell.population,
                cell.status,
                connections,
            )
        )
    return SGS(
        cells,
        sgs.side_length,
        level=sgs.level,
        cluster_id=sgs.cluster_id,
        window_index=sgs.window_index,
    )


def canonical_cell_signature(
    sgs: SGS, level: int, factor: int
) -> FrozenSet[Coord]:
    """The canonical-origin coarse-cell set of ``sgs`` at a rung.

    Equals ``set(coarsen_sgs^level(canonical_origin(sgs)).cells)``
    without building any SGS: iterated floor division by ``factor``
    is floor division by ``factor**level`` for integers.
    """
    if level < 1:
        raise ValueError("signature level must be at least 1")
    dims = sgs.dimensions
    mins = [min(coord[i] for coord in sgs.cells) for i in range(dims)]
    scale = factor**level
    return frozenset(
        tuple((c - m) // scale for c, m in zip(coord, mins))
        for coord in sgs.cells
    )


def axis_histograms(
    cells: Iterable[Coord], dimensions: int
) -> Tuple[Tuple[int, ...], ...]:
    """Per-axis occupancy counts of a canonical cell set.

    Canonical cells are non-negative with a zero minimum per axis, so
    histogram index ``v`` counts the cells whose coordinate on that
    axis equals ``v``.
    """
    cells = list(cells)
    if not cells:
        return tuple(() for _ in range(dimensions))
    histograms = []
    for axis in range(dimensions):
        extent = max(coord[axis] for coord in cells) + 1
        counts = [0] * extent
        for coord in cells:
            counts[coord[axis]] += 1
        histograms.append(tuple(counts))
    return tuple(histograms)


def max_shift_correlation(
    h_a: Sequence[int], h_b: Sequence[int]
) -> int:
    """``max_t sum_v min(h_a[v], h_b[v + t])`` over all integer shifts.

    The 1-D min-correlation maximum: an upper bound on how many cells
    of the two sets can pair up under *any* alignment, as seen by one
    axis projection.
    """
    len_a, len_b = len(h_a), len(h_b)
    if not len_a or not len_b:
        return 0
    best = 0
    for t in range(-(len_a - 1), len_b):
        lo = max(0, -t)
        hi = min(len_a, len_b - t)
        total = 0
        for j in range(lo, hi):
            a_j = h_a[j]
            b_j = h_b[j + t]
            total += a_j if a_j < b_j else b_j
        if total > best:
            best = total
    return best


def distance_floor(size_a: int, size_b: int, overlap: int) -> float:
    """Certified lower bound on the cell-level distance between two
    cell sets of the given sizes, given an upper bound on their
    achievable overlap (see the module docstring)."""
    compared = size_a + size_b - overlap
    if compared <= 0:
        return 0.0
    floor = (size_a + size_b - 2 * overlap) / compared
    return floor if floor > 0.0 else 0.0


class CellSignature:
    """One pattern's precomputed coarse-cell signature at one rung."""

    __slots__ = ("cells", "size", "histograms")

    def __init__(self, cells: FrozenSet[Coord], dimensions: int):
        self.cells = cells
        self.size = len(cells)
        self.histograms = axis_histograms(cells, dimensions)

    def overlap_bound(self, other: "CellSignature") -> int:
        """Upper bound on ``|self ∩ (other + s)|`` over every shift."""
        bound = self.size if self.size < other.size else other.size
        for h_a, h_b in zip(self.histograms, other.histograms):
            if bound == 0:
                break
            axis_bound = max_shift_correlation(h_a, h_b)
            if axis_bound < bound:
                bound = axis_bound
        return bound

    def __repr__(self) -> str:
        return f"CellSignature(size={self.size})"


class InvertedCellIndex:
    """Posting lists keyed by canonical-origin coarse-cell coordinate.

    One instance serves one Pattern Base: per configured rung it keeps
    a ``cell -> {pattern ids}`` posting map plus the per-pattern
    :class:`CellSignature`, both updated incrementally on archival and
    removal. All reads the matching engine needs at query time —
    posting accumulation and signature lookups — touch only these
    precomputed structures, never the stored SGS cells.
    """

    def __init__(
        self,
        levels: Sequence[int] = DEFAULT_INVERTED_LEVELS,
        factor: int = DEFAULT_INVERTED_FACTOR,
    ):
        cleaned = tuple(sorted({int(level) for level in levels}))
        if not cleaned:
            raise ValueError("inverted index needs at least one level")
        if cleaned[0] < 1:
            raise ValueError("inverted levels must be >= 1")
        # Levels and factor persist as single bytes (format v3), and a
        # rung much past ~5 collapses every pattern to one cell anyway:
        # reject out-of-range values here, before any mining work runs,
        # rather than at persist time.
        if cleaned[-1] > 255:
            raise ValueError("inverted levels must be <= 255")
        if not 2 <= factor <= 255:
            raise ValueError("inverted factor must be in [2, 255]")
        self.levels = cleaned
        self.factor = int(factor)
        self._postings: Dict[int, Dict[Coord, Set[int]]] = {
            level: {} for level in self.levels
        }
        self._signatures: Dict[int, Dict[int, CellSignature]] = {}
        #: Maintenance + lookup telemetry, provider-style.
        self.stats = {
            "patterns": 0,
            "postings": 0,
            "lookups": 0,
            "posting_hits": 0,
        }

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def add(self, pattern_id: int, sgs: SGS) -> None:
        """Index one archived pattern (computes its signatures)."""
        self.restore_signatures(
            pattern_id,
            {
                level: canonical_cell_signature(sgs, level, self.factor)
                for level in self.levels
            },
            sgs.dimensions,
        )

    def restore_signatures(
        self,
        pattern_id: int,
        cells_by_level: Mapping[int, Iterable[Coord]],
        dimensions: int,
    ) -> None:
        """Register precomputed signature cells (the persistence seam:
        a format-v3 load feeds stored cell sets straight in, skipping
        the coarsening arithmetic entirely)."""
        if pattern_id in self._signatures:
            raise ValueError(f"pattern {pattern_id} already indexed")
        missing = set(self.levels) - set(cells_by_level)
        if missing:
            raise ValueError(f"missing signature levels: {sorted(missing)}")
        signatures: Dict[int, CellSignature] = {}
        for level in self.levels:
            cells = frozenset(
                tuple(coord) for coord in cells_by_level[level]
            )
            signatures[level] = CellSignature(cells, dimensions)
            postings = self._postings[level]
            for cell in cells:
                bucket = postings.get(cell)
                if bucket is None:
                    bucket = postings[cell] = set()
                bucket.add(pattern_id)
            self.stats["postings"] += len(cells)
        self._signatures[pattern_id] = signatures
        self.stats["patterns"] += 1

    def remove(self, pattern_id: int) -> bool:
        """Drop one pattern's postings and signatures (eviction path)."""
        signatures = self._signatures.pop(pattern_id, None)
        if signatures is None:
            return False
        for level, signature in signatures.items():
            postings = self._postings[level]
            for cell in signature.cells:
                bucket = postings.get(cell)
                if bucket is None:
                    continue
                bucket.discard(pattern_id)
                if not bucket:
                    del postings[cell]
            self.stats["postings"] -= signature.size
        self.stats["patterns"] -= 1
        return True

    # ------------------------------------------------------------------
    # Query-time reads
    # ------------------------------------------------------------------

    def covers(self, level: int) -> bool:
        return level in self._postings

    def signature(
        self, pattern_id: int, level: int
    ) -> Optional[CellSignature]:
        signatures = self._signatures.get(pattern_id)
        if signatures is None:
            return None
        return signatures.get(level)

    def overlap_counts(
        self, cells: Iterable[Coord], level: int
    ) -> Dict[int, int]:
        """Posting-list accumulation: how many of ``cells`` each
        indexed pattern shares (absent = zero). One pass over the
        query's posting lists serves every candidate at once."""
        postings = self._postings[level]
        counts: Dict[int, int] = {}
        hits = 0
        for cell in cells:
            bucket = postings.get(cell)
            if not bucket:
                continue
            hits += len(bucket)
            for pattern_id in bucket:
                counts[pattern_id] = counts.get(pattern_id, 0) + 1
        self.stats["lookups"] += 1
        self.stats["posting_hits"] += hits
        return counts

    def pattern_ids(self) -> Iterator[int]:
        return iter(self._signatures.keys())

    def posting_list_count(self, level: int) -> int:
        """Number of distinct occupied cells at a rung (telemetry)."""
        return len(self._postings[level])

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)


class InvertedScreen:
    """One query's certified coarse screen, bound to an index.

    Built once per query execution: the query's own signature is
    computed up front, then :meth:`admits` is an O(1)-to-O(histogram)
    decision per candidate, memoized so batched serving can consult it
    repeatedly (shared pools re-screen per query) without
    double-counting the telemetry.

    The canonical-overlap counters come in two flavors, chosen by
    usage: :meth:`survivors` (the whole-archive gather of the planner's
    ``inverted`` entry) accumulates them for every candidate in one
    pass over the query's posting lists, while per-candidate
    :meth:`admits` calls on a screen that never gathered (a selective
    feature-grid entry touching a handful of candidates) intersect the
    two signature cell sets directly — identical counts, no
    archive-sized setup on the selective hot path.
    """

    __slots__ = (
        "index",
        "level",
        "query",
        "tau",
        "guard",
        "fast_accepted",
        "evaluated",
        "rejected",
        "_counters",
        "_verdicts",
    )

    def __init__(
        self,
        index: InvertedCellIndex,
        level: int,
        query_sgs: SGS,
        tau: float,
        guard: int,
    ):
        cells = canonical_cell_signature(query_sgs, level, index.factor)
        self.index = index
        self.level = level
        self.query = CellSignature(cells, query_sgs.dimensions)
        self.tau = float(tau)
        self.guard = int(guard)
        self.fast_accepted = 0
        self.evaluated = 0
        self.rejected = 0
        self._counters: Optional[Dict[int, int]] = None
        self._verdicts: Dict[int, bool] = {}

    def accumulate_counters(self) -> None:
        """Run the shared posting-list pass (idempotent)."""
        if self._counters is None:
            self._counters = self.index.overlap_counts(
                self.query.cells, self.level
            )

    def _canonical_overlap(
        self, pattern_id: int, signature: CellSignature
    ) -> int:
        """``|query ∩ pattern|`` at the canonical alignment, from the
        accumulated counters when available, else by direct cell-set
        intersection (same count either way)."""
        if self._counters is not None:
            return self._counters.get(pattern_id, 0)
        query_cells = self.query.cells
        small, large = (
            (query_cells, signature.cells)
            if len(query_cells) <= len(signature.cells)
            else (signature.cells, query_cells)
        )
        return sum(1 for cell in small if cell in large)

    def admits(self, pattern_id: int) -> bool:
        """False only when the certified distance floor exceeds τ."""
        verdict = self._verdicts.get(pattern_id)
        if verdict is None:
            verdict = self._decide(pattern_id)
            self._verdicts[pattern_id] = verdict
        return verdict

    def _decide(self, pattern_id: int) -> bool:
        signature = self.index.signature(pattern_id, self.level)
        if signature is None:
            # Not indexed (should not happen for a maintained index):
            # stand down conservatively, exactly like an unscreenable
            # candidate.
            return True
        q_size = self.query.size
        p_size = signature.size
        if q_size < self.guard or p_size < self.guard:
            # The ladder screen's min_coarse_cells stand-down, mirrored.
            return True
        m0 = self._canonical_overlap(pattern_id, signature)
        if distance_floor(q_size, p_size, m0) <= self.tau:
            # The canonical-alignment overlap is achievable, so no
            # sound upper bound can push the floor past τ: accept
            # without touching the per-pattern histograms.
            self.fast_accepted += 1
            return True
        self.evaluated += 1
        bound = self.query.overlap_bound(signature)
        if distance_floor(q_size, p_size, bound) > self.tau:
            self.rejected += 1
            return False
        return True

    def survivors(self, base) -> List[object]:
        """Every archived pattern the screen admits, ascending by
        pattern id (the planner's ``inverted`` entry gather). Ids whose
        pattern has left the base are skipped — stale postings can
        never resurrect an evicted pattern."""
        self.accumulate_counters()
        out = []
        for pattern_id in sorted(self.index.pattern_ids()):
            if self.admits(pattern_id):
                pattern = base.get(pattern_id)
                if pattern is not None:
                    out.append(pattern)
        return out
