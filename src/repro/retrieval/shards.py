"""Partitioning and planning of the sharded Pattern Base.

One Pattern Base answers one query at a time over one index. Heavy
multi-query traffic wants the classic database answer: *partition* the
archive into shards, plan and execute per shard, and merge. This module
provides the partitioning and planning halves; **where the shard work
runs** lives behind the deployment seam in :mod:`repro.serving`:

* :class:`ShardedPatternBase` — an archive partitioned over N plain
  :class:`~repro.archive.pattern_base.PatternBase` shards behind the
  same public surface (``add`` / ``restore`` / ``remove`` / ``get`` /
  index probes / ``all_patterns``), so the archiver, the retention
  manager, and persistence all work unchanged. Patterns route to a
  shard by **window span** (``window_index`` striped round-robin — the
  natural key for history-range queries) or by **feature-grid region**
  (a deterministic mix of the pattern's non-locational feature bins —
  the natural key for similarity workloads).
* :class:`ShardedMatchEngine` — a thin facade: one
  :class:`~repro.retrieval.engine.MatchEngine` per shard (every query
  is planned *per shard* — a shard with selective local ranges probes
  its feature grid while a sibling scans), one owned
  :class:`~repro.serving.executors.ShardExecutor` deciding where the
  per-shard work runs (``serial`` in-process, ``thread`` on a
  persistent lifecycle-managed pool, ``process`` on multiprocessing
  workers hydrated from format-v3 shard dumps), and the deterministic
  merge of :mod:`repro.serving.merge`: concatenate, sort by
  ``(distance, pattern_id)`` (the same stable tie-break the single
  engine uses), cut to ``top_k`` after the merge. Distances are
  per-pattern computations independent of placement, so the merged
  output is **identical** to a single unsharded engine's — and
  identical across executors — which the oracle equivalence suite,
  the executor-parity suite, and the sharded golden fixture pin byte
  for byte.

The facade owns its executor: construct with ``mode=`` (or let
``max_workers`` pick the historical serial/thread default), ``close()``
it — or use the engine as a context manager — when done. Per-query
stats aggregate provider-style: the plan reports ``entry="sharded"``
with the shard count and each shard's own entry choice, and the phase
counters are sums over shards.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.archive.pattern_base import (
    DEFAULT_BIN_WIDTHS,
    ArchivedPattern,
    PatternBase,
)
from repro.core.sgs import SGS
from repro.geometry.mbr import MBR
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval.engine import (
    DEFAULT_COARSE_MARGIN,
    DEFAULT_LADDER_FACTOR,
    MIN_COARSE_CELLS,
    EngineStats,
    MatchEngine,
    MatchResult,
    compose_query,
)
from repro.retrieval.inverted import InvertedCellIndex
from repro.retrieval.queries import MatchQuery

#: The supported partition keys.
PARTITION_KEY_WINDOW = "window"
PARTITION_KEY_FEATURE = "feature"
PARTITION_KEYS = (PARTITION_KEY_WINDOW, PARTITION_KEY_FEATURE)

#: Plan-entry label of a merged sharded execution (canonically defined
#: in :mod:`repro.serving.merge`; mirrored here for callers of the
#: planning layer that never touch the serving package).
ENTRY_SHARDED = "sharded"

# Large odd multipliers for the feature-region mix (the classic spatial
# hashing constants): deterministic across processes, unlike str hashes.
_MIX = (73856093, 19349663, 83492791, 2971215073)


def validate_partition_key(key: str) -> str:
    if key not in PARTITION_KEYS:
        raise ValueError(
            f"unknown partition key {key!r}; expected one of "
            f"{PARTITION_KEYS}"
        )
    return key


class _ShardedInvertedView:
    """Read-only merged view of the shards' inverted indices.

    Persistence serializes through it, and a plain
    :class:`~repro.retrieval.engine.MatchEngine` built directly over a
    sharded base (instead of the usual :class:`ShardedMatchEngine`)
    screens through it: the full query-time read surface —
    ``overlap_counts`` / ``pattern_ids`` / ``signature`` — merges
    across shards (pattern ids are disjoint, so counter dicts union
    without conflict)."""

    __slots__ = ("_sharded", "levels", "factor")

    def __init__(self, sharded: "ShardedPatternBase", levels, factor):
        self._sharded = sharded
        self.levels = levels
        self.factor = factor

    def covers(self, level: int) -> bool:
        return level in self.levels

    def signature(self, pattern_id: int, level: int):
        shard = self._sharded.shard_of(pattern_id)
        if shard is None:
            return None
        index = shard.inverted_index()
        if index is None:
            return None
        return index.signature(pattern_id, level)

    def overlap_counts(self, cells, level: int) -> Dict[int, int]:
        cells = list(cells)
        counts: Dict[int, int] = {}
        for shard in self._sharded.shards():
            counts.update(shard.inverted_index().overlap_counts(cells, level))
        return counts

    def pattern_ids(self) -> Iterator[int]:
        for shard in self._sharded.shards():
            yield from shard.inverted_index().pattern_ids()

    def __contains__(self, pattern_id: int) -> bool:
        return self.signature(pattern_id, self.levels[0]) is not None

    def __len__(self) -> int:
        return sum(
            len(shard.inverted_index() or ())
            for shard in self._sharded.shards()
        )


class _ShardedFeatureIndexView:
    """The planner-facing read surface of the shards' feature grids
    (candidate gathering itself goes through
    :meth:`ShardedPatternBase.in_feature_ranges`)."""

    __slots__ = ("_shards",)

    def __init__(self, shards: Sequence[PatternBase]):
        self._shards = shards

    def covers_occupied_extent(self, lows, highs) -> bool:
        """True when the ranges cover every occupied bin of every
        shard — exactly the union-archive predicate, since a bin is
        occupied in the union iff it is occupied in some shard."""
        return all(
            shard.feature_index().covers_occupied_extent(lows, highs)
            for shard in self._shards
            if len(shard)
        )


class ShardedPatternBase:
    """A Pattern Base partitioned over N independent shards."""

    def __init__(
        self,
        shard_count: int,
        partition_key: str = PARTITION_KEY_WINDOW,
        bin_widths: Sequence[float] = DEFAULT_BIN_WIDTHS,
        inverted_levels: Optional[Sequence[int]] = None,
        inverted_factor: int = 3,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        self.partition_key = validate_partition_key(partition_key)
        self.bin_widths = tuple(float(w) for w in bin_widths)
        self._shards = [
            PatternBase(
                self.bin_widths,
                inverted_levels=inverted_levels,
                inverted_factor=inverted_factor,
            )
            for _ in range(shard_count)
        ]
        self._owner: Dict[int, int] = {}
        self._next_id = 0
        #: Durable system of record behind the serving-time shard
        #: layout (see :meth:`from_base`): new ingests write through to
        #: it, removals delete from it. ``None`` = in-memory only.
        self._origin_store = None

    @classmethod
    def from_base(
        cls,
        base: PatternBase,
        shard_count: int,
        partition_key: str = PARTITION_KEY_WINDOW,
        inverted_levels: Optional[Sequence[int]] = None,
        inverted_factor: Optional[int] = None,
    ) -> "ShardedPatternBase":
        """Partition an existing archive (e.g. a freshly loaded one).

        Pattern ids are preserved. The inverted-index configuration is
        inherited from the source base unless given explicitly; when
        the source already carries signatures at the wanted rungs
        (a format-v3 load), they are *transferred* to the shard indices
        rather than recomputed — partitioning never repeats the
        coarsening arithmetic persistence exists to skip. The source
        base should be discarded afterwards — the stored pattern
        records are shared, not copied.

        When the source base sits on a durable store (``sqlite:PATH``),
        that store stays the system of record: shard layout is a
        serving-time choice, so the sharded base adopts it as the
        origin store — new ingests commit there before being
        acknowledged, and removals delete there — while reads keep
        hydrating through the shared stubs.
        """
        source_index = base.inverted_index()
        if inverted_levels is None and source_index is not None:
            inverted_levels = source_index.levels
        if inverted_factor is None:
            inverted_factor = (
                source_index.factor if source_index is not None else 3
            )
        transferable = (
            inverted_levels is not None
            and source_index is not None
            and source_index.factor == inverted_factor
            and all(source_index.covers(lv) for lv in inverted_levels)
        )
        sharded = cls(
            shard_count,
            partition_key,
            inverted_levels=None if transferable else inverted_levels,
            inverted_factor=inverted_factor,
        )
        for pattern in sorted(
            base.all_patterns(), key=lambda p: p.pattern_id
        ):
            sharded.restore(pattern)
        if transferable:
            for shard in sharded._shards:
                index = InvertedCellIndex(inverted_levels, inverted_factor)
                for pattern in shard.all_patterns():
                    index.restore_signatures(
                        pattern.pattern_id,
                        {
                            level: source_index.signature(
                                pattern.pattern_id, level
                            ).cells
                            for level in index.levels
                        },
                        pattern.sgs.dimensions,
                    )
                shard.attach_inverted(index)
        source_store = getattr(base, "store", None)
        if source_store is not None and source_store.durable:
            sharded._origin_store = source_store
        return sharded

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def shard_for(self, pattern: ArchivedPattern) -> int:
        """The shard index a pattern routes to (pure function of the
        pattern and the partition key — placement never depends on
        arrival order)."""
        count = len(self._shards)
        if count == 1:
            return 0
        if self.partition_key == PARTITION_KEY_WINDOW:
            return pattern.window_index % count
        mixed = 0
        for value, width, salt in zip(
            pattern.features.as_tuple(), self.bin_widths, _MIX
        ):
            mixed ^= int(value // width) * salt
        return mixed % count

    def shards(self) -> List[PatternBase]:
        return list(self._shards)

    def shard_of(self, pattern_id: int) -> Optional[PatternBase]:
        index = self._owner.get(pattern_id)
        if index is None:
            return None
        return self._shards[index]

    def shard_index_of(self, pattern_id: int) -> Optional[int]:
        """The shard index currently owning a pattern (None when the
        pattern is not archived) — how the serving layer routes an
        ingest to the one worker whose shard changed."""
        return self._owner.get(pattern_id)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------
    # The PatternBase surface
    # ------------------------------------------------------------------

    def add(self, sgs: SGS, full_size: int) -> ArchivedPattern:
        pattern = ArchivedPattern(self._next_id, sgs, full_size)
        return self.restore(pattern)

    def restore(self, pattern: ArchivedPattern) -> ArchivedPattern:
        if pattern.pattern_id in self._owner:
            raise ValueError(
                f"pattern id {pattern.pattern_id} already archived"
            )
        index = self.shard_for(pattern)
        self._shards[index].restore(pattern)
        if (
            self._origin_store is not None
            and pattern.pattern_id not in self._origin_store
        ):
            try:
                self._write_through(index, pattern)
            except BaseException:
                self._shards[index].remove(pattern.pattern_id)
                raise
        self._owner[pattern.pattern_id] = index
        self._next_id = max(self._next_id, pattern.pattern_id + 1)
        return pattern

    def _write_through(
        self, shard_index: int, pattern: ArchivedPattern
    ) -> None:
        """Commit a freshly-archived pattern to the origin store — with
        the signatures the owning shard just computed — so the durable
        record exists before the ingest is acknowledged."""
        from repro.archive.store import feature_bins_for

        inverted = self._shards[shard_index].inverted_index()
        signatures = None
        inverted_config = None
        if inverted is not None:
            signatures = {
                level: inverted.signature(pattern.pattern_id, level).cells
                for level in inverted.levels
            }
            inverted_config = (
                inverted.levels,
                inverted.factor,
                pattern.sgs.dimensions,
            )
        self._origin_store.put(
            pattern,
            bins=feature_bins_for(
                pattern.features.as_tuple(), self.bin_widths
            ),
            signatures=signatures,
            inverted_config=inverted_config,
        )

    def add_archived(self, pattern: ArchivedPattern) -> ArchivedPattern:
        return self.restore(pattern)

    def remove(self, pattern_id: int) -> bool:
        index = self._owner.pop(pattern_id, None)
        if index is None:
            return False
        removed = self._shards[index].remove(pattern_id)
        if removed and self._origin_store is not None:
            self._origin_store.delete(pattern_id)
        return removed

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        shard = self.shard_of(pattern_id)
        if shard is None:
            return None
        return shard.get(pattern_id)

    def overlapping(self, mbr: MBR) -> List[ArchivedPattern]:
        out: List[ArchivedPattern] = []
        for shard in self._shards:
            out.extend(shard.overlapping(mbr))
        return out

    def in_feature_ranges(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> List[ArchivedPattern]:
        out: List[ArchivedPattern] = []
        for shard in self._shards:
            out.extend(shard.in_feature_ranges(lows, highs))
        return out

    def all_patterns(self) -> Iterator[ArchivedPattern]:
        for shard in self._shards:
            yield from shard.all_patterns()

    def feature_index(self) -> _ShardedFeatureIndexView:
        """Merged read view of the shards' feature grids (what the
        query planner consults when a plain engine serves a sharded
        base directly)."""
        return _ShardedFeatureIndexView(self._shards)

    def subscribe(self, listener) -> None:
        for shard in self._shards:
            shard.subscribe(listener)

    def enable_inverted(self, levels: Sequence[int], factor: int = 3):
        for shard in self._shards:
            shard.enable_inverted(levels, factor)
        return self.inverted_index()

    def inverted_index(self):
        """A merged read view over the shards' inverted indices (None
        unless every shard carries one)."""
        indices = [shard.inverted_index() for shard in self._shards]
        if any(index is None for index in indices):
            return None
        return _ShardedInvertedView(
            self, indices[0].levels, indices[0].factor
        )

    def summary_bytes(self) -> int:
        return sum(shard.summary_bytes() for shard in self._shards)

    @property
    def store(self):
        """The durable origin store behind the shard layout, or
        ``None`` when the archive is in-memory only."""
        return self._origin_store

    def store_info(self) -> dict:
        """JSON-able description of the backing store (for ``/stats``)."""
        if self._origin_store is not None:
            return self._origin_store.describe()
        return {
            "backend": "memory",
            "durable": False,
            "patterns": len(self),
        }

    def close(self) -> None:
        """Release the origin store and the shard bases; idempotent."""
        for shard in self._shards:
            shard.close()
        if self._origin_store is not None:
            self._origin_store.close()

    def __len__(self) -> int:
        return len(self._owner)

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._owner


class ShardedMatchEngine:
    """Fan matching queries out across an archive's shards and merge.

    The constructor builds one :class:`MatchEngine` per shard with
    identical configuration; each engine plans its own shard (entry
    choices may differ per shard) and screens with its shard's own
    inverted index and ladder cache. Execution goes through one owned
    :class:`~repro.serving.executors.ShardExecutor` for the facade's
    lifetime:

    * ``mode`` picks the deployment mode explicitly (``"serial"`` /
      ``"thread"`` / ``"process"``);
    * without ``mode``, ``max_workers`` keeps the historical default —
      the persistent thread pool for a multi-shard archive, the serial
      path for one shard or ``max_workers <= 1`` (useful under
      contention or for deterministic profiling);
    * ``replicas`` spawns that many process workers per shard (implies
      ``mode="process"`` when no mode is given): reads route
      round-robin across live replicas, and a worker dying mid-task
      fails over to a sibling instead of stalling on a respawn;
    * ``executor`` injects a prebuilt executor (the facade then does
      not own its lifecycle).

    Whatever runs the shards, the merged answers are identical. Call
    :meth:`close` (or use the engine as a context manager) to release
    the owned executor — its thread pool or worker processes.
    """

    def __init__(
        self,
        base: ShardedPatternBase,
        spec: Optional[DistanceMetricSpec] = None,
        max_alignment_expansions: int = 32,
        coarse_level: int = 0,
        coarse_margin: float = DEFAULT_COARSE_MARGIN,
        ladder_factor: int = DEFAULT_LADDER_FACTOR,
        min_coarse_cells: int = MIN_COARSE_CELLS,
        use_inverted: bool = True,
        max_workers: Optional[int] = None,
        mode: Optional[str] = None,
        replicas: int = 1,
        executor=None,
    ):
        # Imported here, not at module level: repro.serving sits above
        # the retrieval layer and imports the engine, so a top-level
        # import would be circular.
        from repro.serving.executors import build_executor
        from repro.serving.merge import merge_shard_results

        self._merge_results = merge_shard_results
        self.base = base
        self.engines = [
            MatchEngine(
                shard,
                spec=spec,
                max_alignment_expansions=max_alignment_expansions,
                coarse_level=coarse_level,
                coarse_margin=coarse_margin,
                ladder_factor=ladder_factor,
                min_coarse_cells=min_coarse_cells,
                use_inverted=use_inverted,
            )
            for shard in base.shards()
        ]
        self.spec = self.engines[0].spec
        self.coarse_level = self.engines[0].coarse_level
        self.max_alignment_expansions = (
            self.engines[0].max_alignment_expansions
        )
        if max_workers is None:
            max_workers = len(self.engines)
        self.max_workers = max(0, int(max_workers))
        self.replicas = max(1, int(replicas))
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        else:
            self._executor = build_executor(
                mode,
                self.engines,
                base=base,
                max_workers=self.max_workers,
                replicas=self.replicas,
                worker_config={
                    "metric": {
                        "position_sensitive": self.spec.position_sensitive,
                        "weights": dict(self.spec.weights),
                    },
                    "max_alignment_expansions": max_alignment_expansions,
                    "coarse_level": coarse_level,
                    "coarse_margin": coarse_margin,
                    "ladder_factor": ladder_factor,
                    "min_coarse_cells": min_coarse_cells,
                    "use_inverted": use_inverted,
                },
            )
            self._owns_executor = True

    @property
    def executor(self):
        """The owned (or injected) deployment-mode executor."""
        return self._executor

    @property
    def mode(self) -> str:
        return self._executor.mode

    @property
    def parallel(self) -> bool:
        return self._executor.parallel

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the owned executor (thread pool or shard workers);
        idempotent. An injected executor is the injector's to close."""
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ShardedMatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def ingest(self, sgs: SGS, full_size: int) -> ArchivedPattern:
        """Archive a new pattern *and* propagate it to the executor's
        shard copy (process workers hold hydrated replicas; in-process
        modes share :attr:`base` and need no propagation)."""
        pattern = self.base.add(sgs, full_size)
        self._executor.ingest(
            self.base.shard_index_of(pattern.pattern_id), pattern
        )
        return pattern

    def match(
        self, query: MatchQuery
    ) -> Tuple[List[MatchResult], EngineStats]:
        """One query against every shard; merged deterministically."""
        per_shard = self._executor.match(query)
        return self._merge_results(per_shard, query, self.parallel)

    def match_sgs(
        self,
        sgs: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
        coarse_level: Optional[int] = None,
        window_range: Optional[Tuple[int, int]] = None,
    ) -> Tuple[List[MatchResult], EngineStats]:
        return self.match(
            compose_query(
                self, sgs, threshold, top_k, spec, coarse_level,
                window_range,
            )
        )

    def match_many(
        self, queries: Sequence[MatchQuery]
    ) -> List[Tuple[List[MatchResult], EngineStats]]:
        """Batched serving: each shard runs the whole batch through its
        own shared-gather ``match_many``, the shards run concurrently,
        and each query's per-shard answers merge as in :meth:`match`."""
        if not queries:
            return []
        per_shard = self._executor.match_many(queries)
        out: List[Tuple[List[MatchResult], EngineStats]] = []
        for qi, query in enumerate(queries):
            out.append(
                self._merge_results(
                    [shard_out[qi] for shard_out in per_shard],
                    query,
                    self.parallel,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Cache management (forwarded)
    # ------------------------------------------------------------------

    def warm_ladders(self) -> int:
        return sum(engine.warm_ladders() for engine in self.engines)

    def invalidate(self, pattern_id: Optional[int] = None) -> None:
        for engine in self.engines:
            engine.invalidate(pattern_id)

    def cached_ladder_levels(self) -> int:
        return sum(
            engine.cached_ladder_levels() for engine in self.engines
        )
