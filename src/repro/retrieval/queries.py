"""The matching-query model served by the retrieval engine.

A :class:`MatchQuery` is one executable cluster matching query over the
Pattern Base: the query cluster's SGS, the distance threshold (and an
optional top-k cut), the analyst's :class:`DistanceMetricSpec`, plus the
archive-side constraints the paper's Figure-3 template implies but the
bare analyzer never modeled — a window range over the stream history and
explicit per-feature constraint ranges. ``coarse_level`` selects the
multi-resolution entry level for the coarse-to-fine refiner (0 = match
at the stored resolution directly).

The dataclass is deliberately dumb: validation here, planning in
:mod:`repro.retrieval.planner`, execution in
:mod:`repro.retrieval.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.core.features import FEATURE_NAMES
from repro.core.sgs import SGS
from repro.matching.metric import DistanceMetricSpec

#: A closed per-feature constraint interval; either side may be ±inf.
FeatureRange = Tuple[float, float]


@dataclass(frozen=True)
class MatchQuery:
    """One cluster matching query against the archived Stream History.

    * ``sgs`` — the query cluster's summarized form (any resolution).
    * ``threshold`` — maximum refined distance for a match, in [0, 1].
    * ``top_k`` — keep only the k closest matches (``None`` = all).
    * ``metric`` — the analyst's distance metric (position sensitivity
      decides the entry index; weights shape the candidate ranges).
    * ``window_range`` — inclusive ``(lo, hi)`` bound on the archived
      pattern's window index (``None`` = the whole history).
    * ``feature_ranges`` — explicit per-feature constraint intervals by
      feature name, intersected with the threshold-derived candidate
      search ranges (``{"volume": (8, 64)}`` keeps only patterns whose
      volume lies in [8, 64]).
    * ``coarse_level`` — number of multi-resolution ladder levels above
      the stored representation to enter cell-level matching at; 0
      disables the coarse entry.
    """

    sgs: SGS
    threshold: float
    top_k: Optional[int] = None
    metric: DistanceMetricSpec = field(default_factory=DistanceMetricSpec)
    window_range: Optional[Tuple[int, int]] = None
    feature_ranges: Optional[Mapping[str, FeatureRange]] = None
    coarse_level: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.threshold <= 1:
            raise ValueError("threshold must be in [0, 1]")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be positive when given")
        if self.coarse_level < 0:
            raise ValueError("coarse_level must be non-negative")
        if self.window_range is not None:
            lo, hi = self.window_range
            if lo > hi:
                raise ValueError(
                    f"window_range must be (lo, hi) with lo <= hi, "
                    f"got {self.window_range}"
                )
        if self.feature_ranges:
            unknown = set(self.feature_ranges) - set(FEATURE_NAMES)
            if unknown:
                raise ValueError(
                    f"unknown constrained features: {sorted(unknown)}"
                )
            for name, (low, high) in self.feature_ranges.items():
                if low > high:
                    raise ValueError(
                        f"feature range for {name!r} is inverted: "
                        f"({low}, {high})"
                    )

    def admits_window(self, window_index: int) -> bool:
        """True when an archived pattern's window passes the constraint."""
        if self.window_range is None:
            return True
        lo, hi = self.window_range
        return lo <= window_index <= hi

    def admits_features(self, features) -> bool:
        """True when the explicit feature constraints pass (the
        threshold-derived ranges are *not* applied here; they are a
        candidate-search optimization, not query semantics)."""
        if not self.feature_ranges:
            return True
        for name, (low, high) in self.feature_ranges.items():
            value = features[name]
            if value < low or value > high:
                return False
        return True
