"""Archive retention: keep the Pattern Base bounded over endless streams.

The Pattern Archiver decides *what enters* the base; on an unbounded
stream the base still grows forever. The retention manager enforces the
operational limits the paper leaves to the deployment:

* **capacity** — a maximum pattern count (or byte budget); the oldest
  windows are evicted first, mirroring how analysts value recent stream
  history;
* **deduplication** — an optional admission check that drops a new
  pattern when a near-duplicate (cluster-level feature distance below
  ``dedup_threshold`` and overlapping in space, for position-sensitive
  setups) is already archived from a recent window.

Both operate through the public PatternBase interface, so indices stay
consistent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.features import ClusterFeatures
from repro.core.sgs import SGS
from repro.matching.metric import (
    DistanceMetricSpec,
    cluster_feature_distance,
    feature_search_ranges,
)


class RetentionManager:
    """Bounded, optionally deduplicated admission to a Pattern Base."""

    def __init__(
        self,
        base: PatternBase,
        max_patterns: Optional[int] = None,
        max_bytes: Optional[int] = None,
        dedup_threshold: Optional[float] = None,
        dedup_window_gap: int = 5,
        spec: Optional[DistanceMetricSpec] = None,
    ):
        if max_patterns is not None and max_patterns < 1:
            raise ValueError("max_patterns must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if dedup_threshold is not None and not 0 <= dedup_threshold <= 1:
            raise ValueError("dedup_threshold must be in [0, 1]")
        self.base = base
        self.max_patterns = max_patterns
        self.max_bytes = max_bytes
        self.dedup_threshold = dedup_threshold
        self.dedup_window_gap = dedup_window_gap
        self.spec = spec if spec is not None else DistanceMetricSpec()
        self.evicted = 0
        self.deduplicated = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _near_duplicate(self, sgs: SGS) -> Optional[ArchivedPattern]:
        assert self.dedup_threshold is not None
        features = ClusterFeatures.from_sgs(sgs)
        lows, highs = feature_search_ranges(
            features, self.spec, self.dedup_threshold
        )
        for candidate in self.base.in_feature_ranges(lows, highs):
            if (
                sgs.window_index >= 0
                and candidate.window_index >= 0
                and sgs.window_index - candidate.window_index
                > self.dedup_window_gap
            ):
                continue
            distance = cluster_feature_distance(
                features,
                candidate.features,
                self.spec,
                sgs.mbr(),
                candidate.mbr,
            )
            if distance <= self.dedup_threshold:
                return candidate
        return None

    def add(self, sgs: SGS, full_size: int) -> Optional[ArchivedPattern]:
        """Admit one summary; returns None when deduplicated away."""
        if self.dedup_threshold is not None:
            duplicate = self._near_duplicate(sgs)
            if duplicate is not None:
                self.deduplicated += 1
                return None
        pattern = self.base.add(sgs, full_size)
        self.enforce()
        return pattern

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _over_budget(self) -> bool:
        if self.max_patterns is not None and len(self.base) > self.max_patterns:
            return True
        if (
            self.max_bytes is not None
            and self.base.summary_bytes() > self.max_bytes
        ):
            return True
        return False

    def enforce(self) -> int:
        """Evict oldest-window patterns until within budget.

        Returns the number of patterns evicted.
        """
        evicted = 0
        while self._over_budget():
            victims: List[ArchivedPattern] = sorted(
                self.base.all_patterns(),
                key=lambda p: (p.window_index, p.pattern_id),
            )
            if not victims:
                break
            self.base.remove(victims[0].pattern_id)
            evicted += 1
        self.evicted += evicted
        return evicted
