"""Durable storage for the Pattern Base.

The paper treats the Pattern Base as the long-term "Stream History"; a
history only deserves the name if it survives the process. This module
persists an archive to a single binary file — a small header plus one
length-prefixed :mod:`repro.core.serialize` blob per pattern (with its
full-representation size) — and restores it with identical pattern ids,
feature-index contents, and byte accounting.

Format (version 2; version-1 files still load)::

    magic  b"SGSA"   | uint32 version | uint32 pattern count
    per pattern (v2): uint32 pattern_id | uint32 full_size |
                      uint8 ladder_hint | uint32 blob length | SGS blob
    per pattern (v1): uint32 pattern_id | uint32 full_size |
                      uint32 blob length | SGS blob

``ladder_hint`` is the pattern's multi-resolution cache-warmth byte
(how many coarser ladder levels a matching engine had materialized; see
:class:`repro.archive.pattern_base.ArchivedPattern`): purely advisory,
so a v1 file simply restores with cold hints.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.serialize import sgs_from_bytes, sgs_to_bytes

_MAGIC = b"SGSA"
_VERSION = 2
_MAX_LADDER_HINT = 255

PathLike = Union[str, Path]


def dump_pattern_base(base: PatternBase, target: Union[PathLike, BinaryIO]) -> int:
    """Write an archive to ``target`` (path or binary stream).

    Returns the number of bytes written.
    """
    if isinstance(target, (str, Path)):
        with open(target, "wb") as handle:
            return dump_pattern_base(base, handle)
    written = 0
    patterns = sorted(base.all_patterns(), key=lambda p: p.pattern_id)
    header = _MAGIC + struct.pack("<II", _VERSION, len(patterns))
    target.write(header)
    written += len(header)
    for pattern in patterns:
        blob = sgs_to_bytes(pattern.sgs)
        hint = min(max(pattern.ladder_hint, 0), _MAX_LADDER_HINT)
        record = struct.pack(
            "<IIBI", pattern.pattern_id, pattern.full_size, hint, len(blob)
        )
        target.write(record)
        target.write(blob)
        written += len(record) + len(blob)
    return written


def load_pattern_base(source: Union[PathLike, BinaryIO]) -> PatternBase:
    """Read an archive written by :func:`dump_pattern_base`.

    Pattern ids (and, for v2 files, the per-pattern ladder-hint bytes)
    are preserved; the feature and locational indices are rebuilt on
    load through the Pattern Base's public :meth:`restore` seam.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return load_pattern_base(handle)
    header = source.read(len(_MAGIC) + 8)
    if header[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a Pattern Base archive file")
    version, count = struct.unpack_from("<II", header, len(_MAGIC))
    if version == 1:
        record_format = "<III"
    elif version == _VERSION:
        record_format = "<IIBI"
    else:
        raise ValueError(f"unsupported archive version {version}")
    record_size = struct.calcsize(record_format)
    base = PatternBase()
    for _ in range(count):
        record = source.read(record_size)
        if len(record) != record_size:
            raise ValueError("truncated archive: missing pattern record")
        if version == 1:
            pattern_id, full_size, blob_length = struct.unpack(
                record_format, record
            )
            ladder_hint = 0
        else:
            pattern_id, full_size, ladder_hint, blob_length = struct.unpack(
                record_format, record
            )
        blob = source.read(blob_length)
        if len(blob) != blob_length:
            raise ValueError("truncated archive: missing SGS blob")
        sgs = sgs_from_bytes(blob)
        base.restore(
            ArchivedPattern(
                pattern_id, sgs, full_size, ladder_hint=ladder_hint
            )
        )
    return base


def roundtrip_bytes(base: PatternBase) -> bytes:
    """Serialize an archive to bytes (convenience for tests/tools)."""
    buffer = io.BytesIO()
    dump_pattern_base(base, buffer)
    return buffer.getvalue()
