"""Durable storage for the Pattern Base.

The paper treats the Pattern Base as the long-term "Stream History"; a
history only deserves the name if it survives the process. This module
persists an archive to a single binary file — a small header plus one
length-prefixed :mod:`repro.core.serialize` blob per pattern (with its
full-representation size) — and restores it with identical pattern ids,
feature-index contents, and byte accounting.

Format (version 3; version-1 and version-2 files still load)::

    magic  b"SGSA"   | uint32 version | uint32 pattern count
    per pattern (v2+): uint32 pattern_id | uint32 full_size |
                       uint8 ladder_hint | uint32 blob length | SGS blob
    per pattern (v1):  uint32 pattern_id | uint32 full_size |
                       uint32 blob length | SGS blob
    inverted section (v3): uint8 present
      when present: uint8 level count | that many uint8 levels |
                    uint8 factor | uint8 dimensions
      then per pattern (ascending id), per level (ascending):
                    uint32 cell count | cells × dims × int32 coords

``ladder_hint`` is the pattern's multi-resolution cache-warmth byte
(how many coarser ladder levels a matching engine had materialized; see
:class:`repro.archive.pattern_base.ArchivedPattern`): purely advisory,
so a v1 file simply restores with cold hints.

The inverted section persists the archive's inverted cell-signature
index (:mod:`repro.retrieval.inverted`): each pattern's canonical-
origin coarse-cell sets at the configured rungs, written in sorted
order so dumps are byte-stable. Loading a v3 file feeds the stored
cell sets straight back into a fresh index — posting lists rebuild
from integer tuples with **zero** coarsening arithmetic, so a reloaded
history serves its first coarse query warm. Legacy files (v1/v2) carry
no section; callers re-enable the index with
:meth:`~repro.archive.pattern_base.PatternBase.enable_inverted`, which
rebuilds signatures from the stored summaries.
"""

from __future__ import annotations

import io
import os
import struct
import tempfile
from pathlib import Path
from typing import BinaryIO, Optional, Union

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.serialize import sgs_from_bytes, sgs_to_bytes
from repro.retrieval.inverted import InvertedCellIndex

_MAGIC = b"SGSA"
_VERSION = 3
_MAX_LADDER_HINT = 255

PathLike = Union[str, Path]


def dump_pattern_base(base, target: Union[PathLike, BinaryIO]) -> int:
    """Write an archive to ``target`` (path or binary stream).

    ``base`` may be a plain :class:`PatternBase` or any object with the
    same read surface (a
    :class:`~repro.retrieval.shards.ShardedPatternBase` serializes its
    merged contents; reloading yields one flat base to re-partition
    with ``ShardedPatternBase.from_base``). Returns the number of bytes
    written.

    Path targets are written atomically: the bytes go to a temporary
    file in the same directory, are flushed and fsynced, and only then
    replace the target — a crash mid-dump can never leave a torn file
    shadowing the previous good archive.
    """
    if isinstance(target, (str, Path)):
        directory = os.path.dirname(os.path.abspath(os.fspath(target)))
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".sgsa-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                written = dump_pattern_base(base, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return written
    written = 0
    patterns = sorted(base.all_patterns(), key=lambda p: p.pattern_id)
    header = _MAGIC + struct.pack("<II", _VERSION, len(patterns))
    target.write(header)
    written += len(header)
    for pattern in patterns:
        blob = sgs_to_bytes(pattern.sgs)
        hint = min(max(pattern.ladder_hint, 0), _MAX_LADDER_HINT)
        record = struct.pack(
            "<IIBI", pattern.pattern_id, pattern.full_size, hint, len(blob)
        )
        target.write(record)
        target.write(blob)
        written += len(record) + len(blob)
    written += _dump_inverted_section(base, patterns, target)
    return written


def _dump_inverted_section(base, patterns, target: BinaryIO) -> int:
    index_of = getattr(base, "inverted_index", None)
    index = index_of() if index_of is not None else None
    if index is None:
        target.write(struct.pack("<B", 0))
        return 1
    dims = patterns[0].sgs.dimensions if patterns else 0
    out = [struct.pack("<BB", 1, len(index.levels))]
    out.append(struct.pack(f"<{len(index.levels)}B", *index.levels))
    out.append(struct.pack("<BB", index.factor, dims))
    for pattern in patterns:
        for level in index.levels:
            signature = index.signature(pattern.pattern_id, level)
            cells = sorted(signature.cells)
            out.append(struct.pack("<I", len(cells)))
            for cell in cells:
                out.append(struct.pack(f"<{dims}i", *cell))
    blob = b"".join(out)
    target.write(blob)
    return len(blob)


def load_pattern_base(
    source: Union[PathLike, BinaryIO],
    store: Optional[Union[str, object]] = None,
) -> PatternBase:
    """Read an archive written by :func:`dump_pattern_base`.

    Pattern ids (and, for v2+ files, the per-pattern ladder-hint bytes)
    are preserved; the feature and locational indices are rebuilt on
    load through the Pattern Base's public :meth:`restore` seam, and a
    v3 inverted section restores the inverted cell-signature index
    without recomputing any signature.

    ``store`` names the backend the loaded base should live on (a spec
    string like ``"sqlite:PATH"`` or an open
    :class:`~repro.archive.store.PatternStore`; ``None`` = in-memory).
    The import runs as one bulk transaction: a truncated or corrupt
    dump raises :class:`ValueError` and rolls a durable store back to
    its pre-load state — no partial archive survives on disk.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return load_pattern_base(handle, store=store)
    magic = source.read(len(_MAGIC))
    if magic != _MAGIC:
        raise ValueError("not a Pattern Base archive file")
    version, count = struct.unpack(
        "<II", _read_exact(source, 8, "file header")
    )
    if version == 1:
        record_format = "<III"
    elif version in (2, _VERSION):
        record_format = "<IIBI"
    else:
        raise ValueError(f"unsupported archive version {version}")
    record_size = struct.calcsize(record_format)
    base = PatternBase(store=store)
    backing = base.store
    backing.begin_bulk()
    try:
        pattern_ids = []
        for _ in range(count):
            record = _read_exact(source, record_size, "pattern record")
            if version == 1:
                pattern_id, full_size, blob_length = struct.unpack(
                    record_format, record
                )
                ladder_hint = 0
            else:
                (
                    pattern_id, full_size, ladder_hint, blob_length,
                ) = struct.unpack(record_format, record)
            blob = _read_exact(source, blob_length, "SGS blob")
            sgs = sgs_from_bytes(blob)
            base.restore(
                ArchivedPattern(
                    pattern_id, sgs, full_size, ladder_hint=ladder_hint
                )
            )
            pattern_ids.append(pattern_id)
        if version >= _VERSION:
            _load_inverted_section(base, sorted(pattern_ids), source)
    except BaseException:
        backing.end_bulk(success=False)
        raise
    backing.end_bulk(success=True)
    return base


def _read_exact(
    source: BinaryIO, size: int, what: str = "inverted section"
) -> bytes:
    blob = source.read(size)
    if len(blob) != size:
        raise ValueError(f"truncated archive: missing {what}")
    return blob


def _load_inverted_section(
    base: PatternBase, pattern_ids, source: BinaryIO
) -> None:
    (present,) = struct.unpack("<B", _read_exact(source, 1))
    if not present:
        return
    (level_count,) = struct.unpack("<B", _read_exact(source, 1))
    levels = struct.unpack(
        f"<{level_count}B", _read_exact(source, level_count)
    )
    factor, dims = struct.unpack("<BB", _read_exact(source, 2))
    index = InvertedCellIndex(levels, factor)
    cell_size = struct.calcsize(f"<{dims}i") if dims else 0
    for pattern_id in pattern_ids:
        cells_by_level = {}
        for level in index.levels:
            (cell_count,) = struct.unpack("<I", _read_exact(source, 4))
            cells = []
            for _ in range(cell_count):
                cells.append(
                    struct.unpack(f"<{dims}i", _read_exact(source, cell_size))
                )
            cells_by_level[level] = cells
        index.restore_signatures(pattern_id, cells_by_level, dims)
    base.attach_inverted(index)


def roundtrip_bytes(base) -> bytes:
    """Serialize an archive to bytes (convenience for tests/tools)."""
    buffer = io.BytesIO()
    dump_pattern_base(base, buffer)
    return buffer.getvalue()
