"""The Pattern Archiver (Section 6): selection + resolution control.

Decides *which* freshly extracted clusters enter the Pattern Base and
*at which resolution* they are stored. Selection policies implement the
mechanisms Section 6.2 lists (archive everything, sampling, feature
filters); resolution selection is budget- and accuracy-aware via the
deterministic cell-count prediction of Section 6.1.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.csgs import WindowOutput
from repro.core.multires import cells_needed_at_level, coarsen_sgs
from repro.core.sgs import SGS
from repro.eval.memory import sgs_cell_bytes


class ArchivePolicy:
    """Decides whether a freshly extracted cluster should be archived."""

    def admit(self, sgs: SGS, full_size: int) -> bool:
        raise NotImplementedError


class ArchiveAllPolicy(ArchivePolicy):
    """Keep every extracted cluster."""

    def admit(self, sgs: SGS, full_size: int) -> bool:
        return True


class SamplingPolicy(ArchivePolicy):
    """Archive each cluster independently with probability ``rate``."""

    def __init__(self, rate: float, seed: Optional[int] = 11):
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self._rng = random.Random(seed)

    def admit(self, sgs: SGS, full_size: int) -> bool:
        return self._rng.random() < self.rate


class FeatureFilterPolicy(ArchivePolicy):
    """Archive only clusters reaching a population and/or volume floor
    (Section 6.2's feature-selection mechanism)."""

    def __init__(self, min_population: int = 0, min_volume: int = 0):
        self.min_population = min_population
        self.min_volume = min_volume

    def admit(self, sgs: SGS, full_size: int) -> bool:
        return (
            full_size >= self.min_population
            and sgs.volume >= self.min_volume
        )


class PatternArchiver:
    """Feeds selected clusters, at a chosen resolution, into the base.

    ``level`` pins a fixed resolution (0 = Basic SGS). Alternatively,
    ``byte_budget_per_cluster`` activates budget-aware selection: the
    finest level whose predicted size fits the budget is used, up to
    ``max_level`` coarsenings with compression rate ``factor``.
    """

    def __init__(
        self,
        base: PatternBase,
        policy: Optional[ArchivePolicy] = None,
        level: int = 0,
        factor: int = 3,
        max_level: int = 3,
        byte_budget_per_cluster: Optional[int] = None,
    ):
        if level < 0:
            raise ValueError("level must be non-negative")
        self.base = base
        self.policy = policy if policy is not None else ArchiveAllPolicy()
        self.level = level
        self.factor = factor
        self.max_level = max_level
        self.byte_budget_per_cluster = byte_budget_per_cluster

    def _choose_level(self, sgs: SGS) -> int:
        if self.byte_budget_per_cluster is None:
            return self.level
        per_cell = sgs_cell_bytes(sgs.dimensions)
        for level in range(0, self.max_level + 1):
            cells = cells_needed_at_level(sgs, self.factor, level)
            if cells * per_cell <= self.byte_budget_per_cluster:
                return level
        return self.max_level

    def _at_level(self, sgs: SGS, level: int) -> SGS:
        current = sgs
        for _ in range(level):
            current = coarsen_sgs(current, self.factor)
        return current

    def archive_output(self, output: WindowOutput) -> List[ArchivedPattern]:
        """Archive the admitted clusters of one window's output."""
        archived: List[ArchivedPattern] = []
        for cluster, sgs in zip(output.clusters, output.summaries):
            if not self.policy.admit(sgs, cluster.size):
                continue
            level = self._choose_level(sgs)
            stored = self._at_level(sgs, level)
            archived.append(self.base.add(stored, cluster.size))
        return archived

    def archive_sgs(self, sgs: SGS, full_size: int) -> Optional[ArchivedPattern]:
        """Archive one summary directly (convenience for tests/tools)."""
        if not self.policy.admit(sgs, full_size):
            return None
        stored = self._at_level(sgs, self._choose_level(sgs))
        return self.base.add(stored, full_size)
