"""Pattern archival and matching: Archiver, Pattern Base, Analyzer."""

from repro.archive.analyzer import MatchResult, MatchStats, PatternAnalyzer
from repro.archive.archiver import (
    ArchiveAllPolicy,
    FeatureFilterPolicy,
    PatternArchiver,
    SamplingPolicy,
)
from repro.archive.pattern_base import ArchivedPattern, PatternBase

__all__ = [
    "ArchiveAllPolicy",
    "ArchivedPattern",
    "FeatureFilterPolicy",
    "MatchResult",
    "MatchStats",
    "PatternAnalyzer",
    "PatternArchiver",
    "PatternBase",
    "SamplingPolicy",
]
