"""Pattern-record storage backends: the ``PatternStore`` seam.

The Pattern Base is the paper's long-term "Stream History"; this module
decides *where its pattern records live*. :class:`PatternBase` keeps its
query-time structures — the R-tree, the feature grid, the inverted
cell-signature index — in memory either way; the store behind them is
pluggable:

* :class:`MemoryStore` (default) — the original in-process dict. Every
  archived pattern is a fully materialized
  :class:`~repro.archive.pattern_base.ArchivedPattern`; durability is
  whatever :func:`~repro.archive.persistence.dump_pattern_base` the
  caller remembers to run. Zero behavior change from the pre-seam code.
* :class:`SqliteStore` — a disk-backed SQLite database in WAL mode
  (``synchronous=NORMAL``, the Paper-Scanner recipe): patterns are
  serialized SGS blobs plus their index keys (features, MBR,
  ``full_size``, ``ladder_hint``) as columns, with materialized
  feature-grid bin rows and inverted posting lists as tables. Each
  archival commits **one transaction before the caller is acked**, so a
  crash never loses an acknowledged pattern, and WAL keeps readers
  concurrent with archival writes. Reopening the store rebuilds the
  in-memory indexes from the metadata columns alone — no SGS blob is
  parsed until matching actually needs its cells.

Lazy hydration: a SQLite-backed base holds one light
:class:`StoredPattern` stub per pattern (id, features, MBR, sizes —
~100 bytes) whose ``sgs`` attribute loads the blob on first touch
through a bounded LRU of materialized summaries. ``PatternBase.get`` /
``all_patterns`` therefore stream from disk past the cache, which is
what lets an archive grow past RAM.

Store specs (threaded through config, the framework, and the CLI as
``--store``)::

    memory                  the default in-process dict
    sqlite:PATH             disk-backed store at PATH
    sqlite:PATH?cache=N     ... with an N-pattern hydration LRU
"""

from __future__ import annotations

import json
import math
import sqlite3
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.archive.pattern_base import ArchivedPattern
from repro.core.features import ClusterFeatures
from repro.core.serialize import sgs_from_bytes, sgs_to_bytes
from repro.core.sgs import SGS
from repro.eval.memory import sgs_bytes
from repro.geometry.mbr import MBR

__all__ = [
    "MemoryStore",
    "PatternStore",
    "SqliteStore",
    "StoredPattern",
    "STORE_BACKENDS",
    "open_store",
    "parse_store_spec",
    "validate_store_spec",
]

#: The supported store backends (spec prefixes).
STORE_BACKENDS = ("memory", "sqlite")

#: Default size of the SQLite store's hydration LRU (materialized SGS
#: summaries kept in memory; everything else streams from disk).
DEFAULT_CACHE_PATTERNS = 128

Coord = Tuple[int, ...]
#: ``{level: iterable of signature cells}`` — one pattern's inverted
#: cell-signature contribution, as persisted into the postings table.
Signatures = Dict[int, Iterable[Coord]]
#: ``(levels, factor, dimensions)`` of the inverted index the
#: signatures belong to.
InvertedConfig = Tuple[Sequence[int], int, int]


def parse_store_spec(spec: str) -> Tuple[str, Optional[str], Dict[str, int]]:
    """Split a store spec into ``(backend, path, options)``.

    Raises :class:`ValueError` for unknown backends, missing paths, or
    malformed options — the same validation `config` runs up front.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError("store spec must be a non-empty string")
    if spec == "memory":
        return ("memory", None, {})
    backend, sep, rest = spec.partition(":")
    if backend != "sqlite" or not sep:
        raise ValueError(
            f"unknown store spec {spec!r}; expected 'memory' or "
            f"'sqlite:PATH[?cache=N]'"
        )
    path, _, query = rest.partition("?")
    if not path:
        raise ValueError("sqlite store spec needs a path: 'sqlite:PATH'")
    options: Dict[str, int] = {}
    if query:
        for part in query.split("&"):
            name, eq, value = part.partition("=")
            if name != "cache" or not eq:
                raise ValueError(
                    f"unknown store option {part!r} in {spec!r} "
                    f"(supported: cache=N)"
                )
            try:
                options["cache"] = int(value)
            except ValueError:
                raise ValueError(
                    f"store cache size must be an integer, got {value!r}"
                ) from None
            if options["cache"] < 1:
                raise ValueError("store cache size must be positive")
    return ("sqlite", path, options)


def validate_store_spec(spec: Optional[str]) -> Optional[str]:
    """Validate a store spec (``None`` means the default memory store)."""
    if spec is not None:
        parse_store_spec(spec)
    return spec


def open_store(spec: Optional[str]) -> "PatternStore":
    """Open the store a spec names (``None``/"memory" → a fresh
    :class:`MemoryStore`; ``sqlite:PATH`` opens or creates the file)."""
    if spec is None:
        return MemoryStore()
    backend, path, options = parse_store_spec(spec)
    if backend == "memory":
        return MemoryStore()
    return SqliteStore(
        path, cache_patterns=options.get("cache", DEFAULT_CACHE_PATTERNS)
    )


class PatternStore:
    """Where a Pattern Base's pattern records live.

    The write path is two-phase so :meth:`~repro.archive.pattern_base.
    PatternBase.restore` stays exception-safe end to end:
    :meth:`register` materializes the canonical stored object (and
    stages its serialized form) without making anything visible;
    :meth:`commit` publishes it — for a durable backend, in a single
    transaction that also carries the pattern's feature-grid bin row
    and inverted posting rows. :meth:`forget` abandons a registration
    when an in-memory index rejected the pattern in between.
    """

    backend: str = "?"
    #: Whether commits survive the process (drives write-through and
    #: CLI/service reporting).
    durable: bool = False

    # -- write path ----------------------------------------------------

    def register(self, pattern: ArchivedPattern) -> ArchivedPattern:
        raise NotImplementedError

    def commit(
        self,
        stored: ArchivedPattern,
        bins: Optional[Coord] = None,
        signatures: Optional[Signatures] = None,
        inverted_config: Optional[InvertedConfig] = None,
    ) -> None:
        raise NotImplementedError

    def forget(self, pattern_id: int) -> None:
        raise NotImplementedError

    def put(
        self,
        pattern: ArchivedPattern,
        bins: Optional[Coord] = None,
        signatures: Optional[Signatures] = None,
        inverted_config: Optional[InvertedConfig] = None,
    ) -> ArchivedPattern:
        """One-call register+commit (the sharded write-through path)."""
        stored = self.register(pattern)
        try:
            self.commit(
                stored,
                bins=bins,
                signatures=signatures,
                inverted_config=inverted_config,
            )
        except BaseException:
            self.forget(stored.pattern_id)
            raise
        return stored

    def delete(self, pattern_id: int) -> bool:
        raise NotImplementedError

    # -- read path -----------------------------------------------------

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        raise NotImplementedError

    def all(self) -> Iterator[ArchivedPattern]:
        raise NotImplementedError

    def summary_bytes(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, pattern_id: int) -> bool:
        return self.get(pattern_id) is not None

    # -- inverted-index persistence ------------------------------------

    def load_inverted(self):
        """The persisted inverted cell-signature index, rebuilt from
        the postings table without any coarsening arithmetic (``None``
        when the store carries no postings)."""
        return None

    def replace_postings(self, index) -> None:
        """Rewrite the postings table to mirror ``index`` (the
        enable/attach seam; ``None`` clears it)."""

    # -- bulk loads ----------------------------------------------------

    def begin_bulk(self) -> None:
        """Start an all-or-nothing load (e.g. restoring a format-v3
        dump): commits inside are staged, not published."""

    def end_bulk(self, success: bool = True) -> None:
        """Finish a bulk load: publish everything, or roll the store
        back to its pre-bulk state so a torn input leaves no partial
        archive behind."""

    # -- lifecycle / telemetry -----------------------------------------

    def note_ladder_hint(self, pattern_id: int, hint: int) -> None:
        """Persist an updated cache-warmth byte (advisory; memory
        stores keep it on the pattern object itself)."""

    def describe(self) -> Dict[str, object]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryStore(PatternStore):
    """The original in-process dict of materialized patterns."""

    backend = "memory"
    durable = False

    def __init__(self):
        self._patterns: Dict[int, ArchivedPattern] = {}

    def register(self, pattern: ArchivedPattern) -> ArchivedPattern:
        if pattern.pattern_id in self._patterns:
            raise ValueError(
                f"pattern id {pattern.pattern_id} already archived"
            )
        return pattern

    def commit(
        self,
        stored: ArchivedPattern,
        bins: Optional[Coord] = None,
        signatures: Optional[Signatures] = None,
        inverted_config: Optional[InvertedConfig] = None,
    ) -> None:
        self._patterns[stored.pattern_id] = stored

    def forget(self, pattern_id: int) -> None:
        self._patterns.pop(pattern_id, None)

    def delete(self, pattern_id: int) -> bool:
        return self._patterns.pop(pattern_id, None) is not None

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        return self._patterns.get(pattern_id)

    def all(self) -> Iterator[ArchivedPattern]:
        return iter(self._patterns.values())

    def summary_bytes(self) -> int:
        return sum(p.summary_bytes() for p in self._patterns.values())

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._patterns

    def describe(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "durable": self.durable,
            "patterns": len(self._patterns),
        }


class StoredPattern(ArchivedPattern):
    """A disk-resident pattern: index keys in memory, SGS on demand.

    Shares :class:`ArchivedPattern`'s surface — the engines, indices,
    and persistence never see the difference — but holds no summary:
    ``sgs`` hydrates from the owning store's LRU on access, and
    ``ladder_hint`` writes through so cache warmth survives reopen.
    """

    __slots__ = ("_store", "_hint", "_nbytes")

    def __init__(
        self,
        store: "SqliteStore",
        pattern_id: int,
        window_index: int,
        full_size: int,
        ladder_hint: int,
        features: ClusterFeatures,
        mbr: MBR,
        nbytes: int,
    ):
        # Deliberately not calling ArchivedPattern.__init__: it derives
        # features/MBR from a materialized SGS this stub exists to
        # avoid loading.
        self.pattern_id = int(pattern_id)
        self.features = features
        self.mbr = mbr
        self.window_index = int(window_index)
        self.full_size = int(full_size)
        self._store = store
        self._hint = int(ladder_hint)
        self._nbytes = int(nbytes)

    @property
    def sgs(self) -> SGS:
        return self._store._sgs_of(self.pattern_id)

    @property
    def ladder_hint(self) -> int:
        return self._hint

    @ladder_hint.setter
    def ladder_hint(self, value: int) -> None:
        value = int(value)
        if value == self._hint:
            return
        self._hint = value
        self._store.note_ladder_hint(self.pattern_id, value)

    def summary_bytes(self) -> int:
        return self._nbytes


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS patterns (
    pattern_id       INTEGER PRIMARY KEY,
    seq              INTEGER NOT NULL,
    window_index     INTEGER NOT NULL,
    full_size        INTEGER NOT NULL,
    ladder_hint      INTEGER NOT NULL,
    volume           REAL NOT NULL,
    core_count       REAL NOT NULL,
    avg_density      REAL NOT NULL,
    avg_connectivity REAL NOT NULL,
    mbr_lows         TEXT NOT NULL,
    mbr_highs        TEXT NOT NULL,
    summary_bytes    INTEGER NOT NULL,
    blob             BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS patterns_seq ON patterns(seq);
CREATE TABLE IF NOT EXISTS feature_bins (
    pattern_id INTEGER PRIMARY KEY,
    b0 INTEGER NOT NULL,
    b1 INTEGER NOT NULL,
    b2 INTEGER NOT NULL,
    b3 INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS feature_bins_key
    ON feature_bins(b0, b1, b2, b3);
CREATE TABLE IF NOT EXISTS postings (
    level      INTEGER NOT NULL,
    cell       TEXT NOT NULL,
    pattern_id INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS postings_key ON postings(level, cell);
CREATE INDEX IF NOT EXISTS postings_pattern ON postings(pattern_id);
"""


class SqliteStore(PatternStore):
    """Disk-backed pattern storage: SQLite, WAL, incremental commits.

    Pragmas follow the Paper-Scanner template: ``journal_mode=WAL`` so
    readers never block on archival writes, ``synchronous=NORMAL`` so a
    commit survives a process crash (an OS/power failure can lose the
    newest WAL frames but never corrupts the database — the standard
    WAL trade). One connection serves all threads behind a lock; the
    serving layer's own request lock already serializes mutation.
    """

    backend = "sqlite"
    durable = True

    def __init__(
        self,
        path: Union[str, Path],
        cache_patterns: int = DEFAULT_CACHE_PATTERNS,
    ):
        self.path = str(path)
        self.cache_patterns = max(1, int(cache_patterns))
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._stubs: Dict[int, StoredPattern] = {}
        self._cache: "OrderedDict[int, SGS]" = OrderedDict()
        #: Registered-but-uncommitted rows: ``id -> (row, blob, sgs)``.
        self._pending: Dict[int, Tuple[tuple, bytes, SGS]] = {}
        self._bulk_depth = 0
        self._seq = 0
        self.stats = {"hydrations": 0, "cache_hits": 0, "evictions": 0}
        self._load_stubs()

    # -- open ----------------------------------------------------------

    def _load_stubs(self) -> None:
        rows = self._conn.execute(
            "SELECT pattern_id, seq, window_index, full_size, ladder_hint,"
            " volume, core_count, avg_density, avg_connectivity,"
            " mbr_lows, mbr_highs, summary_bytes"
            " FROM patterns ORDER BY seq"
        ).fetchall()
        for (
            pattern_id, seq, window_index, full_size, ladder_hint,
            volume, core_count, avg_density, avg_connectivity,
            mbr_lows, mbr_highs, nbytes,
        ) in rows:
            features = ClusterFeatures(
                volume=volume,
                core_count=core_count,
                avg_density=avg_density,
                avg_connectivity=avg_connectivity,
            )
            mbr = MBR(json.loads(mbr_lows), json.loads(mbr_highs))
            self._stubs[pattern_id] = StoredPattern(
                self, pattern_id, window_index, full_size, ladder_hint,
                features, mbr, nbytes,
            )
            self._seq = max(self._seq, seq + 1)

    # -- write path ----------------------------------------------------

    def register(self, pattern: ArchivedPattern) -> ArchivedPattern:
        with self._lock:
            if pattern.pattern_id in self._stubs:
                raise ValueError(
                    f"pattern id {pattern.pattern_id} already archived"
                )
            sgs = pattern.sgs
            blob = sgs_to_bytes(sgs)
            nbytes = sgs_bytes(sgs)
            stub = StoredPattern(
                self,
                pattern.pattern_id,
                pattern.window_index,
                pattern.full_size,
                pattern.ladder_hint,
                pattern.features,
                pattern.mbr,
                nbytes,
            )
            row = (
                stub.pattern_id,
                self._seq,
                stub.window_index,
                stub.full_size,
                int(pattern.ladder_hint),
                stub.features.volume,
                stub.features.core_count,
                stub.features.avg_density,
                stub.features.avg_connectivity,
                json.dumps(list(stub.mbr.lows)),
                json.dumps(list(stub.mbr.highs)),
                nbytes,
            )
            self._pending[stub.pattern_id] = (row, blob, sgs)
            return stub

    def commit(
        self,
        stored: ArchivedPattern,
        bins: Optional[Coord] = None,
        signatures: Optional[Signatures] = None,
        inverted_config: Optional[InvertedConfig] = None,
    ) -> None:
        with self._lock:
            row, blob, sgs = self._pending[stored.pattern_id]
            own_txn = self._bulk_depth == 0
            if own_txn:
                self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO patterns (pattern_id, seq, window_index,"
                    " full_size, ladder_hint, volume, core_count,"
                    " avg_density, avg_connectivity, mbr_lows, mbr_highs,"
                    " summary_bytes, blob)"
                    " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
                    row + (blob,),
                )
                if bins is not None:
                    self._conn.execute(
                        "INSERT INTO feature_bins (pattern_id, b0, b1, b2,"
                        " b3) VALUES (?,?,?,?,?)",
                        (stored.pattern_id, *bins),
                    )
                if signatures is not None:
                    if inverted_config is not None:
                        self._write_inverted_meta(*inverted_config)
                    self._insert_postings(stored.pattern_id, signatures)
                if own_txn:
                    self._conn.execute("COMMIT")
            except BaseException:
                if own_txn:
                    self._conn.execute("ROLLBACK")
                raise
            del self._pending[stored.pattern_id]
            self._seq += 1
            self._stubs[stored.pattern_id] = stored  # type: ignore[assignment]
            self._cache_put(stored.pattern_id, sgs)

    def forget(self, pattern_id: int) -> None:
        with self._lock:
            self._pending.pop(pattern_id, None)

    def delete(self, pattern_id: int) -> bool:
        with self._lock:
            if pattern_id not in self._stubs:
                return False
            own_txn = self._bulk_depth == 0
            if own_txn:
                self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "DELETE FROM postings WHERE pattern_id = ?",
                    (pattern_id,),
                )
                self._conn.execute(
                    "DELETE FROM feature_bins WHERE pattern_id = ?",
                    (pattern_id,),
                )
                self._conn.execute(
                    "DELETE FROM patterns WHERE pattern_id = ?",
                    (pattern_id,),
                )
                if own_txn:
                    self._conn.execute("COMMIT")
            except BaseException:
                if own_txn:
                    self._conn.execute("ROLLBACK")
                raise
            del self._stubs[pattern_id]
            self._cache.pop(pattern_id, None)
            return True

    def note_ladder_hint(self, pattern_id: int, hint: int) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE patterns SET ladder_hint = ? WHERE pattern_id = ?",
                (int(hint), pattern_id),
            )

    # -- read path -----------------------------------------------------

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        return self._stubs.get(pattern_id)

    def all(self) -> Iterator[ArchivedPattern]:
        return iter(list(self._stubs.values()))

    def summary_bytes(self) -> int:
        return sum(stub.summary_bytes() for stub in self._stubs.values())

    def __len__(self) -> int:
        return len(self._stubs)

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._stubs

    def _sgs_of(self, pattern_id: int) -> SGS:
        with self._lock:
            cached = self._cache.get(pattern_id)
            if cached is not None:
                self._cache.move_to_end(pattern_id)
                self.stats["cache_hits"] += 1
                return cached
            pending = self._pending.get(pattern_id)
            if pending is not None:
                return pending[2]
            row = self._conn.execute(
                "SELECT blob FROM patterns WHERE pattern_id = ?",
                (pattern_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"pattern {pattern_id} not in store")
            sgs = sgs_from_bytes(row[0])
            self.stats["hydrations"] += 1
            self._cache_put(pattern_id, sgs)
            return sgs

    def _cache_put(self, pattern_id: int, sgs: SGS) -> None:
        self._cache[pattern_id] = sgs
        self._cache.move_to_end(pattern_id)
        while len(self._cache) > self.cache_patterns:
            self._cache.popitem(last=False)
            self.stats["evictions"] += 1

    # -- inverted-index persistence ------------------------------------

    def _write_inverted_meta(
        self, levels: Sequence[int], factor: int, dimensions: int
    ) -> None:
        wanted = {
            "inverted_levels": json.dumps(sorted(int(lv) for lv in levels)),
            "inverted_factor": str(int(factor)),
            "inverted_dims": str(int(dimensions)),
        }
        for key, value in wanted.items():
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )

    def _insert_postings(
        self, pattern_id: int, signatures: Signatures
    ) -> None:
        for level in sorted(signatures):
            cells = sorted(tuple(cell) for cell in signatures[level])
            self._conn.executemany(
                "INSERT INTO postings (level, cell, pattern_id)"
                " VALUES (?,?,?)",
                [
                    (int(level), json.dumps(list(cell)), pattern_id)
                    for cell in cells
                ],
            )

    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def inverted_config(self) -> Optional[InvertedConfig]:
        """The persisted inverted-index configuration, or ``None``."""
        with self._lock:
            levels = self._meta("inverted_levels")
            if levels is None:
                return None
            return (
                tuple(json.loads(levels)),
                int(self._meta("inverted_factor")),
                int(self._meta("inverted_dims")),
            )

    def load_inverted(self):
        from repro.retrieval.inverted import InvertedCellIndex

        with self._lock:
            config = self.inverted_config()
            if config is None:
                return None
            levels, factor, dims = config
            index = InvertedCellIndex(levels, factor)
            cells_by_pattern: Dict[int, Dict[int, List[Coord]]] = {}
            for level, cell, pattern_id in self._conn.execute(
                "SELECT level, cell, pattern_id FROM postings"
            ):
                per_level = cells_by_pattern.setdefault(pattern_id, {})
                per_level.setdefault(level, []).append(
                    tuple(json.loads(cell))
                )
            for pattern_id in sorted(self._stubs):
                per_level = cells_by_pattern.get(pattern_id)
                if per_level is None:
                    # Postings don't cover the archive (e.g. patterns
                    # written through a path that maintained no index):
                    # report nothing rather than a partial index.
                    return None
                index.restore_signatures(
                    pattern_id,
                    {level: per_level.get(level, []) for level in levels},
                    dims,
                )
            return index

    def replace_postings(self, index) -> None:
        with self._lock:
            own_txn = self._bulk_depth == 0
            if own_txn:
                self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute("DELETE FROM postings")
                if index is None:
                    self._conn.execute(
                        "DELETE FROM meta WHERE key IN ('inverted_levels',"
                        " 'inverted_factor', 'inverted_dims')"
                    )
                else:
                    dims = 0
                    for pattern_id in sorted(index.pattern_ids()):
                        signature = index.signature(
                            pattern_id, index.levels[0]
                        )
                        dims = len(signature.histograms) or dims
                        self._insert_postings(
                            pattern_id,
                            {
                                level: index.signature(
                                    pattern_id, level
                                ).cells
                                for level in index.levels
                            },
                        )
                    self._write_inverted_meta(
                        index.levels, index.factor, dims
                    )
                if own_txn:
                    self._conn.execute("COMMIT")
            except BaseException:
                if own_txn:
                    self._conn.execute("ROLLBACK")
                raise

    # -- bulk loads ----------------------------------------------------

    def begin_bulk(self) -> None:
        with self._lock:
            if self._bulk_depth == 0:
                self._conn.execute("BEGIN IMMEDIATE")
            self._bulk_depth += 1

    def end_bulk(self, success: bool = True) -> None:
        with self._lock:
            if self._bulk_depth <= 0:
                return
            self._bulk_depth -= 1
            if self._bulk_depth > 0:
                return
            if success:
                self._conn.execute("COMMIT")
                return
            self._conn.execute("ROLLBACK")
            # Rolled-back rows may already be mirrored in memory:
            # rebuild the stub table from what the database actually
            # holds, so a torn load leaves no partial archive.
            self._stubs.clear()
            self._cache.clear()
            self._pending.clear()
            self._seq = 0
            self._load_stubs()

    # -- lifecycle / telemetry -----------------------------------------

    def describe(self) -> Dict[str, object]:
        with self._lock:
            config = self.inverted_config()
            return {
                "backend": self.backend,
                "durable": self.durable,
                "path": self.path,
                "patterns": len(self._stubs),
                "cache_patterns": self.cache_patterns,
                "cached": len(self._cache),
                "hydrations": self.stats["hydrations"],
                "cache_hits": self.stats["cache_hits"],
                "evictions": self.stats["evictions"],
                "inverted_levels": (
                    list(config[0]) if config is not None else None
                ),
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def feature_bins_for(
    features: Sequence[float], bin_widths: Sequence[float]
) -> Coord:
    """The feature-grid bin key of a feature vector (the same floored
    division :class:`~repro.index.feature_grid.FeatureGridIndex` bins
    with — materialized per pattern in the store's ``feature_bins``
    table)."""
    return tuple(
        int(math.floor(value / width))
        for value, width in zip(features, bin_widths)
    )
