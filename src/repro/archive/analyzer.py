"""The Pattern Analyzer: filter-and-refine cluster matching queries.

Section 7.2's two-phase execution:

1. **Filter** — locate candidates through a feature index. Position
   sensitive: the R-tree returns the overlapping patterns. Otherwise:
   the non-locational feature grid is range-queried with the per-feature
   bounds derived from the distance threshold and weights. Candidates
   are then screened by the cheap cluster-level feature distance.
2. **Refine** — only candidates surviving the filter get the expensive
   grid-cell-level match (with the anytime alignment search in the
   non-position-sensitive case); those within the threshold are returned,
   closest first.

The returned :class:`MatchStats` record how many candidates each phase
touched — the basis of the paper's "only 6% needed the grid-level match"
observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.core.features import ClusterFeatures
from repro.core.sgs import SGS
from repro.matching.alignment import anytime_alignment_search
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import (
    DistanceMetricSpec,
    cluster_feature_distance,
    feature_search_ranges,
)


@dataclass(frozen=True)
class MatchResult:
    """One matched pattern with its refined distance."""

    pattern: ArchivedPattern
    distance: float
    alignment: tuple


@dataclass
class MatchStats:
    """Per-query phase accounting."""

    archive_size: int = 0
    index_candidates: int = 0
    refined: int = 0
    matches: int = 0

    @property
    def refine_fraction(self) -> float:
        """Fraction of archived clusters that needed the cell-level match."""
        if self.archive_size == 0:
            return 0.0
        return self.refined / self.archive_size


class PatternAnalyzer:
    """Executes cluster matching queries against a Pattern Base."""

    def __init__(
        self,
        base: PatternBase,
        spec: Optional[DistanceMetricSpec] = None,
        max_alignment_expansions: int = 32,
    ):
        self.base = base
        self.spec = spec if spec is not None else DistanceMetricSpec()
        self.max_alignment_expansions = max_alignment_expansions

    def match(
        self,
        query: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
    ) -> tuple:
        """Run one cluster matching query.

        Returns ``(results, stats)``: matches with refined distance
        ``<= threshold`` sorted ascending (truncated to ``top_k`` when
        given), plus the phase statistics.
        """
        spec = spec if spec is not None else self.spec
        stats = MatchStats(archive_size=len(self.base))
        query_features = ClusterFeatures.from_sgs(query)
        query_mbr = query.mbr()

        if spec.position_sensitive:
            candidates = self.base.overlapping(query_mbr)
        else:
            lows, highs = feature_search_ranges(query_features, spec, threshold)
            candidates = self.base.in_feature_ranges(lows, highs)
        stats.index_candidates = len(candidates)

        results: List[MatchResult] = []
        for pattern in candidates:
            coarse = cluster_feature_distance(
                query_features,
                pattern.features,
                spec,
                query_mbr,
                pattern.mbr,
            )
            if coarse > threshold:
                continue
            stats.refined += 1
            if spec.position_sensitive:
                distance = cell_level_distance(query, pattern.sgs, spec, None)
                alignment = (0,) * query.dimensions
            else:
                search = anytime_alignment_search(
                    query,
                    pattern.sgs,
                    spec,
                    max_expansions=self.max_alignment_expansions,
                )
                distance = search.distance
                alignment = search.alignment
            if distance <= threshold:
                results.append(MatchResult(pattern, distance, alignment))

        results.sort(key=lambda r: (r.distance, r.pattern.pattern_id))
        stats.matches = len(results)
        if top_k is not None:
            results = results[:top_k]
        return results, stats
