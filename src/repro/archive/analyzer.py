"""The Pattern Analyzer: filter-and-refine cluster matching queries.

Section 7.2's two-phase execution:

1. **Filter** — locate candidates through a feature index. Position
   sensitive: the R-tree returns the overlapping patterns. Otherwise:
   the non-locational feature grid is range-queried with the per-feature
   bounds derived from the distance threshold and weights. Candidates
   are then screened by the cheap cluster-level feature distance.
2. **Refine** — only candidates surviving the filter get the expensive
   grid-cell-level match (with the anytime alignment search in the
   non-position-sensitive case); those within the threshold are returned,
   closest first.

Since PR 4 the execution itself lives in :mod:`repro.retrieval`: the
analyzer is a thin façade that builds a
:class:`~repro.retrieval.queries.MatchQuery` and hands it to the
:class:`~repro.retrieval.engine.MatchEngine` (exposed as
:attr:`PatternAnalyzer.engine` — planner choice, batched serving, and
the multi-resolution coarse entry are reachable there). The returned
:class:`MatchStats` keep the original phase accounting — the basis of
the paper's "only 6% needed the grid-level match" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.archive.pattern_base import PatternBase
from repro.core.sgs import SGS
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval.engine import EngineStats, MatchEngine, MatchResult

__all__ = ["MatchResult", "MatchStats", "PatternAnalyzer"]


@dataclass
class MatchStats:
    """Per-query phase accounting (compatibility view of
    :class:`~repro.retrieval.engine.EngineStats`)."""

    archive_size: int = 0
    index_candidates: int = 0
    refined: int = 0
    matches: int = 0
    entry: str = ""

    @classmethod
    def from_engine(cls, stats: EngineStats) -> "MatchStats":
        return cls(
            archive_size=stats.archive_size,
            index_candidates=stats.gathered,
            refined=stats.refined,
            matches=stats.matches,
            entry=stats.entry,
        )

    @property
    def refine_fraction(self) -> float:
        """Fraction of archived clusters that needed the cell-level match."""
        if self.archive_size == 0:
            return 0.0
        return self.refined / self.archive_size


class PatternAnalyzer:
    """Executes cluster matching queries against a Pattern Base."""

    def __init__(
        self,
        base: PatternBase,
        spec: Optional[DistanceMetricSpec] = None,
        max_alignment_expansions: int = 32,
        coarse_level: int = 0,
        engine=None,
    ):
        """``engine`` injects a prebuilt engine; without one, the
        analyzer builds the engine matching the base — a
        :class:`~repro.retrieval.shards.ShardedMatchEngine` for a
        partitioned archive, a plain :class:`MatchEngine` otherwise —
        so the façade serves either transparently."""
        self.base = base
        if engine is None:
            from repro.retrieval.shards import (
                ShardedMatchEngine,
                ShardedPatternBase,
            )

            engine_cls = (
                ShardedMatchEngine
                if isinstance(base, ShardedPatternBase)
                else MatchEngine
            )
            engine = engine_cls(
                base,
                spec=spec,
                max_alignment_expansions=max_alignment_expansions,
                coarse_level=coarse_level,
            )
        self.engine = engine

    @property
    def spec(self) -> DistanceMetricSpec:
        return self.engine.spec

    @property
    def max_alignment_expansions(self) -> int:
        return self.engine.max_alignment_expansions

    def match(
        self,
        query: SGS,
        threshold: float,
        top_k: Optional[int] = None,
        spec: Optional[DistanceMetricSpec] = None,
    ) -> Tuple[List[MatchResult], MatchStats]:
        """Run one cluster matching query.

        Returns ``(results, stats)``: matches with refined distance
        ``<= threshold`` sorted ascending (truncated to ``top_k`` when
        given), plus the phase statistics.
        """
        results, engine_stats = self.engine.match_sgs(
            query, threshold, top_k=top_k, spec=spec
        )
        return results, MatchStats.from_engine(engine_stats)
