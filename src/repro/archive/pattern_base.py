"""The Pattern Base: organized storage of archived cluster summaries.

Section 7.1: archived clusters are organized by *two* feature indices —
an R-tree over each cluster's MBR (the locational feature index) and a
4-D grid over the non-locational features captured by SGS (volume, status
count, average density, average connectivity). Matching queries use one
or the other to locate candidates, depending on position sensitivity.

The pattern records themselves live behind the
:class:`~repro.archive.store.PatternStore` seam: in-process by default,
or on disk in a SQLite-WAL store (``store="sqlite:PATH"``) where every
:meth:`PatternBase.restore` commits one transaction before returning —
crash-safe continuous archival, with the query-time indices rebuilt
from stored metadata on reopen and summaries hydrated lazily through
the store's LRU.
"""

from __future__ import annotations

import weakref
from typing import Iterator, List, Optional, Sequence, Union

from repro.core.features import ClusterFeatures
from repro.core.sgs import SGS
from repro.eval.memory import sgs_bytes
from repro.geometry.mbr import MBR
from repro.index.feature_grid import FeatureGridIndex
from repro.index.rtree import RTree

#: Default feature-grid bin widths for (volume, core_count, avg_density,
#: avg_connectivity). Bins only affect lookup speed, never results.
DEFAULT_BIN_WIDTHS = (16.0, 8.0, 2.0, 1.0)


class ArchivedPattern:
    """One archived cluster: its SGS plus derived index keys.

    ``ladder_hint`` records how many multi-resolution ladder levels a
    matching engine has materialized above the stored representation —
    a cache-warmth hint carried by the v2 archive format so a reloaded
    archive can rebuild its coarse-entry caches eagerly. It never
    affects matching results.
    """

    __slots__ = (
        "pattern_id",
        "sgs",
        "features",
        "mbr",
        "window_index",
        "full_size",
        "ladder_hint",
    )

    def __init__(
        self,
        pattern_id: int,
        sgs: SGS,
        full_size: int,
        ladder_hint: int = 0,
    ):
        self.pattern_id = pattern_id
        self.sgs = sgs
        self.features = ClusterFeatures.from_sgs(sgs)
        self.mbr = sgs.mbr()
        self.window_index = sgs.window_index
        self.full_size = int(full_size)
        self.ladder_hint = int(ladder_hint)

    def summary_bytes(self) -> int:
        return sgs_bytes(self.sgs)

    def __repr__(self) -> str:
        return (
            f"ArchivedPattern(id={self.pattern_id}, "
            f"window={self.window_index}, cells={len(self.sgs)})"
        )


class PatternBase:
    """Dual-indexed store of archived patterns.

    ``store`` selects where pattern records live: ``None`` (or
    ``"memory"``) keeps the original in-process dict, a spec string
    like ``"sqlite:history.db"`` opens a disk-backed store (reloading
    any patterns it already holds), and an already-open
    :class:`~repro.archive.store.PatternStore` is adopted as-is.
    """

    def __init__(
        self,
        bin_widths: Sequence[float] = DEFAULT_BIN_WIDTHS,
        inverted_levels: Optional[Sequence[int]] = None,
        inverted_factor: int = 3,
        store: Union[None, str, "object"] = None,
    ):
        from repro.archive.store import PatternStore, open_store

        if store is None or isinstance(store, str):
            self._store = open_store(store)
        elif isinstance(store, PatternStore):
            self._store = store
        else:
            raise TypeError(
                "store must be None, a spec string, or a PatternStore"
            )
        self._next_id = 0
        self._locational = RTree()
        self._features = FeatureGridIndex(bin_widths)
        #: Optional third index: the inverted cell-signature index
        #: (posting lists over canonical-origin coarse cells), kept in
        #: lock-step with the archive so coarse screening never walks a
        #: per-pattern ladder (see :mod:`repro.retrieval.inverted`).
        self._inverted = None
        #: Weakly-held removal listeners (matching engines drop their
        #: cached ladders through this when maintenance evicts).
        self._removal_listeners: List[weakref.ref] = []
        # Reopen path: a pre-populated store (a reopened SQLite file)
        # rebuilds the query-time indices from stored metadata alone —
        # no SGS blob is parsed here.
        for pattern in self._store.all():
            self._locational.insert(pattern.mbr, pattern)
            self._features.insert(pattern.features.as_tuple(), pattern)
            self._next_id = max(self._next_id, pattern.pattern_id + 1)
        loaded = self._store.load_inverted()
        if loaded is not None and len(loaded) == len(self._store):
            self._inverted = loaded
        if inverted_levels:
            wanted = {int(level) for level in inverted_levels}
            if (
                self._inverted is None
                or not wanted.issubset(self._inverted.levels)
                or self._inverted.factor != int(inverted_factor)
            ):
                self.enable_inverted(inverted_levels, inverted_factor)

    @property
    def store(self):
        """The pattern-record store behind this base."""
        return self._store

    def store_info(self) -> dict:
        """JSON-able description of the backing store (for ``/stats``)."""
        return self._store.describe()

    def add(self, sgs: SGS, full_size: int) -> ArchivedPattern:
        """Archive one summarized cluster; returns its stored form."""
        pattern = ArchivedPattern(self._next_id, sgs, full_size)
        return self.restore(pattern)

    def restore(self, pattern: ArchivedPattern) -> ArchivedPattern:
        """Register an already-materialized pattern under its own id.

        The public seam persistence (and any cross-base migration tool)
        goes through instead of poking the internal dicts and indices:
        the pattern keeps its ``pattern_id``, both feature indices are
        updated, and the id allocator advances past it so later
        :meth:`add` calls never collide.

        The registration is exception-safe end to end: if any index
        rejects the pattern (e.g. NaN features) every structure touched
        so far is unwound, so a failed restore leaves the base exactly
        as it was. On a durable store the commit — the point a crash
        can no longer lose the pattern — happens last, only after every
        index accepted it.
        """
        from repro.archive.store import feature_bins_for

        stored = self._store.register(pattern)
        try:
            self._locational.insert(stored.mbr, stored)
        except BaseException:
            self._store.forget(stored.pattern_id)
            raise
        try:
            self._features.insert(stored.features.as_tuple(), stored)
        except BaseException:
            self._locational.delete(stored.mbr, stored)
            self._store.forget(stored.pattern_id)
            raise
        signatures = None
        inverted_config = None
        if self._inverted is not None:
            try:
                self._inverted.add(stored.pattern_id, pattern.sgs)
            except BaseException:
                self._features.remove(stored.features.as_tuple(), stored)
                self._locational.delete(stored.mbr, stored)
                self._store.forget(stored.pattern_id)
                raise
            signatures = {
                level: self._inverted.signature(
                    stored.pattern_id, level
                ).cells
                for level in self._inverted.levels
            }
            inverted_config = (
                self._inverted.levels,
                self._inverted.factor,
                pattern.sgs.dimensions,
            )
        try:
            self._store.commit(
                stored,
                bins=feature_bins_for(
                    stored.features.as_tuple(), self._features.bin_widths
                ),
                signatures=signatures,
                inverted_config=inverted_config,
            )
        except BaseException:
            if self._inverted is not None:
                self._inverted.remove(stored.pattern_id)
            self._features.remove(stored.features.as_tuple(), stored)
            self._locational.delete(stored.mbr, stored)
            self._store.forget(stored.pattern_id)
            raise
        self._next_id = max(self._next_id, stored.pattern_id + 1)
        return stored

    def add_archived(self, pattern: ArchivedPattern) -> ArchivedPattern:
        """Alias of :meth:`restore` (API-discoverable counterpart of
        :meth:`add` for patterns that already carry an id)."""
        return self.restore(pattern)

    def remove(self, pattern_id: int) -> bool:
        pattern = self._store.get(pattern_id)
        if pattern is None:
            return False
        # Durable removal first: if the store rejects it, the in-memory
        # indices are untouched and the base stays consistent.
        if not self._store.delete(pattern_id):
            return False
        self._locational.delete(pattern.mbr, pattern)
        self._features.remove(pattern.features.as_tuple(), pattern)
        if self._inverted is not None:
            self._inverted.remove(pattern_id)
        self._notify_removed(pattern_id)
        return True

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        return self._store.get(pattern_id)

    def overlapping(self, mbr: MBR) -> List[ArchivedPattern]:
        """Locational-index lookup: patterns whose MBR intersects."""
        return self._locational.search(mbr)

    def in_feature_ranges(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> List[ArchivedPattern]:
        """Non-locational-index lookup over the 4 feature ranges."""
        return self._features.range_query(lows, highs)

    def all_patterns(self) -> Iterator[ArchivedPattern]:
        return self._store.all()

    def feature_index(self) -> FeatureGridIndex:
        """The non-locational feature-grid index (read-only use: query
        planners consult its extents and telemetry)."""
        return self._features

    def locational_index(self) -> RTree:
        """The locational R-tree index (read-only use)."""
        return self._locational

    # ------------------------------------------------------------------
    # The inverted cell-signature index
    # ------------------------------------------------------------------

    def enable_inverted(
        self, levels: Sequence[int], factor: int = 3
    ):
        """Attach (or rebuild) the inverted cell-signature index.

        Signatures for every already-archived pattern are built
        immediately — the "rebuild on legacy load" path — and from then
        on maintained incrementally by :meth:`restore` / :meth:`remove`.
        A durable store persists the rebuilt posting lists. Returns the
        index.
        """
        from repro.retrieval.inverted import InvertedCellIndex

        index = InvertedCellIndex(levels, factor)
        for pattern in self._store.all():
            index.add(pattern.pattern_id, pattern.sgs)
        self._inverted = index
        self._store.replace_postings(index)
        return index

    def attach_inverted(self, index) -> None:
        """Adopt a prebuilt inverted index (the persistence-load seam:
        format v3 restores stored signatures without re-coarsening).
        The index must already cover exactly the archived patterns."""
        missing = [
            pattern_id
            for pattern_id in (p.pattern_id for p in self._store.all())
            if pattern_id not in index
        ]
        if missing or len(index) != len(self._store):
            raise ValueError(
                "inverted index does not match the archive contents"
            )
        self._inverted = index
        self._store.replace_postings(index)

    def inverted_index(self):
        """The inverted cell-signature index, or None when disabled."""
        return self._inverted

    # ------------------------------------------------------------------
    # Removal listeners
    # ------------------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register an object to be told about removals.

        ``listener.pattern_removed(pattern_id)`` is called whenever a
        pattern leaves the base — eviction by the retention manager,
        compaction, explicit removal. Listeners are held weakly, so a
        discarded matching engine never pins the base (nor vice versa).
        """
        # The dedup scan doubles as the pruning pass for dead refs —
        # a grow-only archive never removes, so without this every
        # transient engine would leave a weakref behind forever.
        live: List[weakref.ref] = []
        known = False
        for existing in self._removal_listeners:
            target = existing()
            if target is None:
                continue
            if target is listener:
                known = True
            live.append(existing)
        if not known:
            live.append(weakref.ref(listener))
        self._removal_listeners = live

    def _notify_removed(self, pattern_id: int) -> None:
        if not self._removal_listeners:
            return
        live: List[weakref.ref] = []
        for ref in self._removal_listeners:
            listener = ref()
            if listener is None:
                continue
            listener.pattern_removed(pattern_id)
            live.append(ref)
        self._removal_listeners = live

    def summary_bytes(self) -> int:
        """Total serialized size of all archived summaries."""
        return self._store.summary_bytes()

    def close(self) -> None:
        """Release the backing store (a no-op for the memory store)."""
        self._store.close()

    def __enter__(self) -> "PatternBase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._store
