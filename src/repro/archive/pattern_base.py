"""The Pattern Base: organized storage of archived cluster summaries.

Section 7.1: archived clusters are organized by *two* feature indices —
an R-tree over each cluster's MBR (the locational feature index) and a
4-D grid over the non-locational features captured by SGS (volume, status
count, average density, average connectivity). Matching queries use one
or the other to locate candidates, depending on position sensitivity.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.features import ClusterFeatures
from repro.core.sgs import SGS
from repro.eval.memory import sgs_bytes
from repro.geometry.mbr import MBR
from repro.index.feature_grid import FeatureGridIndex
from repro.index.rtree import RTree

#: Default feature-grid bin widths for (volume, core_count, avg_density,
#: avg_connectivity). Bins only affect lookup speed, never results.
DEFAULT_BIN_WIDTHS = (16.0, 8.0, 2.0, 1.0)


class ArchivedPattern:
    """One archived cluster: its SGS plus derived index keys.

    ``ladder_hint`` records how many multi-resolution ladder levels a
    matching engine has materialized above the stored representation —
    a cache-warmth hint carried by the v2 archive format so a reloaded
    archive can rebuild its coarse-entry caches eagerly. It never
    affects matching results.
    """

    __slots__ = (
        "pattern_id",
        "sgs",
        "features",
        "mbr",
        "window_index",
        "full_size",
        "ladder_hint",
    )

    def __init__(
        self,
        pattern_id: int,
        sgs: SGS,
        full_size: int,
        ladder_hint: int = 0,
    ):
        self.pattern_id = pattern_id
        self.sgs = sgs
        self.features = ClusterFeatures.from_sgs(sgs)
        self.mbr = sgs.mbr()
        self.window_index = sgs.window_index
        self.full_size = int(full_size)
        self.ladder_hint = int(ladder_hint)

    def summary_bytes(self) -> int:
        return sgs_bytes(self.sgs)

    def __repr__(self) -> str:
        return (
            f"ArchivedPattern(id={self.pattern_id}, "
            f"window={self.window_index}, cells={len(self.sgs)})"
        )


class PatternBase:
    """Dual-indexed store of archived patterns."""

    def __init__(
        self,
        bin_widths: Sequence[float] = DEFAULT_BIN_WIDTHS,
        inverted_levels: Optional[Sequence[int]] = None,
        inverted_factor: int = 3,
    ):
        self._patterns: Dict[int, ArchivedPattern] = {}
        self._next_id = 0
        self._locational = RTree()
        self._features = FeatureGridIndex(bin_widths)
        #: Optional third index: the inverted cell-signature index
        #: (posting lists over canonical-origin coarse cells), kept in
        #: lock-step with the archive so coarse screening never walks a
        #: per-pattern ladder (see :mod:`repro.retrieval.inverted`).
        self._inverted = None
        #: Weakly-held removal listeners (matching engines drop their
        #: cached ladders through this when maintenance evicts).
        self._removal_listeners: List[weakref.ref] = []
        if inverted_levels:
            self.enable_inverted(inverted_levels, inverted_factor)

    def add(self, sgs: SGS, full_size: int) -> ArchivedPattern:
        """Archive one summarized cluster; returns its stored form."""
        pattern = ArchivedPattern(self._next_id, sgs, full_size)
        return self.restore(pattern)

    def restore(self, pattern: ArchivedPattern) -> ArchivedPattern:
        """Register an already-materialized pattern under its own id.

        The public seam persistence (and any cross-base migration tool)
        goes through instead of poking the internal dicts and indices:
        the pattern keeps its ``pattern_id``, both feature indices are
        updated, and the id allocator advances past it so later
        :meth:`add` calls never collide.
        """
        if pattern.pattern_id in self._patterns:
            raise ValueError(
                f"pattern id {pattern.pattern_id} already archived"
            )
        self._patterns[pattern.pattern_id] = pattern
        self._locational.insert(pattern.mbr, pattern)
        self._features.insert(pattern.features.as_tuple(), pattern)
        if self._inverted is not None:
            self._inverted.add(pattern.pattern_id, pattern.sgs)
        self._next_id = max(self._next_id, pattern.pattern_id + 1)
        return pattern

    def add_archived(self, pattern: ArchivedPattern) -> ArchivedPattern:
        """Alias of :meth:`restore` (API-discoverable counterpart of
        :meth:`add` for patterns that already carry an id)."""
        return self.restore(pattern)

    def remove(self, pattern_id: int) -> bool:
        pattern = self._patterns.pop(pattern_id, None)
        if pattern is None:
            return False
        self._locational.delete(pattern.mbr, pattern)
        self._features.remove(pattern.features.as_tuple(), pattern)
        if self._inverted is not None:
            self._inverted.remove(pattern_id)
        self._notify_removed(pattern_id)
        return True

    def get(self, pattern_id: int) -> Optional[ArchivedPattern]:
        return self._patterns.get(pattern_id)

    def overlapping(self, mbr: MBR) -> List[ArchivedPattern]:
        """Locational-index lookup: patterns whose MBR intersects."""
        return self._locational.search(mbr)

    def in_feature_ranges(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> List[ArchivedPattern]:
        """Non-locational-index lookup over the 4 feature ranges."""
        return self._features.range_query(lows, highs)

    def all_patterns(self) -> Iterator[ArchivedPattern]:
        return iter(self._patterns.values())

    def feature_index(self) -> FeatureGridIndex:
        """The non-locational feature-grid index (read-only use: query
        planners consult its extents and telemetry)."""
        return self._features

    def locational_index(self) -> RTree:
        """The locational R-tree index (read-only use)."""
        return self._locational

    # ------------------------------------------------------------------
    # The inverted cell-signature index
    # ------------------------------------------------------------------

    def enable_inverted(
        self, levels: Sequence[int], factor: int = 3
    ):
        """Attach (or rebuild) the inverted cell-signature index.

        Signatures for every already-archived pattern are built
        immediately — the "rebuild on legacy load" path — and from then
        on maintained incrementally by :meth:`restore` / :meth:`remove`.
        Returns the index.
        """
        from repro.retrieval.inverted import InvertedCellIndex

        index = InvertedCellIndex(levels, factor)
        for pattern in self._patterns.values():
            index.add(pattern.pattern_id, pattern.sgs)
        self._inverted = index
        return index

    def attach_inverted(self, index) -> None:
        """Adopt a prebuilt inverted index (the persistence-load seam:
        format v3 restores stored signatures without re-coarsening).
        The index must already cover exactly the archived patterns."""
        missing = [
            pattern_id
            for pattern_id in self._patterns
            if pattern_id not in index
        ]
        if missing or len(index) != len(self._patterns):
            raise ValueError(
                "inverted index does not match the archive contents"
            )
        self._inverted = index

    def inverted_index(self):
        """The inverted cell-signature index, or None when disabled."""
        return self._inverted

    # ------------------------------------------------------------------
    # Removal listeners
    # ------------------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register an object to be told about removals.

        ``listener.pattern_removed(pattern_id)`` is called whenever a
        pattern leaves the base — eviction by the retention manager,
        compaction, explicit removal. Listeners are held weakly, so a
        discarded matching engine never pins the base (nor vice versa).
        """
        # The dedup scan doubles as the pruning pass for dead refs —
        # a grow-only archive never removes, so without this every
        # transient engine would leave a weakref behind forever.
        live: List[weakref.ref] = []
        known = False
        for existing in self._removal_listeners:
            target = existing()
            if target is None:
                continue
            if target is listener:
                known = True
            live.append(existing)
        if not known:
            live.append(weakref.ref(listener))
        self._removal_listeners = live

    def _notify_removed(self, pattern_id: int) -> None:
        if not self._removal_listeners:
            return
        live: List[weakref.ref] = []
        for ref in self._removal_listeners:
            listener = ref()
            if listener is None:
                continue
            listener.pattern_removed(pattern_id)
            live.append(ref)
        self._removal_listeners = live

    def summary_bytes(self) -> int:
        """Total serialized size of all archived summaries."""
        return sum(p.summary_bytes() for p in self._patterns.values())

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._patterns
