"""repro — Summarization and Matching of Density-Based Clusters in
Streaming Environments.

A from-scratch Python implementation of the VLDB 2011 system by Yang,
Rundensteiner & Ward: Skeletal Grid Summarization (SGS), the integrated
C-SGS extraction+summarization algorithm with lifespan analysis, the
multi-resolution Pattern Archiver, the dual-indexed Pattern Base, and the
filter-and-refine Pattern Analyzer — plus the baselines the paper
evaluates against (Extra-N, CRD, RSP, SkPS).

Quickstart::

    from repro import (
        ContinuousClusteringQuery, StreamPatternMiningSystem,
        DriftingBlobStream,
    )

    query = ContinuousClusteringQuery.count_based(
        theta_range=0.3, theta_count=5, dimensions=2, win=500, slide=100,
    )
    system = StreamPatternMiningSystem.from_query(query)
    stream = DriftingBlobStream(seed=1)
    for output in system.run_steps(stream.objects(5000)):
        print(output.window_index, len(output.clusters))
"""

from repro.archive.analyzer import MatchResult, MatchStats, PatternAnalyzer
from repro.archive.archiver import (
    ArchiveAllPolicy,
    FeatureFilterPolicy,
    PatternArchiver,
    SamplingPolicy,
)
from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.archive.maintenance import RetentionManager
from repro.archive.persistence import dump_pattern_base, load_pattern_base
from repro.clustering.cluster import Cluster, partition_signature
from repro.clustering.dbscan import dbscan
from repro.clustering.extra_n import ExtraN
from repro.clustering.naive import NaiveWindowClusterer
from repro.clustering.shared import SharedCSGS
from repro.config import ClusterMatchingQuery, ContinuousClusteringQuery
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import CSGS, WindowOutput
from repro.core.features import ClusterFeatures
from repro.core.multires import coarsen_sgs, resolution_ladder
from repro.core.regenerate import regenerate_cluster, regenerate_points
from repro.core.serialize import (
    sgs_from_bytes,
    sgs_from_json,
    sgs_to_bytes,
    sgs_to_json,
)
from repro.core.sgs import SGS
from repro.data.gmti import GMTIStream
from repro.data.stt import STTStream
from repro.data.synthetic import DriftingBlobStream
from repro.matching.alignment import anytime_alignment_search
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import DistanceMetricSpec, cluster_feature_distance
from repro.streams.objects import StreamObject
from repro.streams.source import ListSource, RateFluctuatingSource
from repro.streams.windows import (
    CountBasedWindowSpec,
    TimeBasedWindowSpec,
    Windower,
)
from repro.summaries.crd import CRDSummarizer
from repro.summaries.rsp import RSPSummarizer
from repro.summaries.skps import SkPSSummarizer
from repro.query.parser import QueryParseError, parse_query
from repro.retrieval import EngineStats, MatchEngine, MatchQuery
from repro.system.extractor import PatternExtractor
from repro.system.framework import (
    MultiplexedMiningSystem,
    StreamPatternMiningSystem,
)
from repro.multiplex import (
    MultiResolutionProvider,
    QueryRegistry,
    RegisteredQuery,
    SlideScheduler,
)
from repro.tracking.archiver import EvolutionDrivenArchiver
from repro.tracking.tracker import ClusterTracker, TrackEvent, TrackedCluster

__version__ = "1.0.0"

__all__ = [
    "ArchiveAllPolicy",
    "ArchivedPattern",
    "CSGS",
    "CRDSummarizer",
    "CellStatus",
    "Cluster",
    "ClusterFeatures",
    "ClusterMatchingQuery",
    "ContinuousClusteringQuery",
    "CountBasedWindowSpec",
    "DistanceMetricSpec",
    "DriftingBlobStream",
    "ExtraN",
    "FeatureFilterPolicy",
    "GMTIStream",
    "ListSource",
    "EngineStats",
    "MatchEngine",
    "MatchQuery",
    "MatchResult",
    "MultiResolutionProvider",
    "MultiplexedMiningSystem",
    "MatchStats",
    "NaiveWindowClusterer",
    "PatternAnalyzer",
    "PatternArchiver",
    "PatternBase",
    "PatternExtractor",
    "QueryRegistry",
    "RegisteredQuery",
    "RSPSummarizer",
    "RetentionManager",
    "RateFluctuatingSource",
    "SGS",
    "SamplingPolicy",
    "SkPSSummarizer",
    "SkeletalGridCell",
    "SlideScheduler",
    "StreamObject",
    "StreamPatternMiningSystem",
    "TimeBasedWindowSpec",
    "WindowOutput",
    "Windower",
    "ClusterTracker",
    "EvolutionDrivenArchiver",
    "QueryParseError",
    "SharedCSGS",
    "TrackEvent",
    "TrackedCluster",
    "anytime_alignment_search",
    "cell_level_distance",
    "cluster_feature_distance",
    "coarsen_sgs",
    "dbscan",
    "dump_pattern_base",
    "load_pattern_base",
    "parse_query",
    "partition_signature",
    "regenerate_cluster",
    "regenerate_points",
    "resolution_ladder",
    "sgs_from_bytes",
    "sgs_from_json",
    "sgs_to_bytes",
    "sgs_to_json",
]
