"""Static density-based clustering (Ester et al., KDD 1996).

This is the from-scratch, per-window oracle: every incremental algorithm
in the package (C-SGS, Extra-N) must produce exactly the clusters this
function produces on the window contents (footnote 3 of the paper — all
algorithms following the KDD'96 definition agree on the result).

Definition 3.1 conventions used throughout the package:

* ``NumNeigh(p, θr)`` counts neighbors *excluding* ``p`` itself;
* ``p`` is **core** when ``NumNeigh(p, θr) >= θc``;
* a non-core neighbor of a core object is an **edge** object and belongs
  to the cluster of *every* core object it neighbors;
* everything else is noise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.clustering.cluster import Cluster
from repro.index.grid_index import GridIndex
from repro.streams.objects import StreamObject


def dbscan(
    objects: Sequence[StreamObject],
    theta_range: float,
    theta_count: int,
    window_index: int = -1,
) -> List[Cluster]:
    """Cluster a static object set; returns clusters (noise omitted).

    Uses a uniform grid index for neighbor search, so the expected cost is
    ``O(n * k)`` with ``k`` the average neighborhood size.
    """
    if theta_count < 1:
        raise ValueError("theta_count must be at least 1")
    objects = list(objects)
    if not objects:
        return []
    dims = objects[0].dimensions
    index = GridIndex(theta_range, dims)
    index.bulk_load(objects)

    neighbor_counts: Dict[int, int] = {}
    for obj in objects:
        neighbor_counts[obj.oid] = len(
            index.range_query(obj.coords, exclude_oid=obj.oid)
        )
    core_oids: Set[int] = {
        oid for oid, count in neighbor_counts.items() if count >= theta_count
    }

    by_oid = {obj.oid: obj for obj in objects}
    cluster_of: Dict[int, int] = {}
    clusters: List[Cluster] = []
    next_id = 0

    for obj in objects:
        if obj.oid not in core_oids or obj.oid in cluster_of:
            continue
        # Breadth-first expansion over connected core objects.
        core_members: List[StreamObject] = []
        frontier = [obj]
        cluster_of[obj.oid] = next_id
        while frontier:
            current = frontier.pop()
            core_members.append(current)
            for neighbor in index.range_query(
                current.coords, exclude_oid=current.oid
            ):
                if neighbor.oid in core_oids and neighbor.oid not in cluster_of:
                    cluster_of[neighbor.oid] = next_id
                    frontier.append(neighbor)
        clusters.append(Cluster(next_id, core_members, [], window_index))
        next_id += 1

    # Attach edge objects to every cluster whose core they neighbor.
    for obj in objects:
        if obj.oid in core_oids:
            continue
        attached: Set[int] = set()
        for neighbor in index.range_query(obj.coords, exclude_oid=obj.oid):
            if neighbor.oid in core_oids:
                attached.add(cluster_of[neighbor.oid])
        for cluster_id in attached:
            clusters[cluster_id].edge_objects.append(obj)

    return clusters


def classify_objects(
    objects: Sequence[StreamObject],
    theta_range: float,
    theta_count: int,
) -> Dict[int, str]:
    """Return {oid: 'core' | 'edge' | 'noise'} for a static object set."""
    objects = list(objects)
    if not objects:
        return {}
    index = GridIndex(theta_range, objects[0].dimensions)
    index.bulk_load(objects)
    result: Dict[int, str] = {}
    neighbor_lists = {
        obj.oid: index.range_query(obj.coords, exclude_oid=obj.oid)
        for obj in objects
    }
    core = {
        oid for oid, nbs in neighbor_lists.items() if len(nbs) >= theta_count
    }
    for obj in objects:
        if obj.oid in core:
            result[obj.oid] = "core"
        elif any(nb.oid in core for nb in neighbor_lists[obj.oid]):
            result[obj.oid] = "edge"
        else:
            result[obj.oid] = "noise"
    return result
