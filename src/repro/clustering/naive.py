"""Naive per-window re-clustering (ablation baseline, experiment E7).

Maintains only the raw window buffer and re-runs static DBSCAN from
scratch at every slide. This is the "prohibitively expensive" strawman
Section 5.2 argues against; the ablation bench quantifies what the
lifespan-based incremental computation buys.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.clustering.cluster import Cluster
from repro.clustering.dbscan import dbscan
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowBatch


class NaiveWindowClusterer:
    """Re-cluster the full window contents on every slide."""

    def __init__(self, theta_range: float, theta_count: int):
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self._buffer: List[StreamObject] = []

    def process_batch(self, batch: WindowBatch) -> List[Cluster]:
        window = batch.index
        self._buffer = [
            obj for obj in self._buffer if obj.last_window >= window
        ]
        self._buffer.extend(batch.new_objects)
        return dbscan(
            self._buffer, self.theta_range, self.theta_count, window
        )

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[List[Cluster]]:
        for batch in batches:
            yield self.process_batch(batch)

    @property
    def buffer_size(self) -> int:
        return len(self._buffer)
