"""The *full representation* of a density-based cluster (Section 3.1).

A cluster is a maximal group of connected core objects plus the edge
objects attached to them; the full representation is simply all member
objects tagged with a cluster identifier. Per Definition 3.1 an edge
object neighboring core objects of several clusters belongs to each of
them, so cluster member sets may overlap on edge objects (this matches
the cell-level membership rule C-SGS uses and makes cross-algorithm
equality checks exact).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.streams.objects import StreamObject


class Cluster:
    """Full representation of one density-based cluster."""

    __slots__ = ("cluster_id", "core_objects", "edge_objects", "window_index")

    def __init__(
        self,
        cluster_id: int,
        core_objects: Sequence[StreamObject],
        edge_objects: Sequence[StreamObject],
        window_index: int = -1,
    ):
        self.cluster_id = cluster_id
        self.core_objects: List[StreamObject] = list(core_objects)
        self.edge_objects: List[StreamObject] = list(edge_objects)
        self.window_index = window_index

    @property
    def members(self) -> List[StreamObject]:
        """All member objects (core first, then edge)."""
        return self.core_objects + self.edge_objects

    @property
    def size(self) -> int:
        return len(self.core_objects) + len(self.edge_objects)

    def member_oids(self) -> FrozenSet[int]:
        return frozenset(obj.oid for obj in self.members)

    def core_oids(self) -> FrozenSet[int]:
        return frozenset(obj.oid for obj in self.core_objects)

    def mbr(self) -> MBR:
        """Minimum bounding rectangle of the member objects."""
        return MBR.from_points(obj.coords for obj in self.members)

    def centroid(self) -> Tuple[float, ...]:
        members = self.members
        dims = members[0].dimensions
        sums = [0.0] * dims
        for obj in members:
            for i, value in enumerate(obj.coords):
                sums[i] += value
        return tuple(total / len(members) for total in sums)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"Cluster(id={self.cluster_id}, cores={len(self.core_objects)}, "
            f"edges={len(self.edge_objects)}, window={self.window_index})"
        )


def partition_signature(
    clusters: Iterable[Cluster],
) -> FrozenSet[FrozenSet[int]]:
    """Canonical, order-independent signature of a clustering result.

    Two clustering algorithms agree on a window exactly when their
    signatures are equal — used by the correctness tests comparing C-SGS,
    Extra-N, and per-window DBSCAN.
    """
    return frozenset(cluster.member_oids() for cluster in clusters)


def core_signature(clusters: Iterable[Cluster]) -> FrozenSet[FrozenSet[int]]:
    """Signature restricted to core members (edge attachment excluded)."""
    return frozenset(cluster.core_oids() for cluster in clusters)
