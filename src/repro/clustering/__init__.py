"""Density-based clustering substrate: definitions, DBSCAN, Extra-N."""

from repro.clustering.cluster import Cluster, partition_signature
from repro.clustering.dbscan import dbscan
from repro.clustering.extra_n import ExtraN
from repro.clustering.naive import NaiveWindowClusterer

__all__ = [
    "Cluster",
    "ExtraN",
    "NaiveWindowClusterer",
    "dbscan",
    "partition_signature",
]
