"""Incremental DBSCAN over sliding windows (Ester et al., VLDB 1998).

The paper cites incremental density-based clustering ([7]) as the
warehouse-era approach: apply every insertion *and every deletion* to
the cluster structure one tuple at a time. Over sliding windows this
means each slide performs ``slide`` insertions plus ``slide`` deletions
— and deletions are the expensive part, since removing an object can
demote cores and split clusters, forcing a partial re-expansion.

This implementation follows the IncDBSCAN structure:

* **Insertion**: the new object and its neighbors gain neighbor counts;
  newly promoted cores connect their neighborhoods, possibly merging
  clusters (union-find absorbs merges cheaply).
* **Deletion**: neighbors lose a count; demoted cores invalidate the
  labels of everything density-reachable through them. Affected
  regions are re-expanded from their remaining cores (a bounded local
  re-clustering; splits fall out naturally).

It serves as the per-tuple-incremental baseline of ablation E10: the
lifespan-based C-SGS pre-handles all expirations at insertion time and
therefore does none of the deletion work this algorithm must do.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.clustering.cluster import Cluster
from repro.index.provider import NeighborProvider, resolve_provider
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowBatch


class IncrementalDBSCAN:
    """Maintains DBSCAN clusters under object insertions and deletions.

    Neighbor search runs through any
    :class:`~repro.index.provider.NeighborProvider` backend (grid by
    default) — this baseline issues *many* range queries per deletion,
    which is exactly the cost profile ablation E10 contrasts with the
    lifespan-based methods.
    """

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        provider: Optional[NeighborProvider] = None,
        backend: Optional[str] = None,
        refinement: Optional[str] = None,
    ):
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self.dimensions = int(dimensions)
        self.grid = resolve_provider(
            provider, backend, theta_range, dimensions, refinement=refinement
        )
        self._objects: Dict[int, StreamObject] = {}
        self._neighbor_count: Dict[int, int] = {}
        # Cluster labels for core objects only; edges resolve at output.
        self._label: Dict[int, int] = {}
        self._next_label = 0
        self.deletions_processed = 0
        self.reexpansions = 0

    # ------------------------------------------------------------------
    # Primitive updates
    # ------------------------------------------------------------------

    def _is_core(self, oid: int) -> bool:
        return self._neighbor_count.get(oid, 0) >= self.theta_count

    def insert(self, obj: StreamObject) -> None:
        """Add one object, merging clusters where its neighborhood
        connects previously separate cores."""
        self.grid.insert(obj)
        self._objects[obj.oid] = obj
        neighbors = self.grid.range_query(obj.coords, exclude_oid=obj.oid)
        self._neighbor_count[obj.oid] = len(neighbors)
        promoted: List[StreamObject] = []
        for nb in neighbors:
            self._neighbor_count[nb.oid] += 1
            if (
                self._neighbor_count[nb.oid] == self.theta_count
                and nb.oid not in self._label
            ):
                promoted.append(nb)
        if self._is_core(obj.oid):
            promoted.append(obj)
        for core in promoted:
            self._expand_from(core)

    def _expand_from(self, seed: StreamObject) -> None:
        """Label/merge the connected core component around a new core."""
        if not self._is_core(seed.oid):
            return
        # Collect adjacent core labels to merge with.
        neighbors = self.grid.range_query(seed.coords, exclude_oid=seed.oid)
        adjacent_labels = {
            self._label[nb.oid]
            for nb in neighbors
            if nb.oid in self._label and self._is_core(nb.oid)
        }
        if seed.oid in self._label:
            adjacent_labels.add(self._label[seed.oid])
        if adjacent_labels:
            target = min(adjacent_labels)
        else:
            target = self._next_label
            self._next_label += 1
        self._label[seed.oid] = target
        stale = adjacent_labels - {target}
        if stale:
            for oid, label in list(self._label.items()):
                if label in stale:
                    self._label[oid] = target

    def delete(self, obj: StreamObject) -> None:
        """Remove one object; demotions may split its cluster."""
        self.deletions_processed += 1
        neighbors = self.grid.range_query(obj.coords, exclude_oid=obj.oid)
        self.grid.remove(obj)
        del self._objects[obj.oid]
        del self._neighbor_count[obj.oid]
        was_core = obj.oid in self._label
        self._label.pop(obj.oid, None)
        demoted: List[StreamObject] = []
        for nb in neighbors:
            self._neighbor_count[nb.oid] -= 1
            if (
                self._neighbor_count[nb.oid] == self.theta_count - 1
                and nb.oid in self._label
            ):
                demoted.append(nb)
        for nb in demoted:
            self._label.pop(nb.oid, None)
        if was_core or demoted:
            if self._locally_connected([obj] + demoted):
                return
            # The component(s) around the removal must be re-derived:
            # invalidate every label in the affected component and
            # re-expand from the remaining cores.
            self._reexpand_around([obj] + demoted)

    def _locally_connected(
        self, epicenters: List[StreamObject], depth_limit: int = 3
    ) -> bool:
        """Cheap common-case check: if the surviving core neighbors of
        the removal are still mutually reachable through a short core
        path, the component cannot have split and labels stay valid.
        (An interior deletion terminates here; boundary deletions fall
        through to the full re-expansion.)"""
        seeds: Set[int] = set()
        seed_objs: List[StreamObject] = []
        for center in epicenters:
            for nb in self.grid.range_query(center.coords):
                if self._is_core(nb.oid) and nb.oid not in seeds:
                    seeds.add(nb.oid)
                    seed_objs.append(nb)
        if len(seeds) <= 1:
            return True
        start = seed_objs[0]
        found = {start.oid}
        frontier = [start]
        for _ in range(depth_limit):
            if seeds <= found:
                return True
            next_frontier: List[StreamObject] = []
            for current in frontier:
                for nb in self.grid.range_query(
                    current.coords, exclude_oid=current.oid
                ):
                    if nb.oid in found or not self._is_core(nb.oid):
                        continue
                    found.add(nb.oid)
                    next_frontier.append(nb)
            frontier = next_frontier
        return seeds <= found

    def _reexpand_around(self, epicenters: List[StreamObject]) -> None:
        """Re-derive labels for the components touching ``epicenters``."""
        self.reexpansions += 1
        affected_labels: Set[int] = set()
        seeds: List[StreamObject] = []
        for center in epicenters:
            for nb in self.grid.range_query(center.coords):
                if nb.oid in self._label:
                    affected_labels.add(self._label[nb.oid])
        if not affected_labels:
            return
        for oid, label in list(self._label.items()):
            if label in affected_labels:
                del self._label[oid]
                seeds.append(self._objects[oid])
        visited: Set[int] = set()
        for seed in seeds:
            if seed.oid in visited or not self._is_core(seed.oid):
                continue
            label = self._next_label
            self._next_label += 1
            stack = [seed]
            visited.add(seed.oid)
            self._label[seed.oid] = label
            while stack:
                current = stack.pop()
                for nb in self.grid.range_query(
                    current.coords, exclude_oid=current.oid
                ):
                    if nb.oid in visited or not self._is_core(nb.oid):
                        continue
                    visited.add(nb.oid)
                    self._label[nb.oid] = label
                    stack.append(nb)

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------

    def process_batch(self, batch: WindowBatch) -> List[Cluster]:
        """Apply one slide: delete expired objects, insert new ones."""
        expired = [
            obj
            for obj in self._objects.values()
            if obj.last_window < batch.index
        ]
        for obj in expired:
            self.delete(obj)
        for obj in batch.new_objects:
            self.insert(obj)
        return self.clusters(batch.index)

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[List[Cluster]]:
        for batch in batches:
            yield self.process_batch(batch)

    def clusters(self, window_index: int = -1) -> List[Cluster]:
        """Materialize the current clusters in full representation."""
        by_label: Dict[int, Cluster] = {}
        cluster_index: Dict[int, int] = {}
        for oid, label in self._label.items():
            if label not in by_label:
                cluster_index[label] = len(by_label)
                by_label[label] = Cluster(
                    cluster_index[label], [], [], window_index
                )
            by_label[label].core_objects.append(self._objects[oid])
        for oid, obj in self._objects.items():
            if oid in self._label:
                continue
            touched: Set[int] = set()
            for nb in self.grid.range_query(obj.coords, exclude_oid=oid):
                label = self._label.get(nb.oid)
                if label is not None:
                    touched.add(label)
            for label in touched:
                by_label[label].edge_objects.append(obj)
        return list(by_label.values())

    def __len__(self) -> int:
        return len(self._objects)
