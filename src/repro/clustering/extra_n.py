"""Extra-N: neighbor-based pattern detection over sliding windows.

This is the state-of-the-art *extraction-only* baseline the paper
compares C-SGS against (Yang, Rundensteiner, Ward — EDBT 2009). Extra-N
incrementally maintains one *predicted view* of the cluster structure per
future window an alive object participates in (``win/slide`` views in
total). Expirations are pre-handled by the same lifespan analysis C-SGS
uses; cluster structures within each view only ever grow, so each view's
membership can be kept in a union-find that needs no deletions.

Cost profile (and the reason the paper's Figure 7 shows Extra-N's
response time rising with ``win/slide``): every insertion touches all
views the object participates in — O(neighbors x views) union operations
— and every core-career extension replays the object's non-core-career
neighbor list into the newly covered views. C-SGS replaces all of this
with O(neighbors) cell-lifespan updates.

Output per window: clusters in full representation, identical (tested) to
a from-scratch DBSCAN over the window contents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.clustering.cluster import Cluster
from repro.core.lifespan import NeighborhoodTracker, ObjectState
from repro.streams.windows import WindowBatch


class _UnionFind:
    """Union-find over object ids with path compression."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def make(self, item: int) -> None:
        if item not in self.parent:
            self.parent[item] = item

    def find(self, item: int) -> int:
        parent = self.parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        self.make(a)
        self.make(b)
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a

    def __len__(self) -> int:
        return len(self.parent)


class ExtraN:
    """Incremental density-based clustering with predicted views."""

    def __init__(
        self,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        provider=None,
        backend=None,
        refinement=None,
    ):
        self.theta_range = float(theta_range)
        self.theta_count = int(theta_count)
        self.dimensions = int(dimensions)
        self.tracker = NeighborhoodTracker(
            theta_range,
            theta_count,
            dimensions,
            on_insert=self._handle_insert,
            on_extension=self._handle_extension,
            provider=provider,
            backend=backend,
            refinement=refinement,
            # Extra-N never reads per-cell contents; skip the substrate
            # bookkeeping on non-cell-backed backends.
            maintain_cells=False,
        )
        # One union-find per future window ("view"), created lazily.
        self._views: Dict[int, _UnionFind] = {}

    def _view(self, window: int) -> _UnionFind:
        view = self._views.get(window)
        if view is None:
            view = _UnionFind()
            self._views[window] = view
        return view

    # ------------------------------------------------------------------
    # View maintenance events
    # ------------------------------------------------------------------

    def _handle_insert(
        self, state: ObjectState, neighbors: List[ObjectState]
    ) -> None:
        window = self.tracker.current_window
        oid = state.oid
        if state.core_until >= window:
            for view_index in range(window, state.core_until + 1):
                self._view(view_index).make(oid)
        for nb in neighbors:
            joint = min(state.core_until, nb.core_until)
            for view_index in range(window, joint + 1):
                self._view(view_index).union(oid, nb.oid)

    def _handle_extension(
        self,
        state: ObjectState,
        old_core_until: int,
        new_core_until: int,
        snapshot: List[ObjectState],
    ) -> None:
        window = self.tracker.current_window
        oid = state.oid
        start = max(old_core_until + 1, window)
        for view_index in range(start, new_core_until + 1):
            self._view(view_index).make(oid)
        for other in snapshot:
            if other.obj.last_window < window:
                continue
            joint = min(new_core_until, other.core_until)
            for view_index in range(start, joint + 1):
                self._view(view_index).union(oid, other.oid)

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------

    def process_batch(self, batch: WindowBatch) -> List[Cluster]:
        """Slide to the batch's window, insert tuples, output clusters."""
        previous = self.tracker.current_window
        self.tracker.advance_to(batch.index)
        for window in range(previous, batch.index):
            self._views.pop(window, None)
        for obj in batch.new_objects:
            self.tracker.insert(obj)
        return self._emit(batch.index)

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[List[Cluster]]:
        for batch in batches:
            yield self.process_batch(batch)

    def _emit(self, window: int) -> List[Cluster]:
        view = self._views.get(window)
        clusters: List[Cluster] = []
        cluster_of_root: Dict[int, int] = {}
        states = self.tracker.states
        if view is not None:
            for state in states.values():
                if state.core_until < window:
                    continue
                root = view.find(state.oid)
                cluster_id = cluster_of_root.get(root)
                if cluster_id is None:
                    cluster_id = len(clusters)
                    cluster_of_root[root] = cluster_id
                    clusters.append(Cluster(cluster_id, [], [], window))
                clusters[cluster_id].core_objects.append(state.obj)
        # Edge objects attach through their non-core-career neighbor lists.
        for state in states.values():
            if state.core_until >= window:
                continue
            touched: Set[int] = set()
            for core_state in state.attached_cores_in(window):
                root = view.find(core_state.oid)
                touched.add(cluster_of_root[root])
            for cluster_id in touched:
                clusters[cluster_id].edge_objects.append(state.obj)
        return clusters

    # ------------------------------------------------------------------
    # Introspection for memory accounting
    # ------------------------------------------------------------------

    def state_sizes(self) -> Dict[str, int]:
        """Entry counts of the maintained meta-data (for memory models)."""
        hist_entries = sum(
            len(state.neighbor_hist) for state in self.tracker.states.values()
        )
        noncore_entries = sum(
            len(state.noncore_neighbors)
            for state in self.tracker.states.values()
        )
        view_entries = sum(len(view) for view in self._views.values())
        return {
            "objects": len(self.tracker.states),
            "hist_entries": hist_entries,
            "noncore_entries": noncore_entries,
            "views": len(self._views),
            "view_entries": view_entries,
        }
