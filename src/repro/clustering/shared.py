"""Shared execution of multiple clustering queries over one stream.

The paper's lineage includes a shared execution strategy for multiple
density-based pattern mining requests (Yang et al., PVLDB 2009, cited as
[17]); this module provides the analogous capability for C-SGS: several
Continuous Clustering Queries that agree on θr and the window spec but
differ in θc are answered with **one neighbor-search provider and one
range query per new object**, instead of one per query. Since the
range-query search dominates insertion cost, k co-executing queries cost
far less than k independent pipelines (ablation E9 quantifies it).

The shared provider is any :class:`~repro.index.provider.NeighborProvider`
backend (grid by default, selectable by name), and the per-slide lookups
run through its batched ``range_query_many`` fast path: one pass per
window batch, with each object's neighbor list filtered to
already-arrived objects so member pipelines observe exactly the
object-at-a-time semantics.

:class:`SharedCSGS` runs in one of two modes:

* **owner** (the default): it owns the provider, runs the batched
  range-query pass itself, and is driven by :meth:`process_batch`;
* **coordinator-fed** (``manage_provider=False``): the neighbor lists
  come from outside — the query-multiplexing scheduler
  (:mod:`repro.multiplex.scheduler`) computes them once per batch from
  a substrate shared across *different* θr values, and drives the
  window lifecycle through :meth:`begin_window` / :meth:`ingest` /
  :meth:`emit`. Same-θr sharing is thus the degenerate case of the
  general multiplexer: one cohort, no radius filtering.

Correctness is unchanged: each member query maintains its own careers,
cell lifespans, and output (tested equal to an independent C-SGS run).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.csgs import CSGS, WindowOutput
from repro.index.grid_index import CellMap
from repro.index.provider import (
    NeighborProvider,
    batched_neighborhoods,
    cell_substrate,
    resolve_provider,
)
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowBatch


class SharedCSGS:
    """Co-execute several C-SGS queries differing only in θc."""

    def __init__(
        self,
        theta_range: float,
        theta_counts: Sequence[int],
        dimensions: int,
        provider: Optional[NeighborProvider] = None,
        backend: Optional[str] = None,
        refinement: Optional[str] = None,
        cells: Optional[CellMap] = None,
        manage_provider: bool = True,
    ):
        # Materialize before validating so generators/iterators are
        # checked on their values, not consumed twice.
        counts = tuple(int(count) for count in theta_counts)
        if not counts:
            raise ValueError(
                "theta_counts is empty: shared execution needs at least "
                "one member query's θc"
            )
        duplicates = sorted({c for c in counts if counts.count(c) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate theta_counts {duplicates}: member queries "
                "must have distinct θc (duplicates would silently run "
                "the same pipeline twice)"
            )
        self.theta_range = float(theta_range)
        self.theta_counts = counts
        self.dimensions = int(dimensions)
        self._manage_provider = bool(manage_provider)
        if not self._manage_provider and provider is None:
            raise ValueError(
                "manage_provider=False means neighbors are injected by a "
                "coordinator; pass its provider (e.g. a rung view) so "
                "members know their radius source"
            )
        provider = resolve_provider(
            provider, backend, theta_range, dimensions, refinement=refinement
        )
        self.provider = provider
        # Backward-compatible alias: the provider used to always be a grid.
        self.grid = provider
        # One SGS cell substrate for all members: an injected CellMap
        # (maintained here, purged by window stamps — the coordinator-fed
        # mode's arrangement), the one the provider itself maintains when
        # it has one (the grid is a CellMap; the auto backend keeps an
        # observer CellMap), otherwise a single coordinator-owned CellMap
        # (rather than one per member).
        substrate = cell_substrate(provider)
        if cells is not None:
            self.cells: CellMap = cells
            self._manage_cells = True
        elif substrate is not None:
            self.cells = substrate
            self._manage_cells = False
        else:
            self.cells = CellMap(theta_range, dimensions)
            self._manage_cells = True
        self.members: Dict[int, CSGS] = {
            count: CSGS(
                theta_range,
                count,
                dimensions,
                provider=self.provider,
                manage_grid=False,
                cells=self.cells,
            )
            for count in self.theta_counts
        }
        self.current_window = 0
        self._expiry_buckets: Dict[int, List[StreamObject]] = {}
        self.range_queries_run = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def remove_member(self, theta_count: int) -> CSGS:
        """Detach one member query (its θc); returns the detached
        pipeline. The shared substrate keeps running for the rest."""
        count = int(theta_count)
        member = self.members.pop(count, None)
        if member is None:
            raise KeyError(
                f"no member with theta_count {count}; members are "
                f"{sorted(self.members)}"
            )
        self.theta_counts = tuple(
            c for c in self.theta_counts if c != count
        )
        return member

    # ------------------------------------------------------------------
    # Window lifecycle (coordinator-facing; process_batch composes them)
    # ------------------------------------------------------------------

    def begin_window(self, window_index: int) -> None:
        """Slide every member to ``window_index``, purging expired
        objects from the shared substrate."""
        if self._manage_provider:
            self._purge(window_index)
        else:
            # The coordinator owns the search substrate; only the cell
            # substrate (stamped per-cohort clones) is purged here.
            if self._manage_cells:
                self.cells.purge_expired(window_index)
            self.current_window = window_index
        for member in self.members.values():
            member.begin_window(window_index)

    def ingest(
        self, obj: StreamObject, known: List[StreamObject]
    ) -> None:
        """Insert one object with its resolved neighbor list into every
        member pipeline (and the shared cell substrate)."""
        if self._manage_cells:
            self.cells.insert(obj)
        if self._manage_provider:
            self._expiry_buckets.setdefault(obj.last_window, []).append(obj)
        for member in self.members.values():
            member.ingest(obj, known)

    def emit(self, window_index: int) -> Dict[int, WindowOutput]:
        """Emit every member's window output: ``{theta_count: output}``."""
        return {
            count: member.emit(window_index)
            for count, member in self.members.items()
        }

    def _purge(self, window_index: int) -> None:
        for window in range(self.current_window, window_index):
            for obj in self._expiry_buckets.pop(window, ()):
                self.provider.remove(obj)
                if self._manage_cells:
                    self.cells.remove(obj)
        self.current_window = window_index

    def process_batch(self, batch: WindowBatch) -> Dict[int, WindowOutput]:
        """Process one slide for every member query.

        Returns ``{theta_count: WindowOutput}``.
        """
        if not self._manage_provider:
            raise ValueError(
                "a coordinator-fed SharedCSGS is driven through "
                "begin_window/ingest/emit, not process_batch"
            )
        self.begin_window(batch.index)
        new_objects = list(batch.new_objects)
        self.range_queries_run += len(new_objects)
        for obj, _, known in batched_neighborhoods(self.provider, new_objects):
            self.ingest(obj, known)
        return self.emit(batch.index)

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[Dict[int, WindowOutput]]:
        for batch in batches:
            yield self.process_batch(batch)
