"""Shared execution of multiple clustering queries over one stream.

The paper's lineage includes a shared execution strategy for multiple
density-based pattern mining requests (Yang et al., PVLDB 2009, cited as
[17]); this module provides the analogous capability for C-SGS: several
Continuous Clustering Queries that agree on θr and the window spec but
differ in θc are answered with **one grid index and one range query per
new object**, instead of one per query. Since the range-query search
dominates insertion cost, k co-executing queries cost far less than k
independent pipelines (ablation E9 quantifies it).

Correctness is unchanged: each member query maintains its own careers,
cell lifespans, and output (tested equal to an independent C-SGS run).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.core.csgs import CSGS, WindowOutput
from repro.index.grid_index import GridIndex
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowBatch


class SharedCSGS:
    """Co-execute several C-SGS queries differing only in θc."""

    def __init__(
        self,
        theta_range: float,
        theta_counts: Sequence[int],
        dimensions: int,
    ):
        if not theta_counts:
            raise ValueError("need at least one theta_count")
        if len(set(theta_counts)) != len(theta_counts):
            raise ValueError("theta_counts must be distinct")
        self.theta_range = float(theta_range)
        self.theta_counts = tuple(int(c) for c in theta_counts)
        self.dimensions = int(dimensions)
        self.grid = GridIndex(theta_range, dimensions)
        self.members: Dict[int, CSGS] = {
            count: CSGS(
                theta_range,
                count,
                dimensions,
                grid=self.grid,
                manage_grid=False,
            )
            for count in self.theta_counts
        }
        self.current_window = 0
        self._expiry_buckets: Dict[int, List[StreamObject]] = {}
        self.range_queries_run = 0

    def _purge(self, window_index: int) -> None:
        for window in range(self.current_window, window_index):
            for obj in self._expiry_buckets.pop(window, ()):
                self.grid.remove(obj)
        self.current_window = window_index

    def process_batch(self, batch: WindowBatch) -> Dict[int, WindowOutput]:
        """Process one slide for every member query.

        Returns ``{theta_count: WindowOutput}``.
        """
        self._purge(batch.index)
        for member in self.members.values():
            member.begin_window(batch.index)
        for obj in batch.new_objects:
            self.grid.insert(obj)
            self._expiry_buckets.setdefault(obj.last_window, []).append(obj)
            neighbors = self.grid.range_query(
                obj.coords, exclude_oid=obj.oid
            )
            self.range_queries_run += 1
            for member in self.members.values():
                member.ingest(obj, neighbors)
        return {
            count: member.emit(batch.index)
            for count, member in self.members.items()
        }

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[Dict[int, WindowOutput]]:
        for batch in batches:
            yield self.process_batch(batch)
