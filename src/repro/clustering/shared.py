"""Shared execution of multiple clustering queries over one stream.

The paper's lineage includes a shared execution strategy for multiple
density-based pattern mining requests (Yang et al., PVLDB 2009, cited as
[17]); this module provides the analogous capability for C-SGS: several
Continuous Clustering Queries that agree on θr and the window spec but
differ in θc are answered with **one neighbor-search provider and one
range query per new object**, instead of one per query. Since the
range-query search dominates insertion cost, k co-executing queries cost
far less than k independent pipelines (ablation E9 quantifies it).

The shared provider is any :class:`~repro.index.provider.NeighborProvider`
backend (grid by default, selectable by name), and the per-slide lookups
run through its batched ``range_query_many`` fast path: one pass per
window batch, with each object's neighbor list filtered to
already-arrived objects so member pipelines observe exactly the
object-at-a-time semantics.

Correctness is unchanged: each member query maintains its own careers,
cell lifespans, and output (tested equal to an independent C-SGS run).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.csgs import CSGS, WindowOutput
from repro.index.grid_index import CellMap
from repro.index.provider import (
    NeighborProvider,
    batched_neighborhoods,
    cell_substrate,
    resolve_provider,
)
from repro.streams.objects import StreamObject
from repro.streams.windows import WindowBatch


class SharedCSGS:
    """Co-execute several C-SGS queries differing only in θc."""

    def __init__(
        self,
        theta_range: float,
        theta_counts: Sequence[int],
        dimensions: int,
        provider: Optional[NeighborProvider] = None,
        backend: Optional[str] = None,
        refinement: Optional[str] = None,
    ):
        if not theta_counts:
            raise ValueError("need at least one theta_count")
        if len(set(theta_counts)) != len(theta_counts):
            raise ValueError("theta_counts must be distinct")
        self.theta_range = float(theta_range)
        self.theta_counts = tuple(int(c) for c in theta_counts)
        self.dimensions = int(dimensions)
        provider = resolve_provider(
            provider, backend, theta_range, dimensions, refinement=refinement
        )
        self.provider = provider
        # Backward-compatible alias: the provider used to always be a grid.
        self.grid = provider
        # One SGS cell substrate for all members: the one the provider
        # itself maintains when it has one (the grid is a CellMap; the
        # auto backend keeps an observer CellMap), otherwise a single
        # coordinator-owned CellMap (rather than one per member).
        substrate = cell_substrate(provider)
        if substrate is not None:
            self.cells: CellMap = substrate
            self._manage_cells = False
        else:
            self.cells = CellMap(theta_range, dimensions)
            self._manage_cells = True
        self.members: Dict[int, CSGS] = {
            count: CSGS(
                theta_range,
                count,
                dimensions,
                provider=self.provider,
                manage_grid=False,
                cells=self.cells,
            )
            for count in self.theta_counts
        }
        self.current_window = 0
        self._expiry_buckets: Dict[int, List[StreamObject]] = {}
        self.range_queries_run = 0

    def _purge(self, window_index: int) -> None:
        for window in range(self.current_window, window_index):
            for obj in self._expiry_buckets.pop(window, ()):
                self.provider.remove(obj)
                if self._manage_cells:
                    self.cells.remove(obj)
        self.current_window = window_index

    def process_batch(self, batch: WindowBatch) -> Dict[int, WindowOutput]:
        """Process one slide for every member query.

        Returns ``{theta_count: WindowOutput}``.
        """
        self._purge(batch.index)
        for member in self.members.values():
            member.begin_window(batch.index)
        new_objects = list(batch.new_objects)
        self.range_queries_run += len(new_objects)
        for obj, _, known in batched_neighborhoods(self.provider, new_objects):
            if self._manage_cells:
                self.cells.insert(obj)
            self._expiry_buckets.setdefault(obj.last_window, []).append(obj)
            for member in self.members.values():
                member.ingest(obj, known)
        return {
            count: member.emit(batch.index)
            for count, member in self.members.items()
        }

    def process(
        self, batches: Iterable[WindowBatch]
    ) -> Iterator[Dict[int, WindowOutput]]:
        for batch in batches:
            yield self.process_batch(batch)
