"""STT-like stock transaction stream (substitute for the INET traces).

The paper's STT dataset is one trading day of stock transaction records
(~1M tuples); clustering runs over four dimensions — transaction type
(buy/sell), price, volume, and time. The original source is defunct, so
this generator reproduces the behaviour the evaluation needs: *intensive
transaction areas* — bursts in which one instrument trades heavily inside
a narrow price/volume band — embedded in diffuse background trading.

All four coordinates are emitted on comparable scales so that a single
range threshold θr is meaningful (as in the paper's normalized setup):

* ``type``: 0.0 (buy) or 1.0 (sell) — cross-type records are never
  neighbors at the θr values used, mirroring the semantic separation;
* ``price``: normalized price level in [0, 1];
* ``volume``: normalized (log-scaled) transaction size in [0, 1];
* ``time``: fraction of the trading day in [0, 1], advancing with the
  record index, so a count-based window spans a narrow time slice.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Tuple

from repro.streams.objects import StreamObject

Point = Tuple[float, float, float, float]


class _Burst:
    __slots__ = ("type_value", "price", "volume", "remaining", "spread")

    def __init__(
        self,
        type_value: float,
        price: float,
        volume: float,
        remaining: int,
        spread: float,
    ):
        self.type_value = type_value
        self.price = price
        self.volume = volume
        self.remaining = remaining
        self.spread = spread


class STTStream:
    """Synthetic 4-D stock transaction stream with bursty clusters."""

    def __init__(
        self,
        total_records: int = 1_000_000,
        burst_fraction: float = 0.7,
        mean_burst_length: int = 2000,
        max_active_bursts: int = 5,
        burst_spread: float = 0.015,
        price_tick: float = 0.005,
        volume_lot: float = 0.01,
        seed: Optional[int] = 0,
    ):
        if not 0 <= burst_fraction <= 1:
            raise ValueError("burst_fraction must be in [0, 1]")
        if price_tick < 0 or volume_lot < 0:
            raise ValueError("tick/lot sizes must be non-negative")
        self.total_records = total_records
        self.burst_fraction = burst_fraction
        self.mean_burst_length = mean_burst_length
        self.max_active_bursts = max_active_bursts
        self.burst_spread = burst_spread
        # Real markets quote discrete price ticks and round volume lots;
        # quantization concentrates intensive-transaction areas onto few
        # distinct coordinates (0 disables).
        self.price_tick = price_tick
        self.volume_lot = volume_lot
        self._rng = random.Random(seed)
        self._bursts: List[_Burst] = []

    def _quantize(self, price: float, volume: float) -> tuple:
        if self.price_tick > 0:
            price = round(price / self.price_tick) * self.price_tick
        if self.volume_lot > 0:
            volume = round(volume / self.volume_lot) * self.volume_lot
        return price, volume

    @property
    def dimensions(self) -> int:
        return 4

    def _spawn_burst(self) -> _Burst:
        rng = self._rng
        length = max(200, int(rng.expovariate(1.0 / self.mean_burst_length)))
        return _Burst(
            type_value=float(rng.random() < 0.5),
            price=rng.uniform(0.05, 0.95),
            volume=rng.uniform(0.1, 0.9),
            remaining=length,
            spread=self.burst_spread * rng.uniform(0.5, 1.5),
        )

    def points(self, n: Optional[int] = None) -> Iterator[Point]:
        """Yield transaction records as 4-D coordinate tuples."""
        rng = self._rng
        total = self.total_records if n is None else n
        for i in range(total):
            time_value = i / max(1, self.total_records)
            self._bursts = [b for b in self._bursts if b.remaining > 0]
            while (
                len(self._bursts) < self.max_active_bursts
                and rng.random() < 0.002
            ):
                self._bursts.append(self._spawn_burst())
            if self._bursts and rng.random() < self.burst_fraction:
                burst = rng.choice(self._bursts)
                burst.remaining -= 1
                price, volume = self._quantize(
                    min(1.0, max(0.0, rng.gauss(burst.price, burst.spread))),
                    min(1.0, max(0.0, rng.gauss(burst.volume, burst.spread))),
                )
                yield (burst.type_value, price, volume, time_value)
            else:
                # Background trade: log-uniform volume, uniform price.
                price, volume = self._quantize(
                    rng.uniform(0.0, 1.0),
                    math.exp(rng.uniform(math.log(1e-3), 0.0)),
                )
                yield (
                    float(rng.random() < 0.5),
                    price,
                    volume,
                    time_value,
                )

    def objects(self, n: Optional[int] = None, start_oid: int = 0) -> Iterator[StreamObject]:
        for i, coords in enumerate(self.points(n)):
            yield StreamObject(start_oid + i, coords)
