"""GMTI-like moving-object stream (substitute for the JointSTARS data).

The paper's GMTI dataset (Entzminger et al.) records positions and speeds
of vehicles and helicopters observed by 24 ground stations/aircraft —
about 100K records over 6 hours, with speeds between 0 and 200 mph. The
data is not publicly available, so this generator reproduces the
*behaviour* the experiments rely on: spatially coherent groups of moving
objects (convoys) that drift, split, and dissolve inside a geographic
region, plus unaffiliated background traffic.

Group motion follows a Gauss–Markov mobility model: each group's velocity
vector is an AR(1) process,
``v_t = alpha * v_{t-1} + (1 - alpha) * mu + sigma * sqrt(1 - alpha^2) * eps``,
which yields smooth but non-ballistic trajectories. Individual reports
scatter around their group's center. Records are (x, y) positions in a
``region``-sized box; the mover's speed rides along as payload.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Tuple

from repro.streams.objects import StreamObject

Point = Tuple[float, ...]


class _Group:
    __slots__ = ("center", "velocity", "spread", "size")

    def __init__(self, center: List[float], velocity: List[float], spread: float, size: int):
        self.center = center
        self.velocity = velocity
        self.spread = spread
        self.size = size


class GMTIStream:
    """Synthetic ground-moving-target stream over a square region."""

    def __init__(
        self,
        n_groups: int = 4,
        region: float = 100.0,
        group_spread: float = 1.5,
        mean_speed: float = 0.05,
        alpha: float = 0.9,
        noise_fraction: float = 0.25,
        group_churn: float = 0.0005,
        seed: Optional[int] = 0,
    ):
        if not 0 <= noise_fraction <= 1:
            raise ValueError("noise_fraction must be in [0, 1]")
        if not 0 <= alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        self.region = region
        self.group_spread = group_spread
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.noise_fraction = noise_fraction
        self.group_churn = group_churn
        self._rng = random.Random(seed)
        self._groups: List[_Group] = [
            self._new_group() for _ in range(n_groups)
        ]

    def _new_group(self) -> _Group:
        rng = self._rng
        heading = rng.uniform(0, 2 * math.pi)
        speed = rng.uniform(0.2, 1.0) * self.mean_speed
        return _Group(
            center=[rng.uniform(0, self.region), rng.uniform(0, self.region)],
            velocity=[speed * math.cos(heading), speed * math.sin(heading)],
            spread=self.group_spread * rng.uniform(0.6, 1.4),
            size=rng.randint(20, 120),
        )

    def _step(self) -> None:
        rng = self._rng
        alpha = self.alpha
        sigma = self.mean_speed * 0.5
        noise_scale = sigma * math.sqrt(1 - alpha * alpha)
        for group in self._groups:
            for i in range(2):
                group.velocity[i] = (
                    alpha * group.velocity[i]
                    + (1 - alpha) * 0.0
                    + noise_scale * rng.gauss(0.0, 1.0)
                )
                group.center[i] += group.velocity[i]
                # Reflect at the region boundary.
                if group.center[i] < 0:
                    group.center[i] = -group.center[i]
                    group.velocity[i] = -group.velocity[i]
                elif group.center[i] > self.region:
                    group.center[i] = 2 * self.region - group.center[i]
                    group.velocity[i] = -group.velocity[i]
        # Occasional group turnover (convoys form and dissolve).
        if rng.random() < self.group_churn and self._groups:
            index = rng.randrange(len(self._groups))
            self._groups[index] = self._new_group()

    def points(self, n: int) -> Iterator[Point]:
        """Yield ``n`` (x, y) reports."""
        rng = self._rng
        for _ in range(n):
            self._step()
            if rng.random() < self.noise_fraction or not self._groups:
                yield (
                    rng.uniform(0, self.region),
                    rng.uniform(0, self.region),
                )
            else:
                weights = [group.size for group in self._groups]
                group = rng.choices(self._groups, weights=weights, k=1)[0]
                yield (
                    rng.gauss(group.center[0], group.spread),
                    rng.gauss(group.center[1], group.spread),
                )

    def objects(self, n: int, start_oid: int = 0) -> Iterator[StreamObject]:
        """Yield ``n`` stream objects; payload carries a plausible speed
        (mph, 0-200) for the reporting mover."""
        rng = self._rng
        for i, coords in enumerate(self.points(n)):
            speed_mph = min(200.0, max(0.0, rng.gauss(45.0, 30.0)))
            yield StreamObject(start_oid + i, coords, payload=speed_mph)
