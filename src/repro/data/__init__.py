"""Synthetic stream generators standing in for the paper's datasets."""

from repro.data.gmti import GMTIStream
from repro.data.stt import STTStream
from repro.data.synthetic import DriftingBlobStream, static_blobs, uniform_noise

__all__ = [
    "DriftingBlobStream",
    "GMTIStream",
    "STTStream",
    "static_blobs",
    "uniform_noise",
]
