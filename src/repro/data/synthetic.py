"""Generic synthetic streams for tests and controlled experiments.

These produce raw coordinate tuples; wrap them in
:class:`~repro.streams.source.ListSource` (or iterate
:meth:`DriftingBlobStream.objects`) to obtain stream objects.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.streams.objects import StreamObject

Point = Tuple[float, ...]


def static_blobs(
    centers: Sequence[Point],
    points_per_blob: int,
    std: float = 0.3,
    seed: Optional[int] = 0,
) -> List[Point]:
    """Gaussian blobs around fixed centers (for static-set unit tests)."""
    rng = random.Random(seed)
    points: List[Point] = []
    for center in centers:
        for _ in range(points_per_blob):
            points.append(
                tuple(rng.gauss(c, std) for c in center)
            )
    return points


def uniform_noise(
    n: int,
    lows: Point,
    highs: Point,
    seed: Optional[int] = 0,
) -> List[Point]:
    """Uniform background noise inside a box."""
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(low, high) for low, high in zip(lows, highs))
        for _ in range(n)
    ]


class DriftingBlobStream:
    """An endless stream of points drawn from slowly drifting blobs.

    Each emitted point comes from one of ``n_blobs`` Gaussian blobs (with
    probability ``1 - noise_fraction``) or from uniform background noise.
    Blob centers random-walk inside the bounding box, so the clusters a
    sliding window sees move, merge, and split over time — the structural
    churn C-SGS's lifespan maintenance must absorb.
    """

    def __init__(
        self,
        n_blobs: int = 3,
        dimensions: int = 2,
        std: float = 0.4,
        drift: float = 0.02,
        noise_fraction: float = 0.3,
        lows: Optional[Point] = None,
        highs: Optional[Point] = None,
        seed: Optional[int] = 0,
    ):
        if not 0 <= noise_fraction <= 1:
            raise ValueError("noise_fraction must be in [0, 1]")
        self.dimensions = dimensions
        self.std = std
        self.drift = drift
        self.noise_fraction = noise_fraction
        self.lows = lows if lows is not None else (0.0,) * dimensions
        self.highs = highs if highs is not None else (10.0,) * dimensions
        self._rng = random.Random(seed)
        self._centers = [
            [
                self._rng.uniform(low, high)
                for low, high in zip(self.lows, self.highs)
            ]
            for _ in range(n_blobs)
        ]

    def _step_centers(self) -> None:
        for center in self._centers:
            for i in range(self.dimensions):
                center[i] += self._rng.gauss(0.0, self.drift)
                center[i] = min(max(center[i], self.lows[i]), self.highs[i])

    def points(self, n: int) -> Iterator[Point]:
        """Yield ``n`` coordinate tuples."""
        for _ in range(n):
            self._step_centers()
            if self._rng.random() < self.noise_fraction:
                yield tuple(
                    self._rng.uniform(low, high)
                    for low, high in zip(self.lows, self.highs)
                )
            else:
                center = self._rng.choice(self._centers)
                yield tuple(
                    self._rng.gauss(c, self.std) for c in center
                )

    def objects(self, n: int, start_oid: int = 0) -> Iterator[StreamObject]:
        """Yield ``n`` stream objects with sequential oids."""
        for i, coords in enumerate(self.points(n)):
            yield StreamObject(start_oid + i, coords)
