"""The customizable cluster distance metric (Section 7.2).

``Dist(Ca, Cb) = ps * Dist_location + sum_i w_i * Dist_nlf_i(Ca, Cb)``

* ``ps`` (position sensitivity) is 0 or 1. In position-sensitive mode two
  non-overlapping clusters are maximally distant and no further features
  are compared.
* Each non-locational feature distance is the *relative difference* with
  a min-denominator, as used in the paper's candidate-range derivation:
  ``|x - v| / min(x, v)``, capped at 1.
* Feature weights are analyst-specified and sum to 1.

The same spec drives the feature-index candidate search: a threshold
``t`` and weight ``w_i`` bound feature ``i``'s relative difference by
``B = t / w_i``, i.e. the candidate range is ``[v / (1 + B), v * (1 + B)]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.features import FEATURE_NAMES, ClusterFeatures
from repro.geometry.mbr import MBR

_EPSILON = 1e-9


def relative_difference(a: float, b: float) -> float:
    """min-denominator relative difference, capped at 1."""
    if a < 0 or b < 0:
        raise ValueError("features must be non-negative")
    if a == b:
        return 0.0
    denominator = min(a, b)
    if denominator <= _EPSILON:
        return 1.0
    return min(1.0, abs(a - b) / denominator)


def _default_weights() -> Dict[str, float]:
    # Equal weight on all four features, as in Section 8.2.
    return {name: 1.0 / len(FEATURE_NAMES) for name in FEATURE_NAMES}


@dataclass
class DistanceMetricSpec:
    """Analyst-customizable distance metric configuration."""

    position_sensitive: bool = False
    weights: Dict[str, float] = field(default_factory=_default_weights)

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(FEATURE_NAMES)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"weights must sum to 1, got {total}")
        if any(weight < 0 for weight in self.weights.values()):
            raise ValueError("weights must be non-negative")

    def weight(self, name: str) -> float:
        return self.weights.get(name, 0.0)


def location_distance(mbr_a: MBR, mbr_b: MBR) -> float:
    """0 when the clusters overlap in the data space, else 1."""
    return 0.0 if mbr_a.intersects(mbr_b) else 1.0


def cluster_feature_distance(
    features_a: ClusterFeatures,
    features_b: ClusterFeatures,
    spec: DistanceMetricSpec,
    mbr_a: Optional[MBR] = None,
    mbr_b: Optional[MBR] = None,
) -> float:
    """Cluster-level distance on the four non-locational features, plus
    the locational term when the spec is position-sensitive."""
    total = 0.0
    if spec.position_sensitive:
        if mbr_a is None or mbr_b is None:
            raise ValueError("position-sensitive matching requires MBRs")
        loc = location_distance(mbr_a, mbr_b)
        if loc >= 1.0:
            return 1.0
        total += loc
    for name in FEATURE_NAMES:
        weight = spec.weight(name)
        if weight == 0.0:
            continue
        total += weight * relative_difference(features_a[name], features_b[name])
    return min(1.0, total)


def feature_search_ranges(
    features: ClusterFeatures,
    spec: DistanceMetricSpec,
    threshold: float,
) -> Tuple[List[float], List[float]]:
    """Per-feature candidate search ranges (Section 7.2).

    Any cluster whose feature ``i`` falls outside
    ``[v / (1 + t/w_i), v * (1 + t/w_i)]`` necessarily exceeds the overall
    distance threshold, so the feature-grid range query can skip it.
    Zero-weight features are unconstrained — and so are features whose
    bound ``t/w_i`` reaches 1: the per-feature relative difference is
    capped at 1, so an out-of-range value contributes at most ``w_i <=
    t`` and cannot be excluded on its own (the uncapped derivation
    silently dropped such still-matching candidates).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    lows: List[float] = []
    highs: List[float] = []
    for name in FEATURE_NAMES:
        value = features[name]
        weight = spec.weight(name)
        if weight <= _EPSILON or threshold / weight >= 1.0:
            lows.append(0.0)
            highs.append(float("inf"))
            continue
        bound = threshold / weight
        lows.append(value / (1.0 + bound))
        highs.append(value * (1.0 + bound))
    return lows, highs
