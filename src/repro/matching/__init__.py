"""Cluster matching: distance metrics, alignment search, baseline matchers."""

from repro.matching.alignment import AlignmentResult, anytime_alignment_search
from repro.matching.cell_match import cell_level_distance
from repro.matching.crd_match import crd_distance
from repro.matching.graph_edit import graph_edit_distance
from repro.matching.metric import (
    DistanceMetricSpec,
    cluster_feature_distance,
    feature_search_ranges,
    relative_difference,
)
from repro.matching.subset_match import subset_match_distance

__all__ = [
    "AlignmentResult",
    "DistanceMetricSpec",
    "anytime_alignment_search",
    "cell_level_distance",
    "cluster_feature_distance",
    "crd_distance",
    "feature_search_ranges",
    "graph_edit_distance",
    "relative_difference",
    "subset_match_distance",
]
