"""Grid-cell-level cluster match (Section 7.2).

Given an alignment (an integer location-shifting vector applied to the
first SGS), every skeletal grid cell of ``Ca`` is compared against the
cell occupying the corresponding position in ``Cb``: status, density and
connectivity differences are aggregated under the analyst's feature
weights; a cell with no counterpart contributes the maximum difference
(its corresponding sub-region is empty). The total is normalized by the
number of compared positions, keeping the distance in [0, 1].

In position-sensitive mode the alignment is fixed to the zero vector, so
a single scan over the two cell sets suffices — matching the paper's
complexity claim.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.cells import Coord, SkeletalGridCell
from repro.core.sgs import SGS
from repro.matching.metric import DistanceMetricSpec, relative_difference

# Cell-level comparison re-uses the non-locational weights, renormalized
# over the three per-cell comparable features (volume is a cluster-level
# feature; at cell level every compared position has unit volume).
_CELL_FEATURES = ("core_count", "avg_density", "avg_connectivity")


def _cell_feature_weights(spec: DistanceMetricSpec) -> Tuple[float, float, float]:
    weights = [spec.weight(name) for name in _CELL_FEATURES]
    total = sum(weights)
    if total <= 0:
        return (1.0 / 3, 1.0 / 3, 1.0 / 3)
    return tuple(weight / total for weight in weights)  # type: ignore[return-value]


def _connection_difference(
    cell_a: SkeletalGridCell, cell_b: SkeletalGridCell, shift: Coord
) -> float:
    """Jaccard distance between the (shift-normalized) connection sets."""
    conn_a = {
        tuple(c + s for c, s in zip(coord, shift)) for coord in cell_a.connections
    }
    conn_b = set(cell_b.connections)
    if not conn_a and not conn_b:
        return 0.0
    union = conn_a | conn_b
    return 1.0 - len(conn_a & conn_b) / len(union)


def _pair_difference(
    cell_a: SkeletalGridCell,
    cell_b: SkeletalGridCell,
    shift: Coord,
    weights: Tuple[float, float, float],
) -> float:
    status_weight, density_weight, connectivity_weight = weights
    status_diff = 0.0 if cell_a.status is cell_b.status else 1.0
    density_diff = relative_difference(
        float(cell_a.population), float(cell_b.population)
    )
    connectivity_diff = _connection_difference(cell_a, cell_b, shift)
    return (
        status_weight * status_diff
        + density_weight * density_diff
        + connectivity_weight * connectivity_diff
    )


def cell_level_distance(
    sgs_a: SGS,
    sgs_b: SGS,
    spec: DistanceMetricSpec,
    alignment: Optional[Sequence[int]] = None,
) -> float:
    """Distance in [0, 1] between two SGS under a given alignment.

    ``alignment`` shifts ``sgs_a``'s cell locations; ``None`` means the
    zero vector (mandatory for position-sensitive matching).
    """
    if sgs_a.dimensions != sgs_b.dimensions:
        raise ValueError("cannot match SGS of different dimensionality")
    if alignment is None:
        shift: Coord = (0,) * sgs_a.dimensions
    else:
        if spec.position_sensitive and any(alignment):
            raise ValueError(
                "position-sensitive matching requires the zero alignment"
            )
        shift = tuple(int(s) for s in alignment)

    weights = _cell_feature_weights(spec)
    cells_b: Dict[Coord, SkeletalGridCell] = sgs_b.cells
    total = 0.0
    compared = 0
    matched_b = 0
    for coord, cell_a in sgs_a.cells.items():
        target = tuple(c + s for c, s in zip(coord, shift))
        cell_b = cells_b.get(target)
        compared += 1
        if cell_b is None:
            total += 1.0
        else:
            matched_b += 1
            total += _pair_difference(cell_a, cell_b, shift, weights)
    # Cells of Cb with no counterpart in Ca are empty sub-regions of Ca.
    unmatched_b = len(cells_b) - matched_b
    total += float(unmatched_b)
    compared += unmatched_b
    if compared == 0:
        return 0.0
    return total / compared
