"""CRD matching: the simple subtraction-based distance (Section 8.2).

Equal weight on the three CRD features — centroid, radius ("range") and
density — each normalized into [0, 1]. Three subtractions per candidate,
which is why CRD matching is the fastest (and, per Figure 9, the least
faithful) of the evaluated matchers.
"""

from __future__ import annotations

from repro.geometry.distance import euclidean_distance
from repro.matching.metric import relative_difference
from repro.summaries.crd import CRD


def crd_distance(a: CRD, b: CRD, position_sensitive: bool = False) -> float:
    """Distance in [0, 1] between two CRD summaries."""
    if a.dimensions != b.dimensions:
        raise ValueError("cannot match CRDs of different dimensionality")
    centroid_gap = euclidean_distance(a.centroid, b.centroid)
    reach = a.radius + b.radius
    if position_sensitive:
        if centroid_gap > reach:
            return 1.0
        centroid_term = centroid_gap / reach if reach > 0 else 0.0
    else:
        centroid_term = 0.0
    radius_term = relative_difference(a.radius, b.radius)
    density_term = relative_difference(a.density, b.density)
    if position_sensitive:
        return (centroid_term + radius_term + density_term) / 3.0
    return (radius_term + density_term) / 2.0
