"""SkPS matching: suboptimal graph edit distance via beam search.

Follows the fast suboptimal GED framework of Neuhaus, Riesen & Bunke
(SSPR 2006) the paper uses for matching skeletal point sets: node
assignments are explored in a tree search, but only the ``beam_width``
cheapest partial assignments survive each level, trading optimality for
speed. Costs:

* node substitution — Euclidean distance between the skeletal points,
  normalized by the joint bounding-box diagonal (so costs are scale
  free); centroids are pre-aligned in non-position-sensitive mode;
* node insertion / deletion — cost 1;
* edge mismatch — for each decided node pair, edges implied by one graph
  but absent in the other cost 0.5 each.

The final cost is normalized by the worst-case edit cost, keeping the
distance within [0, 1].
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.geometry.distance import euclidean_distance
from repro.summaries.skps import SkPS

Point = Tuple[float, ...]


def _normalizer(points_a: Sequence[Point], points_b: Sequence[Point]) -> float:
    dims = len(points_a[0])
    lows = [
        min(min(p[i] for p in points_a), min(p[i] for p in points_b))
        for i in range(dims)
    ]
    highs = [
        max(max(p[i] for p in points_a), max(p[i] for p in points_b))
        for i in range(dims)
    ]
    diagonal = math.sqrt(
        sum((high - low) ** 2 for low, high in zip(lows, highs))
    )
    return diagonal if diagonal > 0 else 1.0


def _translate(points: Sequence[Point], offset: Point) -> List[Point]:
    return [
        tuple(value + shift for value, shift in zip(point, offset))
        for point in points
    ]


def _adjacency(skps: SkPS) -> Dict[int, Set[int]]:
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(skps.size)}
    for a, b in skps.edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def graph_edit_distance(
    a: SkPS,
    b: SkPS,
    position_sensitive: bool = False,
    beam_width: int = 8,
) -> float:
    """Normalized suboptimal GED between two skeletal point sets."""
    if a.size == 0 or b.size == 0:
        raise ValueError("cannot match empty skeletal point sets")
    points_a = list(a.points)
    points_b = list(b.points)
    if not position_sensitive:
        centroid_a = tuple(
            sum(p[i] for p in points_a) / len(points_a)
            for i in range(len(points_a[0]))
        )
        centroid_b = tuple(
            sum(p[i] for p in points_b) / len(points_b)
            for i in range(len(points_b[0]))
        )
        offset = tuple(cb - ca for ca, cb in zip(centroid_a, centroid_b))
        points_a = _translate(points_a, offset)
    scale = _normalizer(points_a, points_b)
    adj_a = _adjacency(a)
    adj_b = _adjacency(b)

    n_a, n_b = len(points_a), len(points_b)
    edge_count_a = len(a.edges)
    edge_count_b = len(b.edges)
    worst = n_a + n_b + 0.5 * (edge_count_a + edge_count_b)

    # Beam state: (cost, mapping dict a_index -> b_index or None)
    Beam = Tuple[float, Dict[int, int]]
    beam: List[Beam] = [(0.0, {})]
    used_b_sets: List[Set[int]] = [set()]

    for i in range(n_a):
        candidates: List[Tuple[float, Dict[int, int], Set[int]]] = []
        for (cost, mapping), used_b in zip(beam, used_b_sets):
            # Delete node i.
            candidates.append((cost + 1.0, {**mapping, i: -1}, used_b))
            # Substitute with any unused node of b.
            for j in range(n_b):
                if j in used_b:
                    continue
                sub_cost = (
                    euclidean_distance(points_a[i], points_b[j]) / scale
                )
                edge_cost = 0.0
                for prev_a, prev_b in mapping.items():
                    if prev_b == -1:
                        continue
                    has_edge_a = prev_a in adj_a[i]
                    has_edge_b = prev_b in adj_b[j]
                    if has_edge_a != has_edge_b:
                        edge_cost += 0.5
                candidates.append(
                    (
                        cost + sub_cost + edge_cost,
                        {**mapping, i: j},
                        used_b | {j},
                    )
                )
        candidates.sort(key=lambda item: item[0])
        survivors = candidates[:beam_width]
        beam = [(cost, mapping) for cost, mapping, _ in survivors]
        used_b_sets = [used for _, _, used in survivors]

    best_cost = float("inf")
    for (cost, mapping), used_b in zip(beam, used_b_sets):
        # Unmatched b nodes are insertions; their unmatched edges cost too.
        remaining = n_b - len(used_b)
        total = cost + remaining
        for a_index, b_index in mapping.items():
            if b_index == -1:
                # Edges of deleted a-nodes to other deleted/unmapped nodes.
                total += 0.25 * len(adj_a[a_index])
        for j in range(n_b):
            if j not in used_b:
                total += 0.25 * len(adj_b[j])
        best_cost = min(best_cost, total)
    return min(1.0, best_cost / worst) if worst > 0 else 0.0
