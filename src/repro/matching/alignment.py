"""A*-style anytime alignment search (Section 7.2).

For non-position-sensitive matching, one or more alignments (integer
location-shifting vectors) may minimize the cell-level distance between
two clusters. Exhaustive search over all overlapping shifts is exact but
expensive; for online matching the paper uses an anytime best-first
search: start from the alignment that overlaps the two clusters well
(the rounded centroid difference), repeatedly expand the most promising
frontier alignment into its 3^d - 1 neighbor shifts, and return the best
alignment found when the expansion budget runs out.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.sgs import SGS
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import DistanceMetricSpec

Shift = Tuple[int, ...]


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of an alignment search."""

    distance: float
    alignment: Shift
    evaluated: int


def _centroid_shift(sgs_a: SGS, sgs_b: SGS) -> Shift:
    """Initial alignment: move Ca's cell-centroid onto Cb's."""
    dims = sgs_a.dimensions

    def centroid(sgs: SGS) -> Tuple[float, ...]:
        sums = [0.0] * dims
        for coord in sgs.cells:
            for i, c in enumerate(coord):
                sums[i] += c
        return tuple(total / len(sgs.cells) for total in sums)

    ca = centroid(sgs_a)
    cb = centroid(sgs_b)
    return tuple(int(round(b - a)) for a, b in zip(ca, cb))


def _neighbor_shifts(shift: Shift) -> Iterator[Shift]:
    dims = len(shift)
    for delta in itertools.product((-1, 0, 1), repeat=dims):
        if any(delta):
            yield tuple(s + d for s, d in zip(shift, delta))


def anytime_alignment_search(
    sgs_a: SGS,
    sgs_b: SGS,
    spec: DistanceMetricSpec,
    max_expansions: int = 64,
) -> AlignmentResult:
    """Best-first anytime search for a low-distance alignment.

    ``max_expansions`` is the computation budget: the number of frontier
    alignments expanded into their neighbors. The best distance found so
    far is returned when the budget is exhausted — an anytime guarantee,
    not an optimality one.
    """
    if spec.position_sensitive:
        zero = (0,) * sgs_a.dimensions
        return AlignmentResult(
            cell_level_distance(sgs_a, sgs_b, spec, zero), zero, 1
        )
    start = _centroid_shift(sgs_a, sgs_b)
    start_distance = cell_level_distance(sgs_a, sgs_b, spec, start)
    best = AlignmentResult(start_distance, start, 1)
    visited = {start}
    heap = [(start_distance, start)]
    evaluated = 1
    expansions = 0
    while heap and expansions < max_expansions:
        distance, shift = heapq.heappop(heap)
        expansions += 1
        for neighbor in _neighbor_shifts(shift):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            neighbor_distance = cell_level_distance(
                sgs_a, sgs_b, spec, neighbor
            )
            evaluated += 1
            if neighbor_distance < best.distance:
                best = AlignmentResult(neighbor_distance, neighbor, evaluated)
            heapq.heappush(heap, (neighbor_distance, neighbor))
    return AlignmentResult(best.distance, best.alignment, evaluated)


def exhaustive_alignment_search(
    sgs_a: SGS,
    sgs_b: SGS,
    spec: DistanceMetricSpec,
    margin: int = 1,
) -> AlignmentResult:
    """Exact search over every alignment that overlaps the two clusters.

    Used offline and by the E8 ablation to quantify how close the anytime
    search gets. ``margin`` extends the overlap box by a few cells.
    """
    dims = sgs_a.dimensions
    mins_a = [min(c[i] for c in sgs_a.cells) for i in range(dims)]
    maxs_a = [max(c[i] for c in sgs_a.cells) for i in range(dims)]
    mins_b = [min(c[i] for c in sgs_b.cells) for i in range(dims)]
    maxs_b = [max(c[i] for c in sgs_b.cells) for i in range(dims)]
    ranges = []
    for i in range(dims):
        low = mins_b[i] - maxs_a[i] - margin
        high = maxs_b[i] - mins_a[i] + margin
        ranges.append(range(low, high + 1))
    best_distance = float("inf")
    best_shift: Shift = (0,) * dims
    evaluated = 0
    for shift in itertools.product(*ranges):
        distance = cell_level_distance(sgs_a, sgs_b, spec, shift)
        evaluated += 1
        if distance < best_distance:
            best_distance = distance
            best_shift = shift
    return AlignmentResult(best_distance, best_shift, evaluated)
