"""RSP matching: point-set distance between random samples.

Implements a subset-matching distance in the spirit of the query
consolidation work the paper cites (Yang et al., CIKM 2007): a symmetric
normalized Chamfer distance. For each sampled point the distance to the
closest point of the other sample is taken; the two directed averages
are averaged and normalized by the joint bounding-box diagonal, yielding
a value in [0, 1]. In non-position-sensitive mode both samples are first
translated so their centroids coincide.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.distance import squared_euclidean_distance
from repro.summaries.rsp import RSP

Point = Tuple[float, ...]


def _centroid(points: Sequence[Point]) -> Point:
    dims = len(points[0])
    sums = [0.0] * dims
    for point in points:
        for i, value in enumerate(point):
            sums[i] += value
    return tuple(total / len(points) for total in sums)


def _translate(points: Sequence[Point], offset: Point) -> Tuple[Point, ...]:
    return tuple(
        tuple(value + shift for value, shift in zip(point, offset))
        for point in points
    )


def _directed_average(from_points: Sequence[Point], to_points: Sequence[Point]) -> float:
    total = 0.0
    for point in from_points:
        best = min(
            squared_euclidean_distance(point, other) for other in to_points
        )
        total += math.sqrt(best)
    return total / len(from_points)


def subset_match_distance(
    a: RSP, b: RSP, position_sensitive: bool = False
) -> float:
    """Distance in [0, 1] between two RSP samples."""
    if not a.points or not b.points:
        raise ValueError("cannot match empty samples")
    if a.dimensions != b.dimensions:
        raise ValueError("cannot match samples of different dimensionality")
    points_a = a.points
    points_b = b.points
    if not position_sensitive:
        centroid_a = _centroid(points_a)
        centroid_b = _centroid(points_b)
        offset = tuple(cb - ca for ca, cb in zip(centroid_a, centroid_b))
        points_a = _translate(points_a, offset)
    chamfer = 0.5 * (
        _directed_average(points_a, points_b)
        + _directed_average(points_b, points_a)
    )
    lows = [
        min(min(p[i] for p in points_a), min(p[i] for p in points_b))
        for i in range(a.dimensions)
    ]
    highs = [
        max(max(p[i] for p in points_a), max(p[i] for p in points_b))
        for i in range(a.dimensions)
    ]
    diagonal = math.sqrt(
        sum((high - low) ** 2 for low, high in zip(lows, highs))
    )
    if diagonal <= 0:
        return 0.0
    return min(1.0, chamfer / diagonal)
