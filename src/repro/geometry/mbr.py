"""Minimum bounding rectangles (hyper-rectangles) in d dimensions.

MBRs are the unit of the locational feature index (Section 7.1): the
Pattern Base stores one MBR per archived cluster and organizes them in an
R-tree. They are also used internally by the R-tree node structure.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


class MBR:
    """An axis-aligned minimum bounding rectangle.

    ``lows[i] <= highs[i]`` holds for every dimension ``i``. MBRs are
    immutable; all combinators return new instances.
    """

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]):
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have equal length")
        if not lows:
            raise ValueError("MBR must have at least one dimension")
        for low, high in zip(lows, highs):
            if low > high:
                raise ValueError(f"invalid MBR bounds: low {low} > high {high}")
        self.lows: Tuple[float, ...] = tuple(lows)
        self.highs: Tuple[float, ...] = tuple(highs)

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Return a degenerate MBR covering a single point."""
        return cls(tuple(point), tuple(point))

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "MBR":
        """Return the tightest MBR covering ``points`` (must be non-empty)."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot build an MBR from zero points") from None
        lows = list(first)
        highs = list(first)
        for point in iterator:
            for i, value in enumerate(point):
                if value < lows[i]:
                    lows[i] = value
                elif value > highs[i]:
                    highs[i] = value
        return cls(lows, highs)

    @property
    def dimensions(self) -> int:
        return len(self.lows)

    def volume(self) -> float:
        """Return the d-dimensional volume (product of side lengths)."""
        result = 1.0
        for low, high in zip(self.lows, self.highs):
            result *= high - low
        return result

    def margin(self) -> float:
        """Return the sum of side lengths (used by R-tree heuristics)."""
        return sum(high - low for low, high in zip(self.lows, self.highs))

    def center(self) -> Tuple[float, ...]:
        return tuple(
            (low + high) / 2.0 for low, high in zip(self.lows, self.highs)
        )

    def union(self, other: "MBR") -> "MBR":
        """Return the smallest MBR covering both operands."""
        return MBR(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def intersects(self, other: "MBR") -> bool:
        """Return True when the two MBRs overlap (boundary contact counts)."""
        for low_a, high_a, low_b, high_b in zip(
            self.lows, self.highs, other.lows, other.highs
        ):
            if low_a > high_b or low_b > high_a:
                return False
        return True

    def contains_point(self, point: Sequence[float]) -> bool:
        if len(point) != self.dimensions:
            raise ValueError("dimension mismatch")
        for low, high, value in zip(self.lows, self.highs, point):
            if value < low or value > high:
                return False
        return True

    def contains(self, other: "MBR") -> bool:
        """Return True when ``other`` lies entirely inside this MBR."""
        for low_a, high_a, low_b, high_b in zip(
            self.lows, self.highs, other.lows, other.highs
        ):
            if low_b < low_a or high_b > high_a:
                return False
        return True

    def enlargement(self, other: "MBR") -> float:
        """Return the volume increase of union(self, other) over self."""
        return self.union(other).volume() - self.volume()

    def overlap_volume(self, other: "MBR") -> float:
        """Return the volume of the intersection (0.0 when disjoint)."""
        result = 1.0
        for low_a, high_a, low_b, high_b in zip(
            self.lows, self.highs, other.lows, other.highs
        ):
            side = min(high_a, high_b) - max(low_a, low_b)
            if side < 0:
                return 0.0
            result *= side
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.lows == other.lows and self.highs == other.highs

    def __hash__(self) -> int:
        return hash((self.lows, self.highs))

    def __repr__(self) -> str:
        return f"MBR(lows={self.lows}, highs={self.highs})"
