"""Distance functions on coordinate tuples.

All clustering code in this package defines the neighbor predicate as
``euclidean_distance(a, b) <= theta_range`` (Section 3.1 of the paper).
The squared variant avoids the square root on hot paths; the Chebyshev
variant supports grid-cell adjacency reasoning.
"""

from __future__ import annotations

import math
from typing import Sequence


def squared_euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the squared Euclidean distance between two points.

    Raises ``ValueError`` if the points have different dimensionality.
    """
    if len(a) != len(b):
        raise ValueError(
            f"dimension mismatch: {len(a)} vs {len(b)}"
        )
    total = 0.0
    for ai, bi in zip(a, b):
        diff = ai - bi
        total += diff * diff
    return total


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the Euclidean (L2) distance between two points."""
    return math.sqrt(squared_euclidean_distance(a, b))


def chebyshev_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the Chebyshev (L-infinity) distance between two points."""
    if len(a) != len(b):
        raise ValueError(
            f"dimension mismatch: {len(a)} vs {len(b)}"
        )
    return max(abs(ai - bi) for ai, bi in zip(a, b))
