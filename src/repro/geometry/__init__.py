"""Geometric primitives shared by the clustering and indexing substrates."""

from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    squared_euclidean_distance,
)
from repro.geometry.mbr import MBR

__all__ = [
    "MBR",
    "chebyshev_distance",
    "euclidean_distance",
    "squared_euclidean_distance",
]
