"""Geometric primitives shared by the clustering and indexing substrates."""

from repro.geometry.coordstore import (
    HAVE_NUMPY,
    REFINEMENT_MODES,
    CandidateBatch,
    CoordStore,
    canonical_sq_dist,
    get_default_refinement,
    resolve_refinement,
    set_default_refinement,
    validate_refinement,
    within_sq_range,
)
from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    squared_euclidean_distance,
)
from repro.geometry.mbr import MBR

__all__ = [
    "HAVE_NUMPY",
    "MBR",
    "REFINEMENT_MODES",
    "CandidateBatch",
    "CoordStore",
    "canonical_sq_dist",
    "chebyshev_distance",
    "euclidean_distance",
    "get_default_refinement",
    "resolve_refinement",
    "set_default_refinement",
    "squared_euclidean_distance",
    "validate_refinement",
    "within_sq_range",
]
