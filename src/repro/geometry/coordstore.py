"""Struct-of-arrays coordinate store: the vectorized refinement kernel.

Every neighbor-search backend answers the same fixed-radius (θr) query:
gather candidates cheaply from its spatial structure, then *refine* them
with the exact squared Euclidean distance. The refinement loop is the
innermost numeric kernel of every clustering method in the package
(Section 5.3: range-query search dominates per-object insertion cost),
and this module is its single implementation.

:class:`CoordStore` keeps live coordinates in column-major arrays — one
growable float64 column per dimension — owning the oid→row mapping and
tombstoned removal, so a refinement pass over k candidates is k fused
array operations instead of k·d interpreted Python steps. Two kernel
implementations are selected per store (``auto`` picks at import time):

* ``vector`` — NumPy columns; batch kernels run as array expressions;
* ``scalar`` — pure-Python ``array('d')`` columns with loop kernels.

Canonical summation order
-------------------------

Floating-point addition is not associative, so the two paths could
disagree on boundary points if they summed in different orders. The
canonical squared distance is pinned as **dimension-ascending sequential
accumulation** in IEEE-754 doubles::

    total = 0.0
    for each dimension j = 0..d-1:        # ascending, one at a time
        total = fl(total + fl((a_j - b_j) * (a_j - b_j)))

and the neighbor predicate is the boundary-inclusive ``total <= θr²``.
The vectorized kernels accumulate one *column* at a time in the same
ascending order, so every element undergoes the identical sequence of
IEEE operations and the totals are bit-equal to the scalar ones. The
scalar fast path (:func:`within_sq_range`) may stop accumulating as soon
as the partial sum exceeds θr²; that early exit is decision-equivalent
because partial sums of non-negative addends are monotone non-decreasing
under IEEE rounding. ``tests/test_properties_coordstore.py`` asserts
both facts rather than assuming them.

All results are emitted in candidate order (row order for whole-store
scans), so consumers observe byte-identical output from either path.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.streams.objects import StreamObject

try:  # NumPy is optional; the scalar path is selected when it is absent.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via refinement='scalar'
    _np = None

HAVE_NUMPY = _np is not None

#: Modes accepted everywhere a refinement choice is exposed (config,
#: CLI ``--refine``, provider constructors).
REFINEMENT_MODES: Tuple[str, ...] = ("auto", "scalar", "vector")

_default_refinement = "auto"


def validate_refinement(mode: str) -> str:
    """Return ``mode`` if it is a known refinement mode, else raise."""
    if mode not in REFINEMENT_MODES:
        raise ValueError(
            f"unknown refinement mode {mode!r}; "
            f"choose one of {', '.join(REFINEMENT_MODES)}"
        )
    return mode


def set_default_refinement(mode: str) -> str:
    """Set the process-wide default mode; returns the previous one."""
    global _default_refinement
    previous = _default_refinement
    _default_refinement = validate_refinement(mode)
    return previous


def get_default_refinement() -> str:
    return _default_refinement


def resolve_refinement(mode: Optional[str] = None) -> str:
    """Resolve a mode request to the concrete kernel path.

    ``None`` means the process-wide default (``auto`` unless changed);
    ``auto`` selects ``vector`` exactly when NumPy imported at module
    load. Requesting ``vector`` without NumPy is an error rather than a
    silent downgrade.
    """
    resolved = validate_refinement(
        _default_refinement if mode is None else mode
    )
    if resolved == "auto":
        return "vector" if HAVE_NUMPY else "scalar"
    if resolved == "vector" and not HAVE_NUMPY:
        raise RuntimeError(
            "refinement mode 'vector' requires NumPy, which is not "
            "installed; use 'scalar' or 'auto'"
        )
    return resolved


# ----------------------------------------------------------------------
# Canonical scalar kernels
# ----------------------------------------------------------------------


def canonical_sq_dist(a: Sequence[float], b: Sequence[float]) -> float:
    """The canonical squared distance: full dimension-ascending sum."""
    total = 0.0
    for ai, bi in zip(a, b):
        diff = ai - bi
        total += diff * diff
    return total


def within_sq_range(
    a: Sequence[float], b: Sequence[float], sq_range: float
) -> bool:
    """Exact refinement: canonical squared distance <= sq_range.

    Early-exits once the partial sum exceeds ``sq_range`` — decision-
    equivalent to the full canonical sum because the partial sums are
    monotone non-decreasing (each addend is non-negative and IEEE
    addition of a non-negative value never decreases the accumulator).
    """
    total = 0.0
    for ai, bi in zip(a, b):
        diff = ai - bi
        total += diff * diff
        if total > sq_range:
            return False
    return True


class CandidateBatch:
    """Pre-gathered candidate set reusable across probes.

    Produced by :meth:`CoordStore.batch`; holds the candidate objects
    and (on the vector path, resolved lazily on first kernel use) their
    row indices as one array, so a batch of queries sharing a candidate
    set (e.g. all probes landing in one grid cell) pays the gather cost
    once — and not at all when every probe takes the small-batch scalar
    fallback.
    """

    __slots__ = ("objs", "rows")

    def __init__(self, objs: List[StreamObject], rows=None) -> None:
        self.objs = objs
        self.rows = rows

    def __len__(self) -> int:
        return len(self.objs)


class CoordStore:
    """Column-major coordinate table with batched distance kernels.

    Rows are append-only; removal tombstones the row (the oid mapping is
    dropped immediately, the column slot is reclaimed by periodic
    compaction). ``track_oids=False`` skips the oid→row mapping for
    static hosts that index rows positionally (the k-d tree's leaf
    spans) and may hold duplicate oids.
    """

    #: Compact once tombstones outnumber live rows (and are non-trivial).
    _COMPACT_MIN = 32

    #: Below this much kernel work (candidates × probes) the scalar loop
    #: beats the fixed per-call cost of the array kernels (row
    #: resolution + array allocation), so vector stores dispatch small
    #: refinements to the scalar path. Legal because both paths produce
    #: byte-identical results (same canonical summation order, same
    #: candidate order) — this is a pure performance crossover, pinned
    #: by the parity property suite. Measured crossover on the Figure-7
    #: 4-D workload sits around 40 candidates per probe.
    _VECTOR_MIN_WORK = 48

    def __init__(
        self,
        dimensions: int,
        refinement: Optional[str] = None,
        track_oids: bool = True,
    ):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.dimensions = int(dimensions)
        self.refinement = resolve_refinement(refinement)
        self._vector = self.refinement == "vector"
        self._track_oids = track_oids
        self._row_of: Dict[int, int] = {}
        self._objs: List[Optional[StreamObject]] = []
        self._tombstones = 0
        if self._vector:
            self._cap = 64
            self._cols = [
                _np.empty(self._cap, dtype=_np.float64)
                for _ in range(self.dimensions)
            ]
        else:
            self._cols = [array("d") for _ in range(self.dimensions)]

    # ------------------------------------------------------------------
    # Row bookkeeping
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (non-tombstoned) rows."""
        return len(self._objs) - self._tombstones

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def row_of(self, oid: int) -> int:
        return self._row_of[oid]

    def get(self, oid: int) -> Optional[StreamObject]:
        row = self._row_of.get(oid)
        return None if row is None else self._objs[row]

    def objects(self) -> Iterator[StreamObject]:
        """Live objects in row (insertion) order."""
        return (obj for obj in self._objs if obj is not None)

    def add(self, obj: StreamObject) -> int:
        """Append one object's coordinates; returns its row index."""
        coords = obj.coords
        if len(coords) != self.dimensions:
            raise ValueError(
                f"object {obj.oid} has {len(coords)} dimensions, "
                f"store expects {self.dimensions}"
            )
        if self._track_oids:
            if obj.oid in self._row_of:
                raise KeyError(f"oid {obj.oid} already stored")
        row = len(self._objs)
        if self._vector:
            if row == self._cap:
                self._grow()
            for j, col in enumerate(self._cols):
                col[row] = coords[j]
        else:
            for j, col in enumerate(self._cols):
                col.append(coords[j])
        self._objs.append(obj)
        if self._track_oids:
            self._row_of[obj.oid] = row
        return row

    def remove(self, oid: int) -> None:
        """Tombstone the row of ``oid`` (raises KeyError when absent)."""
        if not self._track_oids:
            raise TypeError("store was built with track_oids=False")
        row = self._row_of.pop(oid, None)
        if row is None:
            raise KeyError(f"oid {oid} not present in coordinate store")
        self._objs[row] = None
        self._tombstones += 1
        if (
            self._tombstones > self._COMPACT_MIN
            and self._tombstones * 2 > len(self._objs)
        ):
            self._compact()

    def _grow(self) -> None:
        self._cap *= 2
        used = len(self._objs)
        grown = []
        for col in self._cols:
            new = _np.empty(self._cap, dtype=_np.float64)
            new[:used] = col[:used]
            grown.append(new)
        self._cols = grown

    def _compact(self) -> None:
        """Rewrite the columns with live rows only, preserving order."""
        live = [obj for obj in self._objs if obj is not None]
        self._objs = []
        self._row_of = {}
        self._tombstones = 0
        if self._vector:
            self._cap = max(64, 2 * len(live))
            self._cols = [
                _np.empty(self._cap, dtype=_np.float64)
                for _ in range(self.dimensions)
            ]
        else:
            self._cols = [array("d") for _ in range(self.dimensions)]
        for obj in live:
            self.add(obj)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def _acc_sq_dists(self, rows, probe: Sequence[float]):
        """Vector path: canonical sums for ``rows`` (array or slice).

        One column at a time in ascending dimension order — every
        element sees the exact IEEE operation sequence of
        :func:`canonical_sq_dist`.
        """
        cols = self._cols
        diff = cols[0][rows] - probe[0]
        acc = diff * diff
        for j in range(1, self.dimensions):
            diff = cols[j][rows] - probe[j]
            acc += diff * diff
        return acc

    def _check_probe(self, probe: Sequence[float]) -> None:
        if len(probe) != self.dimensions:
            raise ValueError(
                f"probe has {len(probe)} dimensions, "
                f"store expects {self.dimensions}"
            )

    def sq_dists_to(
        self, probe: Sequence[float], oids: Optional[Sequence[int]] = None
    ) -> List[float]:
        """Canonical squared distances to ``probe``.

        Over all live rows in row order by default, or over ``oids`` in
        the given order (KeyError for absent/tombstoned oids).
        """
        self._check_probe(probe)
        if oids is None:
            rows = [
                row for row, obj in enumerate(self._objs) if obj is not None
            ]
        else:
            rows = [self._row_of[oid] for oid in oids]
        if not rows:
            return []
        if self._vector:
            idx = _np.fromiter(rows, dtype=_np.intp, count=len(rows))
            return self._acc_sq_dists(idx, probe).tolist()
        return [
            canonical_sq_dist(self._objs[row].coords, probe) for row in rows
        ]

    def batch(self, objs: Sequence[StreamObject]) -> CandidateBatch:
        """Pre-gather a candidate set for repeated refinement.

        The batch snapshots row positions lazily; it is invalidated by
        any mutation of the store (add/remove may trigger compaction),
        so gather-and-refine must complete without interleaved updates.
        """
        return CandidateBatch(list(objs))

    def _batch_rows(self, batch: CandidateBatch):
        """Resolve (once) and return the batch's row-index array."""
        rows = batch.rows
        if rows is None:
            row_of = self._row_of
            rows = _np.fromiter(
                (row_of[obj.oid] for obj in batch.objs),
                dtype=_np.intp,
                count=len(batch.objs),
            )
            batch.rows = rows
        return rows

    @staticmethod
    def _refine_scalar(
        objs: Sequence[Optional[StreamObject]],
        probe: Sequence[float],
        sq_range: float,
        exclude_oid: int,
    ) -> List[StreamObject]:
        result = []
        for obj in objs:
            if (
                obj is not None
                and obj.oid != exclude_oid
                and within_sq_range(probe, obj.coords, sq_range)
            ):
                result.append(obj)
        return result

    def refine_batch(
        self,
        batch: CandidateBatch,
        probe: Sequence[float],
        sq_range: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """Exact-refine a pre-gathered candidate set against one probe."""
        self._check_probe(probe)
        objs = batch.objs
        if not objs:
            return []
        if self._vector and len(objs) >= self._VECTOR_MIN_WORK:
            acc = self._acc_sq_dists(self._batch_rows(batch), probe)
            result = []
            for i in _np.nonzero(acc <= sq_range)[0].tolist():
                obj = objs[i]
                if obj.oid != exclude_oid:
                    result.append(obj)
            return result
        return self._refine_scalar(objs, probe, sq_range, exclude_oid)

    def refine(
        self,
        objs: Sequence[StreamObject],
        probe: Sequence[float],
        sq_range: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """Exact-refine candidate objects against one probe."""
        self._check_probe(probe)
        if self._vector and len(objs) >= self._VECTOR_MIN_WORK:
            if not isinstance(objs, list):
                objs = list(objs)
            return self.refine_batch(
                CandidateBatch(objs), probe, sq_range, exclude_oid
            )
        return self._refine_scalar(objs, probe, sq_range, exclude_oid)

    def refine_many(
        self,
        batch: CandidateBatch,
        probes: Sequence[Sequence[float]],
        sq_range: float,
        exclude_oids: Optional[Sequence[int]] = None,
    ) -> List[List[StreamObject]]:
        """Refine one candidate set against many probes in one sweep.

        The vector path evaluates the whole probes × candidates distance
        matrix as d column operations (the grid's per-slide batch
        becomes one array sweep per occupied cell).
        """
        for probe in probes:
            self._check_probe(probe)
        objs = batch.objs
        if exclude_oids is None:
            exclude_oids = [-1] * len(probes)
        if not objs or not probes:
            return [[] for _ in probes]
        if self._vector and len(objs) * len(probes) >= self._VECTOR_MIN_WORK:
            cols = self._cols
            rows = self._batch_rows(batch)
            pmat = _np.array(probes, dtype=_np.float64)
            cand = cols[0][rows]
            diff = pmat[:, 0][:, None] - cand[None, :]
            acc = diff * diff
            for j in range(1, self.dimensions):
                cand = cols[j][rows]
                diff = pmat[:, j][:, None] - cand[None, :]
                acc += diff * diff
            mask = acc <= sq_range
            results = []
            for qi, exclude_oid in enumerate(exclude_oids):
                hits = []
                for i in _np.nonzero(mask[qi])[0].tolist():
                    obj = objs[i]
                    if obj.oid != exclude_oid:
                        hits.append(obj)
                results.append(hits)
            return results
        return [
            self.refine_batch(batch, probe, sq_range, exclude_oid)
            for probe, exclude_oid in zip(probes, exclude_oids)
        ]

    def refine_span(
        self,
        start: int,
        stop: int,
        probe: Sequence[float],
        sq_range: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """Exact-refine a contiguous row span (a k-d tree leaf)."""
        self._check_probe(probe)
        if self._vector and stop - start >= self._VECTOR_MIN_WORK:
            acc = self._acc_sq_dists(slice(start, stop), probe)
            objs = self._objs
            result = []
            for i in _np.nonzero(acc <= sq_range)[0].tolist():
                obj = objs[start + i]
                if obj is not None and obj.oid != exclude_oid:
                    result.append(obj)
            return result
        return self._refine_scalar(
            self._objs[start:stop], probe, sq_range, exclude_oid
        )

    def span_objects(self, start: int, stop: int) -> List[StreamObject]:
        """Live objects of a contiguous row span, in row order."""
        return [obj for obj in self._objs[start:stop] if obj is not None]

    def within_radius(
        self,
        probe: Sequence[float],
        sq_range: float,
        exclude_oid: int = -1,
    ) -> List[StreamObject]:
        """All live objects within the radius, in row order."""
        self._check_probe(probe)
        if not self._objs:
            return []
        if self._vector and len(self._objs) >= self._VECTOR_MIN_WORK:
            acc = self._acc_sq_dists(slice(0, len(self._objs)), probe)
            objs = self._objs
            result = []
            for i in _np.nonzero(acc <= sq_range)[0].tolist():
                obj = objs[i]
                if obj is not None and obj.oid != exclude_oid:
                    result.append(obj)
            return result
        return self._refine_scalar(self._objs, probe, sq_range, exclude_oid)

    def pairwise_within(
        self, oids: Sequence[int], sq_range: float
    ) -> List[Tuple[int, int]]:
        """All oid pairs (in given-order position ``i < j``) within range.

        Boundary-inclusive, canonical summation; KeyError for absent or
        tombstoned oids.
        """
        oids = list(oids)
        k = len(oids)
        if k < 2:
            return []
        rows = [self._row_of[oid] for oid in oids]
        if self._vector:
            idx = _np.fromiter(rows, dtype=_np.intp, count=k)
            col = self._cols[0][idx]
            diff = col[:, None] - col[None, :]
            acc = diff * diff
            for j in range(1, self.dimensions):
                col = self._cols[j][idx]
                diff = col[:, None] - col[None, :]
                acc += diff * diff
            mask = _np.triu(acc <= sq_range, k=1)
            ii, jj = _np.nonzero(mask)
            return [
                (oids[i], oids[j]) for i, j in zip(ii.tolist(), jj.tolist())
            ]
        objs = [self._objs[row] for row in rows]
        result = []
        for i in range(k):
            a = objs[i].coords
            for j in range(i + 1, k):
                if within_sq_range(a, objs[j].coords, sq_range):
                    result.append((oids[i], oids[j]))
        return result
