"""Common interface for post-hoc cluster summarizers.

These implement the two-phase pipelines of Section 8.1 ("Extra-N + X"):
clusters are first extracted in full representation, then each cluster is
compressed into a summary by a separate pass. C-SGS needs no such pass —
its summaries fall out of the extraction itself.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.clustering.cluster import Cluster


class ClusterSummarizer:
    """Base class: turn a full cluster representation into a summary."""

    #: short identifier used in experiment tables
    name: str = "base"

    def summarize(self, cluster: Cluster) -> Any:
        raise NotImplementedError

    def summarize_all(self, clusters: Iterable[Cluster]) -> List[Any]:
        return [self.summarize(cluster) for cluster in clusters]
