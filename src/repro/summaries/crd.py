"""Centroid–Radius–Density summarization (the "traditional" baseline).

CRD treats a cluster as a statistical phenomenon (Section 2's critique):
one centroid, one radius, one density number. It is extremely compact and
cheap to build (a single scan over the members), but by construction it
cannot express arbitrary shapes, internal connectivity, or non-uniform
density — which is exactly what the matching-quality experiment
(Figure 9) exposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.clustering.cluster import Cluster
from repro.geometry.distance import euclidean_distance
from repro.summaries.base import ClusterSummarizer


@dataclass(frozen=True)
class CRD:
    """Centroid + radius + density of one cluster."""

    centroid: Tuple[float, ...]
    radius: float
    density: float
    population: int

    @property
    def dimensions(self) -> int:
        return len(self.centroid)


def _sphere_volume(radius: float, dimensions: int) -> float:
    """Volume of a d-ball (the density denominator)."""
    if radius <= 0:
        return 0.0
    return (
        math.pi ** (dimensions / 2.0)
        / math.gamma(dimensions / 2.0 + 1.0)
        * radius**dimensions
    )


class CRDSummarizer(ClusterSummarizer):
    """Single-scan centroid/radius/density extraction."""

    name = "CRD"

    def summarize(self, cluster: Cluster) -> CRD:
        members = cluster.members
        if not members:
            raise ValueError("cannot summarize an empty cluster")
        centroid = cluster.centroid()
        radius = max(
            euclidean_distance(obj.coords, centroid) for obj in members
        )
        volume = _sphere_volume(radius, len(centroid))
        density = len(members) / volume if volume > 0 else float(len(members))
        return CRD(centroid, radius, density, len(members))
