"""Skeletal Point Summarization (SkPS) — the paper's initial design
(Section 4.2), kept as an evaluated alternative.

An SkPS is a graph whose vertices are a minimal set of connected core
objects ("skeletal points") whose θr-neighborhoods jointly cover the
whole cluster, and whose edges are the neighbor relations among them.
Finding a minimum such set is the connected dominating set problem
(NP-complete), so — as in the paper's experiments — we compute an
*approximate* SkPS with the greedy MG algorithm of Guha & Khuller:
grow a connected black set from the highest-coverage core object, always
extending through a covered (gray) core object that covers the most
still-uncovered objects.

This construction is intentionally faithful to its cost profile: it
needs the cluster's core-object neighbor graph, so summarizing one
cluster is far more expensive than CRD/RSP/SGS — which is exactly the
overhead Figure 7 shows for "Extra-N + SkPS".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.clustering.cluster import Cluster
from repro.index.grid_index import GridIndex
from repro.summaries.base import ClusterSummarizer


@dataclass(frozen=True)
class SkPS:
    """Skeletal point set: vertices (coords) + undirected edges."""

    points: Tuple[Tuple[float, ...], ...]
    edges: FrozenSet[Tuple[int, int]]
    population: int

    @property
    def size(self) -> int:
        return len(self.points)

    def degree(self, index: int) -> int:
        return sum(1 for a, b in self.edges if a == index or b == index)


class SkPSSummarizer(ClusterSummarizer):
    """Greedy (MG-style) connected-dominating-set summarization."""

    name = "SkPS"

    def __init__(self, theta_range: float):
        if theta_range <= 0:
            raise ValueError("theta_range must be positive")
        self.theta_range = float(theta_range)

    def summarize(self, cluster: Cluster) -> SkPS:
        members = cluster.members
        if not members:
            raise ValueError("cannot summarize an empty cluster")
        dims = members[0].dimensions
        index = GridIndex(self.theta_range, dims)
        index.bulk_load(members)

        core_oids = {obj.oid for obj in cluster.core_objects}
        # Neighborhoods restricted to cluster members.
        coverage: Dict[int, Set[int]] = {}
        core_adjacency: Dict[int, List[int]] = {}
        for obj in cluster.core_objects:
            neighbors = index.range_query(obj.coords, exclude_oid=obj.oid)
            coverage[obj.oid] = {nb.oid for nb in neighbors}
            coverage[obj.oid].add(obj.oid)
            core_adjacency[obj.oid] = [
                nb.oid for nb in neighbors if nb.oid in core_oids
            ]

        uncovered: Set[int] = {obj.oid for obj in members}
        if not cluster.core_objects:
            raise ValueError("a density-based cluster must have core objects")

        # Seed: the core object covering the most members.
        seed = max(coverage, key=lambda oid: len(coverage[oid] & uncovered))
        black: List[int] = [seed]
        black_set: Set[int] = {seed}
        uncovered -= coverage[seed]
        # Gray frontier: core objects covered by (neighbors of) the black set.
        frontier: Set[int] = {
            oid for oid in core_adjacency[seed] if oid not in black_set
        }

        while uncovered:
            best = None
            best_gain = -1
            for oid in frontier:
                gain = len(coverage[oid] & uncovered)
                if gain > best_gain:
                    best_gain = gain
                    best = oid
            if best is None or best_gain <= 0:
                # All remaining uncovered members are edge objects hanging
                # off core objects not yet reachable with positive gain;
                # extend through any frontier core with nonzero frontier
                # growth to keep the set connected.
                if not frontier:
                    break
                best = next(iter(frontier))
            black.append(best)
            black_set.add(best)
            uncovered -= coverage[best]
            frontier.discard(best)
            for oid in core_adjacency[best]:
                if oid not in black_set:
                    frontier.add(oid)

        by_oid = {obj.oid: obj for obj in members}
        points = tuple(by_oid[oid].coords for oid in black)
        position = {oid: i for i, oid in enumerate(black)}
        edges: Set[Tuple[int, int]] = set()
        for oid in black:
            for other in core_adjacency[oid]:
                if other in black_set:
                    a, b = position[oid], position[other]
                    if a != b:
                        edges.add((min(a, b), max(a, b)))
        return SkPS(points, frozenset(edges), population=len(members))
