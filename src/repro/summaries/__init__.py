"""Alternative cluster summarization formats evaluated against SGS."""

from repro.summaries.base import ClusterSummarizer
from repro.summaries.crd import CRD, CRDSummarizer
from repro.summaries.rsp import RSP, RSPSummarizer
from repro.summaries.skps import SkPS, SkPSSummarizer

__all__ = [
    "CRD",
    "CRDSummarizer",
    "ClusterSummarizer",
    "RSP",
    "RSPSummarizer",
    "SkPS",
    "SkPSSummarizer",
]
