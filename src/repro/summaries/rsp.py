"""Random Sampling summarization (RSP).

RSP represents each cluster by a uniform random sample of its members.
Following Section 8's evaluation protocol, the sampling rate is chosen
per cluster so the sample's memory footprint equals that of the SGS of
the same cluster — making the storage budgets of the two formats
identical and the quality comparison fair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.clustering.cluster import Cluster
from repro.summaries.base import ClusterSummarizer


@dataclass(frozen=True)
class RSP:
    """A random member sample of one cluster."""

    points: Tuple[Tuple[float, ...], ...]
    population: int

    @property
    def sample_size(self) -> int:
        return len(self.points)

    @property
    def dimensions(self) -> int:
        return len(self.points[0]) if self.points else 0


class RSPSummarizer(ClusterSummarizer):
    """Uniform random sampling with a budget-matched sample size.

    ``budget_cells(cluster)``, when provided, returns the number of
    skeletal grid cells the cluster's SGS uses; the sample size is chosen
    so the RSP consumes the same number of bytes under the shared cost
    model (one SGS cell stores roughly the same bytes as one sampled
    point: 4-byte coordinates vs. cell attributes — see
    ``repro.eval.memory``). Without a budget callback, ``rate`` applies.
    """

    name = "RSP"

    def __init__(
        self,
        rate: float = 0.02,
        budget_cells=None,
        seed: Optional[int] = 7,
    ):
        if not 0 < rate <= 1:
            raise ValueError("rate must be in (0, 1]")
        self.rate = rate
        self.budget_cells = budget_cells
        self._rng = random.Random(seed)

    def summarize(self, cluster: Cluster) -> RSP:
        members = cluster.members
        if not members:
            raise ValueError("cannot summarize an empty cluster")
        if self.budget_cells is not None:
            size = max(1, min(len(members), int(self.budget_cells(cluster))))
        else:
            size = max(1, int(round(len(members) * self.rate)))
        sample = self._rng.sample(members, size)
        return RSP(
            tuple(obj.coords for obj in sample),
            population=len(members),
        )
