"""Declarative query specifications (Figures 2 and 3).

These dataclasses mirror the paper's query templates so applications can
describe a workload once and hand it to the framework:

* :class:`ContinuousClusteringQuery` —
  ``DETECT DensityBasedClusters(f+s) FROM stream USING θrange, θcnt
  IN Windows WITH win AND slide``
* :class:`ClusterMatchingQuery` —
  ``GIVEN cluster SELECT clusters FROM History
  WHERE Distance <= sim_threshold``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.archive.store import validate_store_spec
from repro.geometry.coordstore import validate_refinement
from repro.index.provider import validate_backend
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval.shards import validate_partition_key
from repro.serving.executors import validate_mode
from repro.streams.windows import (
    CountBasedWindowSpec,
    TimeBasedWindowSpec,
    WindowSpec,
)


@dataclass
class ContinuousClusteringQuery:
    """A continuous cluster extraction query (Figure 2).

    ``index_backend`` selects the neighbor-search backend the query
    executes against (``grid`` / ``kdtree`` / ``rtree`` / ``auto``; see
    :mod:`repro.index.provider` — ``auto`` picks grid vs k-d tree from
    the dimensionality and the observed cell occupancy). ``refinement``
    selects the distance-refinement kernel path (``auto`` / ``scalar`` /
    ``vector``; see :mod:`repro.geometry.coordstore` — ``auto``
    vectorizes when NumPy is available).

    The serving-side knobs shape the archive the query accumulates:
    ``match_shards`` > 1 partitions the Pattern Base (by
    ``match_shard_key``: ``window`` span or ``feature`` grid region)
    and fans matching queries out per shard;
    ``match_inverted_levels`` maintains the inverted cell-signature
    index at those coarse rungs during archival, so coarse screening
    runs on posting lists instead of per-pattern ladder walks (see
    :mod:`repro.retrieval.inverted` / :mod:`repro.retrieval.shards`).
    """

    theta_range: float
    theta_count: int
    dimensions: int
    window: WindowSpec
    index_backend: str = "grid"
    refinement: str = "auto"
    #: Matching-engine configuration threaded to the system's
    #: :class:`~repro.retrieval.engine.MatchEngine` (coarse entry level
    #: of the multi-resolution refiner; alignment-search budget).
    match_coarse_level: int = 0
    match_max_expansions: int = 32
    #: Archive partitioning for the serving side: number of shards and
    #: the partition key (``window`` / ``feature``).
    match_shards: int = 1
    match_shard_key: str = "window"
    #: Deployment mode of the sharded execution (``serial`` /
    #: ``thread`` / ``process``; ``None`` = serial/thread by shard
    #: count — see :mod:`repro.serving`). Only meaningful with
    #: ``match_shards`` > 1.
    match_mode: Optional[str] = None
    #: Process-worker replicas per shard (> 1 implies
    #: ``match_mode="process"``): reads route round-robin across live
    #: replicas and fail over to a sibling when a worker dies
    #: mid-task, instead of stalling on a respawn.
    match_replicas: int = 1
    #: Coarse rungs of the inverted cell-signature index maintained
    #: during archival (empty = no inverted index).
    match_inverted_levels: Tuple[int, ...] = ()
    #: Where the archived patterns live (see
    #: :mod:`repro.archive.store`): ``None``/``"memory"`` keeps the
    #: in-process dict; ``"sqlite:PATH"`` archives crash-safely to a
    #: disk-backed SQLite-WAL store, committing each pattern before
    #: the archival is acknowledged.
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.theta_range <= 0:
            raise ValueError("theta_range must be positive")
        if self.theta_count < 1:
            raise ValueError("theta_count must be at least 1")
        if self.dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        if self.match_coarse_level < 0:
            raise ValueError("match_coarse_level must be non-negative")
        if self.match_max_expansions < 1:
            raise ValueError("match_max_expansions must be positive")
        if self.match_shards < 1:
            raise ValueError("match_shards must be positive")
        validate_partition_key(self.match_shard_key)
        if self.match_mode is not None:
            validate_mode(self.match_mode)
        if self.match_replicas < 1:
            raise ValueError("match_replicas must be positive")
        if self.match_replicas > 1 and self.match_mode in (
            "serial", "thread",
        ):
            raise ValueError(
                "match_replicas > 1 needs match_mode 'process' (or "
                "unset, which then implies it)"
            )
        self.match_inverted_levels = tuple(
            int(level) for level in self.match_inverted_levels
        )
        if any(level < 1 for level in self.match_inverted_levels):
            raise ValueError("match_inverted_levels must all be >= 1")
        validate_store_spec(self.store)
        validate_backend(self.index_backend)
        validate_refinement(self.refinement)

    @classmethod
    def count_based(
        cls,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        win: int,
        slide: int,
        index_backend: str = "grid",
        refinement: str = "auto",
    ) -> "ContinuousClusteringQuery":
        return cls(
            theta_range,
            theta_count,
            dimensions,
            CountBasedWindowSpec(win, slide),
            index_backend=index_backend,
            refinement=refinement,
        )

    @classmethod
    def time_based(
        cls,
        theta_range: float,
        theta_count: int,
        dimensions: int,
        win: float,
        slide: float,
        origin: float = 0.0,
        index_backend: str = "grid",
        refinement: str = "auto",
    ) -> "ContinuousClusteringQuery":
        return cls(
            theta_range,
            theta_count,
            dimensions,
            TimeBasedWindowSpec(win, slide, origin),
            index_backend=index_backend,
            refinement=refinement,
        )


@dataclass
class ClusterMatchingQuery:
    """A cluster matching query (Figure 3).

    ``window_range`` restricts matching to an inclusive span of archived
    window indices; ``coarse_level`` selects the multi-resolution entry
    level of the coarse-to-fine refiner (0 = match stored cells
    directly). Both map one-to-one onto
    :class:`repro.retrieval.queries.MatchQuery` (and onto the textual
    template's ``MATCH WITH`` clause).
    """

    sim_threshold: float
    metric: DistanceMetricSpec = field(default_factory=DistanceMetricSpec)
    top_k: Optional[int] = None
    window_range: Optional[Tuple[int, int]] = None
    coarse_level: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sim_threshold <= 1:
            raise ValueError("sim_threshold must be in [0, 1]")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be positive when given")
        if self.coarse_level < 0:
            raise ValueError("coarse_level must be non-negative")
        if self.window_range is not None:
            lo, hi = self.window_range
            if lo > hi:
                raise ValueError("window_range must be (lo, hi), lo <= hi")
