"""Stream objects (tuples) flowing through sliding windows.

A :class:`StreamObject` is the unit of clustering: a point in a
d-dimensional metric space with a timestamp (time-based windows) and an
arrival sequence number (count-based windows). Window membership — the
pair ``(first_window, last_window)`` — is stamped onto the object by the
:class:`~repro.streams.windows.Windower` when the object enters the query;
everything downstream (lifespan analysis, C-SGS, Extra-N) reads window
membership from these two integers only.
"""

from __future__ import annotations

from typing import Optional, Tuple


class StreamObject:
    """A single stream tuple.

    Attributes:
        oid: unique, monotonically increasing object identifier.
        coords: position in the clustering space. Normalized to floats
            at construction so scalar refinement (Python float) and the
            vectorized coordinate store (float64 columns) compute over
            bit-identical values regardless of the input number types.
        timestamp: event time (seconds, arbitrary epoch). Only meaningful
            for time-based windows; defaults to the arrival order.
        first_window / last_window: inclusive window-index range in which
            this object participates. Stamped by the windower.
        payload: optional opaque application data carried alongside.
    """

    __slots__ = (
        "oid",
        "coords",
        "timestamp",
        "first_window",
        "last_window",
        "payload",
    )

    def __init__(
        self,
        oid: int,
        coords: Tuple[float, ...],
        timestamp: Optional[float] = None,
        payload: object = None,
    ):
        self.oid = oid
        self.coords = tuple(float(value) for value in coords)
        self.timestamp = float(oid if timestamp is None else timestamp)
        self.first_window: int = -1
        self.last_window: int = -1
        self.payload = payload

    @property
    def dimensions(self) -> int:
        return len(self.coords)

    def lifespan_from(self, window_index: int) -> int:
        """Number of windows (current included) the object still lives in.

        This is Observation 5.2 of the paper expressed against the stamped
        window range: an object alive in window ``W_n`` participates in
        windows ``W_n .. W_n + lifespan - 1``.
        """
        return self.last_window - window_index + 1

    def alive_in(self, window_index: int) -> bool:
        return self.first_window <= window_index <= self.last_window

    def __repr__(self) -> str:
        return (
            f"StreamObject(oid={self.oid}, coords={self.coords}, "
            f"windows=[{self.first_window},{self.last_window}])"
        )
