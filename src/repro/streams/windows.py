"""CQL-style periodic sliding windows (count- and time-based).

Semantics follow Section 3.1 of the paper (and CQL): a query has a fixed
window size ``win`` and slide size ``slide``; clusters for window ``W_n``
are computed only over the tuples that fall into ``W_n``. We require
``win`` to be a multiple of ``slide`` (the configurations evaluated in the
paper all satisfy this), which makes window membership a pure function of
the tuple's slide bucket:

* a tuple arriving in slide bucket ``s`` participates in windows
  ``s .. s + win/slide - 1`` — Observation 5.2 expressed per-object.

The :class:`Windower` stamps ``first_window``/``last_window`` onto each
object and emits one :class:`WindowBatch` per slide, carrying the new
objects. Consumers (C-SGS, Extra-N, per-window DBSCAN) purge objects whose
``last_window`` has passed; no other expiration bookkeeping exists, which
is exactly the property the paper's lifespan analysis exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from repro.streams.objects import StreamObject


class WindowSpec:
    """Base class for window specifications.

    ``windows_per_object`` is ``win / slide``: the number of windows every
    object participates in.
    """

    def __init__(self, win: float, slide: float):
        if win <= 0 or slide <= 0:
            raise ValueError("win and slide must be positive")
        ratio = win / slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                f"win ({win}) must be a multiple of slide ({slide})"
            )
        self.win = win
        self.slide = slide
        self.windows_per_object = int(round(ratio))

    def slide_bucket(self, obj: StreamObject, arrival_index: int) -> int:
        """Return the slide bucket an object belongs to."""
        raise NotImplementedError


class CountBasedWindowSpec(WindowSpec):
    """Count-based window: ``win`` and ``slide`` are tuple counts."""

    def __init__(self, win: int, slide: int):
        if int(win) != win or int(slide) != slide:
            raise ValueError("count-based win/slide must be integers")
        super().__init__(int(win), int(slide))

    def slide_bucket(self, obj: StreamObject, arrival_index: int) -> int:
        return arrival_index // int(self.slide)


class TimeBasedWindowSpec(WindowSpec):
    """Time-based window: ``win`` and ``slide`` are durations.

    ``origin`` is the stream epoch; tuple timestamps are bucketed as
    ``floor((t - origin) / slide)``.
    """

    def __init__(self, win: float, slide: float, origin: float = 0.0):
        super().__init__(float(win), float(slide))
        self.origin = float(origin)

    def slide_bucket(self, obj: StreamObject, arrival_index: int) -> int:
        return int(math.floor((obj.timestamp - self.origin) / self.slide))


@dataclass
class WindowBatch:
    """All new objects belonging to one slide, closing window ``index``."""

    index: int
    new_objects: List[StreamObject] = field(default_factory=list)


class Windower:
    """Stamps window membership onto stream objects and emits batches.

    One :class:`WindowBatch` is produced per slide (including empty slides
    for time-based windows), in window-index order starting at the bucket
    of the first tuple.
    """

    def __init__(self, spec: WindowSpec):
        self.spec = spec

    def batches(self, source: Iterable[StreamObject]) -> Iterator[WindowBatch]:
        """Yield one batch per completed slide; the final partial slide is
        flushed when the source is exhausted."""
        spec = self.spec
        lifespan = spec.windows_per_object
        current: WindowBatch | None = None
        arrival_index = 0
        for obj in source:
            bucket = spec.slide_bucket(obj, arrival_index)
            arrival_index += 1
            if current is None:
                current = WindowBatch(index=bucket)
            if bucket < current.index:
                raise ValueError(
                    "stream is not ordered: object belongs to an already "
                    f"closed slide ({bucket} < {current.index})"
                )
            while bucket > current.index:
                yield current
                current = WindowBatch(index=current.index + 1)
            obj.first_window = bucket
            obj.last_window = bucket + lifespan - 1
            current.new_objects.append(obj)
        if current is not None:
            yield current
