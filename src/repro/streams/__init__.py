"""Stream substrate: tuples, CQL-style sliding windows, and sources."""

from repro.streams.objects import StreamObject
from repro.streams.source import ListSource, RateFluctuatingSource, StreamSource
from repro.streams.windows import (
    CountBasedWindowSpec,
    TimeBasedWindowSpec,
    WindowSpec,
    Windower,
)

__all__ = [
    "CountBasedWindowSpec",
    "ListSource",
    "RateFluctuatingSource",
    "StreamObject",
    "StreamSource",
    "TimeBasedWindowSpec",
    "WindowSpec",
    "Windower",
]
