"""Stream sources: adapters that turn raw data into stream objects.

Sources are plain iterables of :class:`~repro.streams.objects.StreamObject`
so any generator works; these classes cover the common cases — replaying
an in-memory list of points, and modulating the timestamp assignment of an
underlying coordinate generator to simulate fluctuating input rates
(Section 8.1 of the paper evaluates time-based windows under such rates).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence

from repro.streams.objects import StreamObject


class StreamSource:
    """Base class for sources; subclasses implement ``__iter__``."""

    def __iter__(self) -> Iterator[StreamObject]:
        raise NotImplementedError


class ListSource(StreamSource):
    """Replay an in-memory sequence of coordinate tuples as a stream.

    Timestamps default to the arrival order (one tuple per time unit)
    unless explicit timestamps are provided.
    """

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        timestamps: Optional[Sequence[float]] = None,
        start_oid: int = 0,
    ):
        if timestamps is not None and len(timestamps) != len(points):
            raise ValueError("timestamps must parallel points")
        self._points = points
        self._timestamps = timestamps
        self._start_oid = start_oid

    def __iter__(self) -> Iterator[StreamObject]:
        for i, coords in enumerate(self._points):
            timestamp = None if self._timestamps is None else self._timestamps[i]
            yield StreamObject(self._start_oid + i, tuple(coords), timestamp)

    def __len__(self) -> int:
        return len(self._points)


class RateFluctuatingSource(StreamSource):
    """Assign timestamps with a fluctuating arrival rate.

    The instantaneous rate oscillates sinusoidally between
    ``base_rate * (1 - amplitude)`` and ``base_rate * (1 + amplitude)``
    with the given ``period`` (in tuples). This exercises time-based
    windows whose per-window populations vary — the stress case for any
    algorithm whose state is tied to tuple counts per window.
    """

    def __init__(
        self,
        points: Iterable[Sequence[float]],
        base_rate: float = 100.0,
        amplitude: float = 0.5,
        period: int = 1000,
        start_oid: int = 0,
    ):
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        self._points = points
        self._base_rate = base_rate
        self._amplitude = amplitude
        self._period = period
        self._start_oid = start_oid

    def __iter__(self) -> Iterator[StreamObject]:
        clock = 0.0
        for i, coords in enumerate(self._points):
            phase = 2 * math.pi * (i % self._period) / self._period
            rate = self._base_rate * (1 + self._amplitude * math.sin(phase))
            clock += 1.0 / rate
            yield StreamObject(self._start_oid + i, tuple(coords), clock)
