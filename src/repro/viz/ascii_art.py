"""ASCII rendering of 2-D SGS summaries.

The paper's user study displayed clusters in ViStream, a multivariate
visualization tool. For a terminal-only reproduction, these helpers
render the skeletal grid cells of one (or several) 2-D summaries as
character art — density-shaded for core cells, ``+`` for edge cells —
which is exactly the information SGS was designed to preserve: shape,
connectivity, and density distribution at sub-region granularity.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.sgs import SGS

#: Darkness ramp for core-cell densities (light to dark).
_RAMP = ".:-=*%@#"


def render_sgs(sgs: SGS, border: bool = True) -> str:
    """Render one 2-D SGS as character art.

    Core cells are shaded by relative population; edge cells print as
    ``+``; empty space as `` ``.
    """
    if sgs.dimensions != 2:
        raise ValueError("ASCII rendering supports 2-D summaries only")
    xs = [loc[0] for loc in sgs.cells]
    ys = [loc[1] for loc in sgs.cells]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    max_population = max(
        (cell.population for cell in sgs.cells.values() if cell.is_core),
        default=1,
    )
    rows: List[str] = []
    for y in range(max_y, min_y - 1, -1):
        row_chars = []
        for x in range(min_x, max_x + 1):
            cell = sgs.cells.get((x, y))
            if cell is None:
                row_chars.append(" ")
            elif cell.is_core:
                level = min(
                    len(_RAMP) - 1,
                    int(cell.population / max_population * (len(_RAMP) - 1)),
                )
                row_chars.append(_RAMP[level])
            else:
                row_chars.append("+")
        rows.append("".join(row_chars))
    if border:
        width = max_x - min_x + 1
        top = "┌" + "─" * width + "┐"
        bottom = "└" + "─" * width + "┘"
        rows = [top] + ["│" + row + "│" for row in rows] + [bottom]
    return "\n".join(rows)


def render_window(summaries: Iterable[SGS], border: bool = True) -> str:
    """Render all clusters of one window, labeled, one after another."""
    blocks = []
    for sgs in summaries:
        header = (
            f"cluster {sgs.cluster_id} (window {sgs.window_index}): "
            f"{len(sgs)} cells, {sgs.core_count} core, "
            f"population {sgs.population}"
        )
        blocks.append(header + "\n" + render_sgs(sgs, border=border))
    return "\n\n".join(blocks)
