"""Lightweight terminal visualization (ViStream stand-in)."""

from repro.viz.ascii_art import render_sgs, render_window

__all__ = ["render_sgs", "render_window"]
