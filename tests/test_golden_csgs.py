"""Golden-output regression: every backend × refinement mode must
reproduce the serialized C-SGS run byte-for-byte.

The fixture (``tests/golden/csgs_stt_small.json``) holds the complete
window-by-window output — cluster memberships and SGS summaries — of a
seeded Figure-7-style workload. A mismatch means the refinement
kernels, the provider seam, or the C-SGS pipeline changed observable
output; regenerate only for intentional changes (see
``tests/golden/regen_golden.py``).
"""

import pytest

from repro.geometry.coordstore import HAVE_NUMPY
from repro.index import available_backends
from tests.golden import workload

REFINEMENTS = ("scalar", "vector") if HAVE_NUMPY else ("scalar",)


@pytest.fixture(scope="module")
def golden_text():
    assert workload.GOLDEN_PATH.exists(), (
        "golden fixture missing; run "
        "`PYTHONPATH=src python tests/golden/regen_golden.py`"
    )
    return workload.GOLDEN_PATH.read_text()


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", available_backends())
def test_csgs_reproduces_golden_output(backend, refinement, golden_text):
    got = workload.render(workload.run_trace(backend, refinement))
    assert got == golden_text, (
        f"{backend}/{refinement} diverged from the golden C-SGS output"
    )


def test_golden_fixture_is_nontrivial(golden_text):
    """Guard against silently regenerating an empty/degenerate fixture."""
    import json

    trace = json.loads(golden_text)
    # The windower emits one extra window for the final partial slide.
    assert len(trace) >= workload.WINDOWS
    total_clusters = sum(len(entry["clusters"]) for entry in trace)
    assert total_clusters >= 10
    assert any(
        cluster["edge"] for entry in trace for cluster in entry["clusters"]
    )
    assert any(
        cell[1] == "EDGE"
        for entry in trace
        for summary in entry["summaries"]
        for cell in summary["cells"]
    )
