"""Golden-output regression: every backend × refinement mode must
reproduce the serialized C-SGS runs byte-for-byte.

Each fixture under ``tests/golden/`` holds the complete window-by-window
output — cluster memberships and SGS summaries — of a seeded
Figure-7-style workload: ``csgs_stt_small.json`` (θr=0.1, θc=8,
canonical on the grid backend) and ``csgs_stt_auto.json`` (θr=0.2,
θc=5, canonically produced through ``--index-backend auto``). A
mismatch means the refinement kernels, the provider seam, candidate
gathering, or the C-SGS pipeline changed observable output; regenerate
only for intentional changes (see ``tests/golden/regen_golden.py``).
"""

import json

import pytest

from repro.geometry.coordstore import HAVE_NUMPY
from repro.index import available_backends
from tests.golden import workload

REFINEMENTS = ("scalar", "vector") if HAVE_NUMPY else ("scalar",)
CASE_NAMES = tuple(workload.CASES)


@pytest.fixture(scope="module")
def golden_texts():
    texts = {}
    for name, case in workload.CASES.items():
        assert case.path.exists(), (
            f"golden fixture {case.filename} missing; run "
            "`PYTHONPATH=src python tests/golden/regen_golden.py`"
        )
        texts[name] = case.path.read_text()
    return texts


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("case_name", CASE_NAMES)
def test_csgs_reproduces_golden_output(
    case_name, backend, refinement, golden_texts
):
    case = workload.CASES[case_name]
    got = workload.render(workload.run_trace(backend, refinement, case=case))
    assert got == golden_texts[case_name], (
        f"{backend}/{refinement} diverged from the golden C-SGS output "
        f"of {case_name}"
    )


@pytest.mark.parametrize("case_name", CASE_NAMES)
def test_golden_fixture_is_nontrivial(case_name, golden_texts):
    """Guard against silently regenerating an empty/degenerate fixture."""
    case = workload.CASES[case_name]
    trace = json.loads(golden_texts[case_name])
    # The windower emits one extra window for a final partial slide.
    assert len(trace) >= case.windows
    total_clusters = sum(len(entry["clusters"]) for entry in trace)
    assert total_clusters >= 10
    assert any(
        cluster["edge"] for entry in trace for cluster in entry["clusters"]
    )
    assert any(
        cell[1] == "EDGE"
        for entry in trace
        for summary in entry["summaries"]
        for cell in summary["cells"]
    )


def test_auto_case_actually_exercises_the_adaptive_provider():
    """The stt_auto fixture's canonical producer is the auto backend,
    and on this 4-D workload auto must resolve away from the plain grid
    walk (the point of pinning a second case under it)."""
    from repro.index import AutoProvider

    case = workload.CASES["stt_auto"]
    assert case.canonical_backend == "auto"
    provider = AutoProvider(case.theta_range, workload.DIMENSIONS)
    assert provider.backend_name == "kdtree"
