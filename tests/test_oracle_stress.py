"""Oracle stress harness for the neighbor-search backends.

Randomized, seeded insert/remove/purge/query sequences are replayed
simultaneously against every backend and a naive linear-scan oracle
(the only data structure simple enough to be obviously correct), across
1–5 dimensions and both refinement kernel paths. Any divergence —
membership, duplicate reporting, purge counts, batched-vs-single
answers — fails with the offending seed in the test id, so a failure is
reproducible with one pytest ``-k`` expression.

This is the reusable correctness net for index-layer PRs: the
sphere-pruned candidate gathering, the per-base-cell bucket cache, and
the adaptive ``auto`` backend all landed against it, and future work on
the provider seam (sharding, multi-resolution indexes) should extend it
rather than start over. The cache-invalidation regression tests at the
bottom pin the one genuinely sharp edge: a purge that empties a bucket
unlinks it from the cell map, so neighboring base cells' cached
candidate walks must be dropped, not reused.
"""

import random

import pytest

from tests.helpers import make_objects
from repro.geometry.coordstore import HAVE_NUMPY, within_sq_range
from repro.index import BACKENDS, GridIndex, make_provider
from repro.streams.objects import StreamObject

BACKEND_NAMES = tuple(sorted(BACKENDS))
REFINEMENTS = ("scalar", "vector") if HAVE_NUMPY else ("scalar",)
DIMS = (1, 2, 3, 4, 5)
SEEDS = (0, 1, 2, 3, 4)
#: Sequences exercised per pytest run: backends x refinements x dims x
#: seeds — 200 with NumPy installed (4 * 2 * 5 * 5), 100 without.
OPS_PER_SEQUENCE = 70


class LinearOracle:
    """The trivially correct reference: a dict and a linear scan."""

    def __init__(self, theta_range):
        self.sq_range = theta_range * theta_range
        self.objects = {}

    def insert(self, obj):
        if obj.oid in self.objects:
            raise KeyError(obj.oid)
        self.objects[obj.oid] = obj

    def remove(self, obj):
        if obj.oid not in self.objects:
            raise KeyError(obj.oid)
        del self.objects[obj.oid]

    def purge_expired(self, window_index):
        expired = [
            oid
            for oid, obj in self.objects.items()
            if obj.last_window < window_index
        ]
        for oid in expired:
            del self.objects[oid]
        return len(expired)

    def range_query(self, coords, exclude_oid=-1):
        return [
            obj
            for obj in self.objects.values()
            if obj.oid != exclude_oid
            and within_sq_range(obj.coords, coords, self.sq_range)
        ]

    def __len__(self):
        return len(self.objects)


def _random_coords(rng, dims, centers, span):
    """Mixed distribution: clustered mass (shared cells, dense buckets)
    plus uniform background (sparse, far-flung cells)."""
    if centers and rng.random() < 0.7:
        center = rng.choice(centers)
        return tuple(rng.gauss(c, 0.3) for c in center)
    return tuple(rng.uniform(0.0, span) for _ in range(dims))


def _check_query(provider, oracle, coords, exclude_oid, context):
    got = provider.range_query(coords, exclude_oid=exclude_oid)
    want = oracle.range_query(coords, exclude_oid=exclude_oid)
    got_oids = sorted(obj.oid for obj in got)
    assert got_oids == sorted(set(got_oids)), (
        f"{context}: duplicate oids reported: {got_oids}"
    )
    assert set(got_oids) == {obj.oid for obj in want}, (
        f"{context}: membership diverged from the linear oracle"
    )


def run_sequence(backend, refinement, dims, seed, ops=OPS_PER_SEQUENCE):
    rng = random.Random(f"{backend}/{refinement}/{dims}/{seed}")
    theta = rng.uniform(0.3, 0.7)
    span = 3.0
    provider = make_provider(backend, theta, dims, refinement=refinement)
    if backend == "auto":
        # Tighten the re-evaluation interval so the adaptive switch
        # machinery actually runs inside a short sequence.
        provider._check_interval = 8
    oracle = LinearOracle(theta)
    centers = [
        tuple(rng.uniform(0.5, span - 0.5) for _ in range(dims))
        for _ in range(3)
    ]
    window = 0
    next_oid = 0
    removed_coords = []

    for step in range(ops):
        context = (
            f"{backend}/{refinement}/{dims}d seed={seed} step={step}"
        )
        roll = rng.random()
        if roll < 0.5 or not oracle.objects:
            coords = _random_coords(rng, dims, centers, span)
            if oracle.objects and rng.random() < 0.1:
                # Duplicate position, distinct oid: same-cell stress.
                coords = rng.choice(list(oracle.objects.values())).coords
            obj = StreamObject(next_oid, coords)
            obj.first_window = window
            obj.last_window = window + rng.randint(0, 3)
            next_oid += 1
            provider.insert(obj)
            oracle.insert(obj)
        elif roll < 0.65:
            victim = rng.choice(list(oracle.objects.values()))
            provider.remove(victim)
            oracle.remove(victim)
            removed_coords.append(victim.coords)
        elif roll < 0.75:
            window += rng.randint(1, 2)
            purged = provider.purge_expired(window)
            assert purged == oracle.purge_expired(window), (
                f"{context}: purge counts diverged"
            )
        else:
            if removed_coords and rng.random() < 0.3:
                probe = rng.choice(removed_coords)
            elif oracle.objects and rng.random() < 0.6:
                probe = rng.choice(list(oracle.objects.values())).coords
            else:
                probe = _random_coords(rng, dims, centers, span)
            exclude = rng.choice(
                [-1, rng.randrange(max(1, next_oid)), next_oid + 50]
            )
            _check_query(provider, oracle, probe, exclude, context)
        assert len(provider) == len(oracle), f"{context}: sizes diverged"

    # Batched sweep over everything alive plus background probes: the
    # range_query_many plan (grouping, bbox pruning, shared refinement)
    # must agree probe-for-probe with the single-query path and oracle.
    alive = list(oracle.objects.values())
    queries = [(obj.coords, obj.oid) for obj in alive[:30]]
    queries += [
        (_random_coords(rng, dims, centers, span), -1) for _ in range(10)
    ]
    batched = provider.range_query_many(queries)
    assert len(batched) == len(queries)
    for (coords, exclude), got in zip(queries, batched):
        single = provider.range_query(coords, exclude_oid=exclude)
        assert [o.oid for o in got] == [o.oid for o in single], (
            f"{backend}/{refinement}/{dims}d seed={seed}: batched order "
            "diverged from single queries"
        )
        want = {o.oid for o in oracle.range_query(coords, exclude)}
        assert {o.oid for o in got} == want
    return next_oid


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dims", DIMS)
@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_randomized_sequences_match_linear_oracle(
    backend, refinement, dims, seed
):
    inserted = run_sequence(backend, refinement, dims, seed)
    assert inserted > 0  # the sequence actually exercised the provider


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_remove_missing_raises_like_oracle(backend):
    provider = make_provider(backend, 0.5, 2)
    oracle = LinearOracle(0.5)
    (obj,) = make_objects([(1.0, 1.0)])
    with pytest.raises(KeyError):
        provider.remove(obj)
    with pytest.raises(KeyError):
        oracle.remove(obj)
    provider.insert(obj)
    oracle.insert(obj)
    with pytest.raises(KeyError):
        provider.insert(obj)
    with pytest.raises(KeyError):
        oracle.insert(obj)


# ----------------------------------------------------------------------
# Cache-invalidation regressions: purges and re-occupied cells
# ----------------------------------------------------------------------


def test_purge_emptying_bucket_drops_cached_neighbor_candidates():
    """A purge that empties a bucket unlinks it without clearing, so a
    neighboring base cell's cached candidate walk would keep aliasing
    the stale list: the cache must drop those walks."""
    grid = GridIndex(0.5, 2)
    keeper, doomed = make_objects([(0.1, 0.1), (0.6, 0.1)])
    keeper.last_window = 9
    doomed.last_window = 1
    grid.insert(keeper)
    grid.insert(doomed)
    # Fills the cache for keeper's base cell; doomed is a neighbor
    # (distance 0.5 == theta, boundary inclusive).
    first = {o.oid for o in grid.range_query(keeper.coords)}
    assert first == {keeper.oid, doomed.oid}
    assert grid.purge_expired(2) == 1
    again = {o.oid for o in grid.range_query(keeper.coords)}
    assert again == {keeper.oid}, "stale purged bucket leaked into cache"


def test_purge_keeping_bucket_nonempty_stays_transparent():
    """Partial purges rewrite the bucket in place; cached walks read the
    shrunken bucket without any invalidation."""
    grid = GridIndex(0.5, 2)
    survivor, expiring = make_objects([(0.6, 0.1), (0.58, 0.12)])
    (probe,) = make_objects([(0.1, 0.1)])
    probe.oid = 99
    survivor.last_window = 9
    expiring.last_window = 1
    probe.last_window = 9
    for obj in (probe, survivor, expiring):
        grid.insert(obj)
    assert {o.oid for o in grid.range_query(probe.coords)} == {
        probe.oid,
        survivor.oid,
        expiring.oid,
    }
    walks_before = grid.stats["walks"]
    assert grid.purge_expired(2) == 1
    assert {o.oid for o in grid.range_query(probe.coords)} == {
        probe.oid,
        survivor.oid,
    }
    assert grid.stats["walks"] == walks_before, (
        "partial purge should not have invalidated the cached walk"
    )


def test_reoccupied_cell_invalidates_cached_walks():
    """Emptying a cell by removal then re-occupying it creates a fresh
    bucket object; cached walks alias the dead one and must be
    invalidated at (re-)creation time."""
    grid = GridIndex(0.5, 2)
    anchor, transient = make_objects([(0.1, 0.1), (0.6, 0.1)])
    grid.insert(anchor)
    grid.insert(transient)
    assert {o.oid for o in grid.range_query(anchor.coords)} == {0, 1}
    grid.remove(transient)
    assert {o.oid for o in grid.range_query(anchor.coords)} == {0}
    (newcomer,) = make_objects([(0.6, 0.1)])
    newcomer.oid = 7
    grid.insert(newcomer)
    assert {o.oid for o in grid.range_query(anchor.coords)} == {0, 7}, (
        "re-occupied neighboring cell invisible to the cached walk"
    )


def test_purge_empty_bucket_edge_randomized():
    """Seeded schedule engineered around the purge-empties-bucket edge:
    every window, some cells lose their whole bucket while base cells
    next door keep querying — replayed against the oracle."""
    rng = random.Random(13)
    theta = 0.5
    grid = GridIndex(theta, 2)
    oracle = LinearOracle(theta)
    next_oid = 0
    for window in range(1, 12):
        purged = grid.purge_expired(window)
        assert purged == oracle.purge_expired(window)
        for _ in range(12):
            # Half the objects die next window, clustered in few cells:
            # bucket-emptying purges every slide.
            coords = (rng.uniform(0, 1.5), rng.uniform(0, 1.5))
            obj = StreamObject(next_oid, coords)
            obj.first_window = window
            obj.last_window = window + (0 if rng.random() < 0.5 else 2)
            next_oid += 1
            grid.insert(obj)
            oracle.insert(obj)
        for obj in list(oracle.objects.values())[:8]:
            _check_query(
                grid, oracle, obj.coords, obj.oid, f"window={window}"
            )
    assert grid.stats["cache_hits"] > 0  # the cache was really exercised


# ----------------------------------------------------------------------
# Occupancy-aware R-tree selection in the adaptive backend
# ----------------------------------------------------------------------


def _auto_provider_for_rtree(theta=0.5, dims=5):
    """An AutoProvider tuned so its evaluation machinery runs inside a
    short sequence: 5-D keeps the walk over budget (so the grid never
    wins), and a tight check interval re-evaluates every few
    mutations."""
    from repro.index import AutoProvider

    provider = AutoProvider(
        theta,
        dims,
        check_interval=16,
        rtree_occupancy=1.15,
        rtree_churn=0.3,
    )
    assert provider.backend_name == "kdtree"  # 5-D starts off-grid
    return provider


def test_auto_switches_to_rtree_under_sparse_churn():
    """Sparse, removal-heavy workloads flip the adaptive provider onto
    the R-tree (in-place deletion, no tombstone rebuilds) — the switch
    path the grid/kdtree-only heuristic never took — and every answer
    along the way must match the linear oracle."""
    rng = random.Random(23)
    dims = 5
    provider = _auto_provider_for_rtree(dims=dims)
    oracle = LinearOracle(provider.theta_range)
    next_oid = 0
    visited = set()
    span = 12.0
    for step in range(420):
        visited.add(provider.backend_name)
        # Mostly uniform inserts (singleton cells) with heavy removal
        # pressure: ~40% of mutations are deletions.
        if rng.random() < 0.6 or len(oracle) < 4:
            coords = tuple(rng.uniform(0, span) for _ in range(dims))
            obj = StreamObject(next_oid, coords)
            obj.first_window = 0
            obj.last_window = 99
            next_oid += 1
            provider.insert(obj)
            oracle.insert(obj)
        else:
            victim = rng.choice(list(oracle.objects.values()))
            provider.remove(victim)
            oracle.remove(victim)
        if step % 7 == 0:
            probe = tuple(rng.uniform(0, span) for _ in range(dims))
            _check_query(provider, oracle, probe, -1, f"step={step}")
        assert len(provider) == len(oracle)
    assert "rtree" in visited, (
        f"sparse churny workload never reached the R-tree "
        f"(visited {sorted(visited)}, switches={provider.switches})"
    )
    # Full sweep on whatever backend the sequence ended on.
    for obj in list(oracle.objects.values())[:25]:
        _check_query(provider, oracle, obj.coords, obj.oid, "final sweep")


def test_auto_rtree_hysteresis_returns_to_kdtree_when_churn_stops():
    """Once removals stop, the half-churn hysteresis releases the
    R-tree back to the k-d tree on a later evaluation."""
    rng = random.Random(5)
    dims = 5
    provider = _auto_provider_for_rtree(dims=dims)
    oracle = LinearOracle(provider.theta_range)
    next_oid = 0
    # Phase 1: sparse + churny until the R-tree is selected.
    for _ in range(600):
        if provider.backend_name == "rtree":
            break
        if rng.random() < 0.6 or len(oracle) < 4:
            coords = tuple(rng.uniform(0, 12.0) for _ in range(dims))
            obj = StreamObject(next_oid, coords)
            obj.last_window = 99
            next_oid += 1
            provider.insert(obj)
            oracle.insert(obj)
        else:
            victim = rng.choice(list(oracle.objects.values()))
            provider.remove(victim)
            oracle.remove(victim)
    assert provider.backend_name == "rtree"
    # Phase 2: insert-only traffic; churn collapses, the R-tree is let go.
    for _ in range(200):
        if provider.backend_name != "rtree":
            break
        coords = tuple(rng.uniform(0, 12.0) for _ in range(dims))
        obj = StreamObject(next_oid, coords)
        obj.last_window = 99
        next_oid += 1
        provider.insert(obj)
        oracle.insert(obj)
    assert provider.backend_name == "kdtree"
    for obj in list(oracle.objects.values())[:20]:
        _check_query(provider, oracle, obj.coords, obj.oid, "post-release")
