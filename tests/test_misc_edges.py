"""Edge-case tests that cut across small helpers."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.sgs import SGS
from repro.eval.harness import print_series
from repro.matching.alignment import anytime_alignment_search
from repro.matching.metric import DistanceMetricSpec


def test_print_series(capsys):
    print_series("demo", [1, 2, 3], [4.0, 5.0, 6.0], "n", "t")
    out = capsys.readouterr().out
    assert "demo" in out and "4.0" in out


def test_single_cell_sgs_matching():
    a = SGS([SkeletalGridCell((0, 0), 0.5, 5, CellStatus.CORE)], 0.5)
    b = SGS([SkeletalGridCell((9, 9), 0.5, 5, CellStatus.CORE)], 0.5)
    spec = DistanceMetricSpec()
    result = anytime_alignment_search(a, b, spec)
    assert result.distance == pytest.approx(0.0)
    assert result.alignment == (9, 9)


def test_sgs_with_only_edge_cells_connectivity():
    # Degenerate summary (can arise from manual construction): a single
    # edge cell counts as trivially connected; two do not.
    single = SGS([SkeletalGridCell((0, 0), 0.5, 2, CellStatus.EDGE)], 0.5)
    assert single.is_connected()
    double = SGS(
        [
            SkeletalGridCell((0, 0), 0.5, 2, CellStatus.EDGE),
            SkeletalGridCell((1, 0), 0.5, 2, CellStatus.EDGE),
        ],
        0.5,
    )
    assert not double.is_connected()


def test_metric_spec_partial_weights():
    # Weights over a subset of features are fine if they sum to 1.
    spec = DistanceMetricSpec(weights={"volume": 0.5, "avg_density": 0.5})
    assert spec.weight("core_count") == 0.0
    assert spec.weight("volume") == 0.5


def test_cell_status_roundtrip_via_value():
    assert CellStatus("core") is CellStatus.CORE
    assert CellStatus("edge") is CellStatus.EDGE
    with pytest.raises(ValueError):
        CellStatus("noise")


def test_sgs_density_of_region_single_cell():
    sgs = SGS([SkeletalGridCell((2, 2), 0.5, 8, CellStatus.CORE)], 0.5)
    assert sgs.density_of_region([(2, 2)]) == pytest.approx(8 / 0.25)
    with pytest.raises(KeyError):
        sgs.density_of_region([(0, 0)])
