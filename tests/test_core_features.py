"""Unit tests for cluster feature vectors."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.features import FEATURE_NAMES, ClusterFeatures
from repro.core.sgs import SGS


def _sgs():
    cells = [
        SkeletalGridCell((0, 0), 0.5, 8, CellStatus.CORE, frozenset({(1, 0)})),
        SkeletalGridCell((1, 0), 0.5, 4, CellStatus.CORE, frozenset({(0, 0)})),
        SkeletalGridCell((2, 0), 0.5, 2, CellStatus.EDGE),
    ]
    return SGS(cells, 0.5)


def test_from_sgs():
    features = ClusterFeatures.from_sgs(_sgs())
    assert features.volume == 3.0
    assert features.core_count == 2.0
    assert features.avg_connectivity == pytest.approx(1.0)
    cell_volume = 0.25
    assert features.avg_density == pytest.approx(
        (8 / cell_volume + 4 / cell_volume + 2 / cell_volume) / 3
    )


def test_as_tuple_order_matches_names():
    features = ClusterFeatures.from_sgs(_sgs())
    values = features.as_tuple()
    for name, value in zip(FEATURE_NAMES, values):
        assert features[name] == value


def test_getitem_unknown_key():
    features = ClusterFeatures.from_sgs(_sgs())
    with pytest.raises(KeyError):
        features["bogus"]


def test_frozen():
    features = ClusterFeatures.from_sgs(_sgs())
    with pytest.raises(Exception):
        features.volume = 10.0  # type: ignore[misc]
