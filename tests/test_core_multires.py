"""Unit tests for multi-resolution SGS compression (Section 6.1)."""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import CSGS
from repro.core.multires import (
    cells_needed_at_level,
    coarsen_sgs,
    resolution_ladder,
)
from repro.core.sgs import SGS


def _extracted_sgs():
    points = clustered_points([(2.0, 2.0)], per_cluster=400, seed=1, std=0.5)
    csgs = CSGS(0.3, 5, 2)
    output = None
    for batch in stream_batches(points, 400, 200):
        output = csgs.process_batch(batch)
    assert output is not None and output.summaries
    return max(output.summaries, key=len)


def test_population_conserved_across_levels():
    sgs = _extracted_sgs()
    for level in resolution_ladder(sgs, factor=3, levels=3):
        assert level.population == sgs.population


def test_cell_count_decreases():
    sgs = _extracted_sgs()
    ladder = resolution_ladder(sgs, factor=3, levels=2)
    assert len(ladder[1]) <= len(ladder[0])
    assert len(ladder[2]) <= len(ladder[1])
    assert len(ladder[2]) >= 1


def test_side_length_multiplies():
    sgs = _extracted_sgs()
    coarse = coarsen_sgs(sgs, factor=3)
    assert coarse.side_length == pytest.approx(sgs.side_length * 3)
    assert coarse.level == sgs.level + 1


def test_core_status_inherited():
    sgs = _extracted_sgs()
    coarse = coarsen_sgs(sgs, factor=3)
    # A coarse cell is core iff any covered fine cell is core.
    for coord, cell in coarse.cells.items():
        children = [
            fine
            for floc, fine in sgs.cells.items()
            if tuple(c // 3 for c in floc) == coord
        ]
        assert children
        if any(child.is_core for child in children):
            assert cell.is_core
        else:
            assert not cell.is_core


def test_coverage_preserved():
    sgs = _extracted_sgs()
    coarse = coarsen_sgs(sgs, factor=3)
    # Every fine cell's center lies in some coarse cell of the summary.
    for cell in sgs.cells.values():
        assert coarse.covers_point(cell.center())


def test_coarse_connectivity_preserved():
    sgs = _extracted_sgs()
    coarse = coarsen_sgs(sgs, factor=3)
    if coarse.core_count > 1:
        assert coarse.is_connected()


def test_mbr_grows_monotonically():
    sgs = _extracted_sgs()
    coarse = coarsen_sgs(sgs, factor=3)
    assert coarse.mbr().contains(sgs.mbr())


def test_negative_coordinates_coarsen_correctly():
    cells = [
        SkeletalGridCell((-1, -1), 1.0, 3, CellStatus.CORE, frozenset()),
        SkeletalGridCell((-2, -2), 1.0, 2, CellStatus.EDGE),
    ]
    sgs = SGS(cells, 1.0)
    coarse = coarsen_sgs(sgs, factor=2)
    assert set(coarse.cells) == {(-1, -1)}
    assert coarse.cells[(-1, -1)].population == 5
    assert coarse.cells[(-1, -1)].is_core


def test_cells_needed_prediction_matches_reality():
    sgs = _extracted_sgs()
    for level in (1, 2):
        predicted = cells_needed_at_level(sgs, 3, level)
        actual = resolution_ladder(sgs, 3, level)[-1]
        assert predicted == len(actual)


def test_validation():
    sgs = _extracted_sgs()
    with pytest.raises(ValueError):
        coarsen_sgs(sgs, factor=1)
    with pytest.raises(ValueError):
        resolution_ladder(sgs, levels=-1)
    with pytest.raises(ValueError):
        cells_needed_at_level(coarsen_sgs(sgs, 3), 3, 0)
