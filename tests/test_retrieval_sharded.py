"""Oracle equivalence of partition-parallel serving.

The law under test: for every query, ``ShardedMatchEngine`` over any
shard count and either partition key returns *exactly* what a
single-shard engine returns, which in turn equals the exhaustive scan —
same pattern ids, same distances, same order. Partitioning is pure
placement; none of it may change answers.
"""

import pytest

from tests.helpers import clustered_points, stream_batches
from tests.test_retrieval_engine import _as_pairs, exhaustive_scan
from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval import (
    MatchEngine,
    MatchQuery,
    ShardedMatchEngine,
    ShardedPatternBase,
)

SHARD_COUNTS = (1, 2, 4)
PARTITION_KEYS = ("window", "feature")


def _populated_base(seed=1, inverted_levels=None):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0), (4.0, 8.0)],
        per_cluster=250,
        noise=120,
        seed=seed,
    )
    base = PatternBase(inverted_levels=inverted_levels)
    archiver = PatternArchiver(base)
    csgs = CSGS(0.35, 5, 2)
    last = None
    for batch in stream_batches(points, 300, 100):
        last = csgs.process_batch(batch)
        archiver.archive_output(last)
    return base, last


def _sharded(base, shards, key, **kwargs):
    return ShardedPatternBase.from_base(base, shards, key, **kwargs)


# ----------------------------------------------------------------------
# The partitioned archive itself
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", PARTITION_KEYS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_partitioning_preserves_contents(shards, key):
    base, _ = _populated_base(seed=1)
    sharded = _sharded(base, shards, key)
    assert len(sharded) == len(base)
    assert sum(sharded.shard_sizes()) == len(base)
    assert sharded.summary_bytes() == base.summary_bytes()
    for pattern in base.all_patterns():
        assert pattern.pattern_id in sharded
        assert sharded.get(pattern.pattern_id) is pattern
    if shards > 1:
        assert sum(1 for size in sharded.shard_sizes() if size) > 1, (
            "partitioning left everything on one shard"
        )


def test_placement_is_deterministic():
    base, _ = _populated_base(seed=2)
    for key in PARTITION_KEYS:
        first = _sharded(base, 3, key)
        second = _sharded(base, 3, key)
        for pattern in base.all_patterns():
            assert first.shard_for(pattern) == second.shard_for(pattern)


def test_index_probes_route_through_shards():
    base, last = _populated_base(seed=3)
    sharded = _sharded(base, 3, "feature")
    mbr = last.summaries[0].mbr()
    assert {p.pattern_id for p in sharded.overlapping(mbr)} == {
        p.pattern_id for p in base.overlapping(mbr)
    }
    lows = [0.0, 0.0, 0.0, 0.0]
    highs = [float("inf")] * 4
    assert {
        p.pattern_id for p in sharded.in_feature_ranges(lows, highs)
    } == {p.pattern_id for p in base.in_feature_ranges(lows, highs)}


def test_add_and_remove_route_to_owner_shard():
    base, last = _populated_base(seed=4)
    sharded = _sharded(base, 2, "window")
    before = len(sharded)
    pattern = sharded.add(last.summaries[0], 42)
    assert len(sharded) == before + 1
    assert sharded.get(pattern.pattern_id) is pattern
    assert sharded.remove(pattern.pattern_id)
    assert not sharded.remove(pattern.pattern_id)
    assert len(sharded) == before


def test_sharded_base_validation():
    with pytest.raises(ValueError):
        ShardedPatternBase(0)
    with pytest.raises(ValueError):
        ShardedPatternBase(2, "bogus")
    base, _ = _populated_base(seed=1)
    sharded = _sharded(base, 2, "window")
    with pytest.raises(ValueError):
        sharded.restore(next(iter(base.all_patterns())))


# ----------------------------------------------------------------------
# Oracle equivalence: sharded == single-shard == exhaustive
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", PARTITION_KEYS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_engine_equals_single_and_exhaustive(shards, key):
    base, last = _populated_base(seed=1)
    single = MatchEngine(base, use_inverted=False)
    sharded_engine = ShardedMatchEngine(_sharded(base, shards, key))
    ps_spec = DistanceMetricSpec(position_sensitive=True)
    for query_sgs in last.summaries[:2]:
        for threshold, top_k, metric, coarse in (
            (0.2, None, DistanceMetricSpec(), 0),
            (0.45, None, DistanceMetricSpec(), 1),
            (0.6, 3, DistanceMetricSpec(), 1),
            (0.3, None, ps_spec, 0),
            (0.5, 2, ps_spec, 1),
        ):
            query = MatchQuery(
                sgs=query_sgs,
                threshold=threshold,
                top_k=top_k,
                metric=metric,
                coarse_level=coarse,
            )
            merged, stats = sharded_engine.match(query)
            solo, solo_stats = single.match(query)
            assert _as_pairs(merged) == _as_pairs(solo), (
                f"sharded({shards},{key}) diverged at t={threshold}, "
                f"k={top_k}, ps={metric.position_sensitive}"
            )
            if top_k is None:
                assert _as_pairs(merged) == exhaustive_scan(base, query)
            assert stats.plan["shards"] == shards
            assert stats.archive_size == solo_stats.archive_size
            assert stats.matches == solo_stats.matches


@pytest.mark.parametrize("key", PARTITION_KEYS)
def test_sharded_match_many_equals_sequential(key):
    base, last = _populated_base(seed=2)
    engine = ShardedMatchEngine(
        _sharded(base, 4, key, inverted_levels=(1,))
    )
    queries = [
        MatchQuery(sgs=sgs, threshold=threshold, top_k=top_k, coarse_level=c)
        for sgs in last.summaries[:3]
        for threshold, top_k, c in (
            (0.25, None, 0),
            (0.5, 4, 1),
        )
    ]
    batched = engine.match_many(queries)
    assert len(batched) == len(queries)
    for query, (results, stats) in zip(queries, batched):
        solo_results, _ = engine.match(query)
        assert _as_pairs(results) == _as_pairs(solo_results)
        assert stats.plan["entry"] == "sharded"
    assert engine.match_many([]) == []


def test_serial_fallback_identical_to_parallel():
    base, last = _populated_base(seed=3)
    sharded = _sharded(base, 3, "window")
    parallel = ShardedMatchEngine(sharded)
    serial = ShardedMatchEngine(sharded, max_workers=1)
    assert parallel.parallel and not serial.parallel
    query = MatchQuery(sgs=last.summaries[0], threshold=0.5, coarse_level=1)
    par_results, par_stats = parallel.match(query)
    ser_results, ser_stats = serial.match(query)
    assert _as_pairs(par_results) == _as_pairs(ser_results)
    assert par_stats.plan["parallel"] is True
    assert ser_stats.plan["parallel"] is False


def test_sharded_engine_with_inverted_index():
    """Shards carry their own inverted indices; the sharded answers
    still match the unsharded ladder engine exactly."""
    base, last = _populated_base(seed=4)
    engine = ShardedMatchEngine(
        _sharded(base, 2, "feature", inverted_levels=(1,))
    )
    plain = MatchEngine(base, use_inverted=False)
    for threshold in (0.3, 0.7):
        query = MatchQuery(
            sgs=last.summaries[0], threshold=threshold, coarse_level=1
        )
        merged, stats = engine.match(query)
        assert _as_pairs(merged) == _as_pairs(plain.match(query)[0])
        assert stats.coarse_screen in ("inverted", "")


def test_sharded_cache_management_forwards():
    base, last = _populated_base(seed=5)
    sharded = _sharded(base, 2, "window")
    engine = ShardedMatchEngine(sharded)
    engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.5, coarse_level=1)
    )
    built = engine.cached_ladder_levels()
    assert built > 0
    hints = sum(p.ladder_hint for p in sharded.all_patterns())
    engine.invalidate()
    assert engine.cached_ladder_levels() == 0
    assert engine.warm_ladders() == hints


def test_sharded_inverted_view_reads():
    """The merged inverted view (what persistence serializes) answers
    signature/covers/contains/len by routing to the owning shard."""
    base, _ = _populated_base(seed=6, inverted_levels=(1,))
    sharded = _sharded(base, 2, "window")
    view = sharded.inverted_index()
    assert view is not None
    assert view.covers(1) and not view.covers(3)
    assert len(view) == len(base)
    flat_index = base.inverted_index()
    for pattern in base.all_patterns():
        assert pattern.pattern_id in view
        assert view.signature(pattern.pattern_id, 1).cells == (
            flat_index.signature(pattern.pattern_id, 1).cells
        )
    assert view.signature(10**9, 1) is None
    assert 10**9 not in view
    # A mixed layout (one shard indexed, one not) exposes no view.
    partial = ShardedPatternBase(2, "window")
    for pattern in base.all_patterns():
        partial.restore(pattern)
    assert partial.inverted_index() is None  # no shard indexed yet
    partial.shards()[0].enable_inverted((1,))
    assert partial.inverted_index() is None  # still not all shards


def test_from_base_transfers_persisted_signatures(monkeypatch):
    """Partitioning a base that already carries signatures (a format-v3
    load) must transfer them to the shard indices, never re-run the
    coarsening arithmetic persistence exists to skip."""
    import repro.retrieval.inverted as inverted_module

    base, _ = _populated_base(seed=8, inverted_levels=(1,))
    source = base.inverted_index()

    def recomputed(*args, **kwargs):
        raise AssertionError("signature recomputed during from_base")

    monkeypatch.setattr(
        inverted_module, "canonical_cell_signature", recomputed
    )
    sharded = _sharded(base, 2, "window")
    view = sharded.inverted_index()
    assert view is not None
    for pattern in base.all_patterns():
        assert view.signature(pattern.pattern_id, 1).cells == (
            source.signature(pattern.pattern_id, 1).cells
        )
    # Requesting rungs the source lacks falls back to a rebuild, which
    # legitimately coarsens again.
    monkeypatch.undo()
    rebuilt = _sharded(base, 2, "window", inverted_levels=(1, 2))
    assert rebuilt.inverted_index().covers(2)


def test_analyzer_and_plain_engine_serve_sharded_base():
    """The analyzer façade over a partitioned archive builds a sharded
    engine by itself, and even a plain MatchEngine pointed directly at
    the sharded base works: the merged feature-index and inverted
    views give the planner and the screen their full read surface."""
    from repro.archive.analyzer import PatternAnalyzer

    base, last = _populated_base(seed=9, inverted_levels=(1,))
    sharded = _sharded(base, 2, "window")
    analyzer = PatternAnalyzer(sharded)
    assert isinstance(analyzer.engine, ShardedMatchEngine)
    reference = MatchEngine(base, use_inverted=False)
    query_sgs = last.summaries[0]
    for threshold in (0.3, 0.9):
        results, _ = analyzer.match(query_sgs, threshold)
        assert _as_pairs(results) == _as_pairs(
            reference.match_sgs(query_sgs, threshold)[0]
        )
    # Direct (non-fanned) engine over the sharded base: planner probes
    # the merged views, answers stay identical — including the
    # inverted entry, which walks the merged posting lists.
    direct = MatchEngine(sharded)
    for threshold, coarse in ((0.3, 0), (0.5, 1), (0.9, 1)):
        query = MatchQuery(
            sgs=query_sgs, threshold=threshold, coarse_level=coarse
        )
        results, stats = direct.match(query)
        assert _as_pairs(results) == _as_pairs(reference.match(query)[0])
    assert sharded.feature_index().covers_occupied_extent(
        [0.0] * 4, [float("inf")] * 4
    )


def test_removal_listeners_do_not_accumulate():
    """Transient engines over a grow-only archive must not leak
    listener weakrefs: the subscribe-time dedup scan prunes dead
    refs."""
    import gc

    base, _ = _populated_base(seed=1)
    keep = MatchEngine(base)
    for _ in range(20):
        MatchEngine(base)  # transient: dropped immediately
        gc.collect()
    gc.collect()
    live = [ref for ref in base._removal_listeners if ref() is not None]
    assert keep in [ref() for ref in live]
    assert len(base._removal_listeners) <= len(live) + 1
