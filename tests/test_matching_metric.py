"""Unit tests for the customizable distance metric (Section 7.2)."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.features import ClusterFeatures
from repro.core.sgs import SGS
from repro.geometry.mbr import MBR
from repro.matching.metric import (
    DistanceMetricSpec,
    cluster_feature_distance,
    feature_search_ranges,
    location_distance,
    relative_difference,
)


def _features(volume=20.0, core=10.0, density=4.0, connectivity=2.0):
    return ClusterFeatures(volume, core, density, connectivity)


def test_relative_difference_basics():
    assert relative_difference(10.0, 10.0) == 0.0
    assert relative_difference(10.0, 15.0) == pytest.approx(0.5)
    assert relative_difference(15.0, 10.0) == pytest.approx(0.5)
    assert relative_difference(1.0, 100.0) == 1.0  # capped
    assert relative_difference(0.0, 5.0) == 1.0  # zero denominator


def test_relative_difference_rejects_negative():
    with pytest.raises(ValueError):
        relative_difference(-1.0, 1.0)


def test_spec_weight_validation():
    with pytest.raises(ValueError):
        DistanceMetricSpec(weights={"volume": 0.5, "core_count": 0.2})
    with pytest.raises(ValueError):
        DistanceMetricSpec(weights={"bogus": 1.0})
    spec = DistanceMetricSpec()
    assert sum(spec.weights.values()) == pytest.approx(1.0)


def test_identical_features_zero_distance():
    spec = DistanceMetricSpec()
    assert cluster_feature_distance(_features(), _features(), spec) == 0.0


def test_distance_respects_weights():
    spec = DistanceMetricSpec(
        weights={"volume": 1.0, "core_count": 0.0, "avg_density": 0.0,
                 "avg_connectivity": 0.0}
    )
    a = _features(volume=10.0)
    b = _features(volume=15.0)
    assert cluster_feature_distance(a, b, spec) == pytest.approx(0.5)
    # Other features differ but carry no weight.
    c = _features(volume=10.0, density=100.0)
    assert cluster_feature_distance(a, c, spec) == 0.0


def test_position_sensitive_disjoint_is_max_distance():
    spec = DistanceMetricSpec(position_sensitive=True)
    a = MBR((0.0, 0.0), (1.0, 1.0))
    b = MBR((5.0, 5.0), (6.0, 6.0))
    assert cluster_feature_distance(_features(), _features(), spec, a, b) == 1.0
    assert location_distance(a, b) == 1.0


def test_position_sensitive_overlapping_compares_features():
    spec = DistanceMetricSpec(position_sensitive=True)
    a = MBR((0.0, 0.0), (2.0, 2.0))
    b = MBR((1.0, 1.0), (3.0, 3.0))
    distance = cluster_feature_distance(_features(), _features(), spec, a, b)
    assert distance == 0.0


def test_position_sensitive_requires_mbrs():
    spec = DistanceMetricSpec(position_sensitive=True)
    with pytest.raises(ValueError):
        cluster_feature_distance(_features(), _features(), spec)


def test_search_ranges_paper_example():
    # Section 7.2's derivation: volume 20, weight 0.2, threshold 0.1
    # -> bound t/w = 0.5 -> candidates in [20/1.5, 30].
    spec = DistanceMetricSpec(
        weights={"volume": 0.2, "core_count": 0.3, "avg_density": 0.3,
                 "avg_connectivity": 0.2}
    )
    lows, highs = feature_search_ranges(_features(volume=20.0), spec, 0.1)
    assert lows[0] == pytest.approx(20.0 / 1.5)
    assert highs[0] == pytest.approx(30.0)


def test_search_ranges_capped_bound_is_unconstrained():
    # When t/w reaches 1 the per-feature relative difference cap bites:
    # an out-of-range value contributes at most w <= t, so it cannot be
    # excluded on its own. The paper's uncapped example (volume 20,
    # weight 0.2, threshold 0.2 -> [10, 40]) would drop a pattern whose
    # volume is 50 but whose other three features are identical — total
    # distance exactly 0.2, a true match under <=-threshold semantics.
    spec = DistanceMetricSpec(
        weights={"volume": 0.2, "core_count": 0.3, "avg_density": 0.3,
                 "avg_connectivity": 0.2}
    )
    query = _features(volume=20.0)
    lows, highs = feature_search_ranges(query, spec, 0.2)
    assert lows[0] == 0.0
    assert highs[0] == float("inf")
    dropped_by_old_ranges = _features(volume=50.0)
    assert cluster_feature_distance(
        query, dropped_by_old_ranges, spec
    ) == pytest.approx(0.2)


def test_search_ranges_exclude_only_impossible_candidates():
    spec = DistanceMetricSpec()
    query = _features()
    lows, highs = feature_search_ranges(query, spec, 0.3)
    # A candidate just inside every bound has feature distance <= threshold
    # contribution per feature; one far outside any bound exceeds it.
    outside = _features(volume=highs[0] * 1.5)
    contribution = spec.weight("volume") * relative_difference(
        query.volume, outside.volume
    )
    assert contribution > 0.3 or relative_difference(
        query.volume, outside.volume
    ) == 1.0


def test_zero_weight_feature_unbounded():
    spec = DistanceMetricSpec(
        weights={"volume": 1.0, "core_count": 0.0, "avg_density": 0.0,
                 "avg_connectivity": 0.0}
    )
    lows, highs = feature_search_ranges(_features(), spec, 0.2)
    assert highs[1] == float("inf")
    assert lows[1] == 0.0


def test_distance_between_real_sgs():
    cells_a = [
        SkeletalGridCell((0, 0), 0.5, 10, CellStatus.CORE, frozenset({(1, 0)})),
        SkeletalGridCell((1, 0), 0.5, 8, CellStatus.CORE, frozenset({(0, 0)})),
    ]
    cells_b = [
        SkeletalGridCell((5, 5), 0.5, 10, CellStatus.CORE, frozenset({(6, 5)})),
        SkeletalGridCell((6, 5), 0.5, 8, CellStatus.CORE, frozenset({(5, 5)})),
    ]
    sgs_a = SGS(cells_a, 0.5)
    sgs_b = SGS(cells_b, 0.5)
    spec = DistanceMetricSpec()
    distance = cluster_feature_distance(
        ClusterFeatures.from_sgs(sgs_a),
        ClusterFeatures.from_sgs(sgs_b),
        spec,
    )
    # Identical structure at different positions: non-locational distance 0.
    assert distance == pytest.approx(0.0)
