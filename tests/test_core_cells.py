"""Unit tests for skeletal grid cells."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell


def _cell(**overrides):
    defaults = dict(
        location=(2, -1),
        side_length=0.5,
        population=7,
        status=CellStatus.CORE,
        connections=frozenset({(2, 0), (3, -1)}),
    )
    defaults.update(overrides)
    return SkeletalGridCell(**defaults)


def test_five_attributes_present():
    cell = _cell()
    assert cell.location == (2, -1)
    assert cell.side_length == 0.5
    assert cell.population == 7
    assert cell.status is CellStatus.CORE
    assert cell.connections == frozenset({(2, 0), (3, -1)})


def test_lows_highs_center():
    cell = _cell()
    assert cell.lows() == (1.0, -0.5)
    assert cell.highs() == (1.5, 0.0)
    assert cell.center() == (1.25, -0.25)


def test_density_is_population_over_volume():
    cell = _cell()
    assert cell.cell_volume() == pytest.approx(0.25)
    assert cell.density() == pytest.approx(7 / 0.25)


def test_is_core():
    assert _cell().is_core
    assert not _cell(status=CellStatus.EDGE, connections=frozenset()).is_core


def test_validation():
    with pytest.raises(ValueError):
        _cell(population=-1)
    with pytest.raises(ValueError):
        _cell(side_length=0.0)


def test_dimensions():
    assert _cell().dimensions == 2
    cell4 = SkeletalGridCell((0, 0, 0, 0), 1.0, 1, CellStatus.EDGE)
    assert cell4.dimensions == 4


def test_status_enum_values():
    assert CellStatus.CORE.value == "core"
    assert CellStatus.EDGE.value == "edge"


def test_min_gap_to_touching_and_distant_cells():
    base = SkeletalGridCell((0, 0), 1.0, 1, CellStatus.CORE)
    touching = SkeletalGridCell((1, 1), 1.0, 1, CellStatus.CORE)
    assert base.min_gap_to(touching) == 0.0
    assert base.min_gap_to(base) == 0.0
    far = SkeletalGridCell((3, 0), 1.0, 1, CellStatus.CORE)
    assert far.min_gap_to(base) == pytest.approx(2.0)
    diagonal = SkeletalGridCell((2, 2), 1.0, 1, CellStatus.CORE)
    assert base.min_gap_to(diagonal) == pytest.approx(2 ** 0.5)
    # Symmetric in both arguments.
    assert base.min_gap_to(diagonal) == diagonal.min_gap_to(base)


def test_min_gap_to_rejects_mismatched_cells():
    base = SkeletalGridCell((0, 0), 1.0, 1, CellStatus.CORE)
    with pytest.raises(ValueError):
        base.min_gap_to(SkeletalGridCell((0, 0), 0.5, 1, CellStatus.CORE))
    with pytest.raises(ValueError):
        base.min_gap_to(SkeletalGridCell((0, 0, 0), 1.0, 1, CellStatus.CORE))


def test_may_connect_is_the_sphere_pruning_predicate():
    """Boundary inclusive: cells exactly θr apart may connect — the same
    predicate the grid's pruned offset tables are built from."""
    base = SkeletalGridCell((0, 0), 1.0, 1, CellStatus.CORE)
    diagonal = SkeletalGridCell((2, 2), 1.0, 1, CellStatus.CORE)
    gap = base.min_gap_to(diagonal)
    assert base.may_connect(diagonal, gap)
    assert not base.may_connect(diagonal, gap - 1e-9)
    assert base.may_connect(SkeletalGridCell((1, 0), 1.0, 1, CellStatus.CORE), 1e-12)
