"""Unit tests for skeletal grid cells."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell


def _cell(**overrides):
    defaults = dict(
        location=(2, -1),
        side_length=0.5,
        population=7,
        status=CellStatus.CORE,
        connections=frozenset({(2, 0), (3, -1)}),
    )
    defaults.update(overrides)
    return SkeletalGridCell(**defaults)


def test_five_attributes_present():
    cell = _cell()
    assert cell.location == (2, -1)
    assert cell.side_length == 0.5
    assert cell.population == 7
    assert cell.status is CellStatus.CORE
    assert cell.connections == frozenset({(2, 0), (3, -1)})


def test_lows_highs_center():
    cell = _cell()
    assert cell.lows() == (1.0, -0.5)
    assert cell.highs() == (1.5, 0.0)
    assert cell.center() == (1.25, -0.25)


def test_density_is_population_over_volume():
    cell = _cell()
    assert cell.cell_volume() == pytest.approx(0.25)
    assert cell.density() == pytest.approx(7 / 0.25)


def test_is_core():
    assert _cell().is_core
    assert not _cell(status=CellStatus.EDGE, connections=frozenset()).is_core


def test_validation():
    with pytest.raises(ValueError):
        _cell(population=-1)
    with pytest.raises(ValueError):
        _cell(side_length=0.0)


def test_dimensions():
    assert _cell().dimensions == 2
    cell4 = SkeletalGridCell((0, 0, 0, 0), 1.0, 1, CellStatus.EDGE)
    assert cell4.dimensions == 4


def test_status_enum_values():
    assert CellStatus.CORE.value == "core"
    assert CellStatus.EDGE.value == "edge"
