"""Test suite package (enables explicit ``tests.helpers`` imports)."""
