"""The deployment seam's laws: mode is placement, never semantics.

Three suites over the Figure-7 ``stt_small`` archive (the same
persisted format-v3 workload the golden fixtures pin):

* **Executor parity** — ``process`` ≡ ``thread`` ≡ ``serial`` ≡ the
  exhaustive scan, byte for byte (same pattern ids, same float
  distances, same alignments, same merged stats), across a
  threshold/top-k × shard-key × coarse-level panel.
* **Fault tolerance** — a shard worker SIGKILLed with a batch in
  flight is respawned from its hydration dump, post-dump ingests are
  replayed from the journal, and the merged answers are *still*
  identical to the serial path's.
* **Lifecycle** — one persistent thread pool per executor (the
  regression pin for the old pool-per-call construction), idempotent
  ``close()``, context managers, closed-executor errors, and
  ``build_executor`` validation.
"""

import os
import signal
import threading
import time

import pytest

from tests.golden.workload import build_sharded_v3_archive
from tests.test_retrieval_engine import _as_pairs, exhaustive_scan
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval import (
    MatchQuery,
    ShardedMatchEngine,
    ShardedPatternBase,
)
from repro.serving import (
    MODES,
    SerialExecutor,
    ThreadExecutor,
    build_executor,
    validate_mode,
)
import repro.serving.executors as executors_module


@pytest.fixture(scope="module")
def flat_base():
    return build_sharded_v3_archive()


def _query_panel(base):
    """threshold/top-k × metric × coarse level, over two query SGS."""
    pattern_ids = sorted(p.pattern_id for p in base.all_patterns())
    query_ids = [pattern_ids[0], pattern_ids[len(pattern_ids) // 2]]
    panel = []
    for query_id in query_ids:
        sgs = base.get(query_id).sgs
        for spec in (
            DistanceMetricSpec(),
            DistanceMetricSpec(position_sensitive=True),
        ):
            for coarse in (0, 1):
                for threshold, top_k in ((0.2, None), (0.5, 5)):
                    panel.append(
                        MatchQuery(
                            sgs=sgs,
                            threshold=threshold,
                            top_k=top_k,
                            metric=spec,
                            coarse_level=coarse,
                        )
                    )
    return panel


def _exact(results):
    """The full observable answer: id, exact float distance, alignment."""
    return [
        (r.pattern.pattern_id, r.distance, tuple(r.alignment))
        for r in results
    ]


# ----------------------------------------------------------------------
# Executor parity: process ≡ thread ≡ serial ≡ exhaustive
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", ("window", "feature"))
def test_modes_agree_bytewise_and_match_exhaustive(flat_base, key):
    sharded = ShardedPatternBase.from_base(flat_base, 4, key)
    panel = _query_panel(flat_base)
    answers = {}
    for mode in MODES:
        with ShardedMatchEngine(sharded, mode=mode) as engine:
            assert engine.mode == mode
            batched = engine.match_many(panel)
            # match() must agree with its own match_many() entry.
            solo_results, solo_stats = engine.match(panel[0])
            assert _exact(solo_results) == _exact(batched[0][0])
            assert solo_stats.plan["entry"] == "sharded"
            answers[mode] = batched
    for mode in ("thread", "process"):
        for qi, query in enumerate(panel):
            serial_results, serial_stats = answers["serial"][qi]
            mode_results, mode_stats = answers[mode][qi]
            assert _exact(mode_results) == _exact(serial_results), (
                f"{mode} diverged from serial on query {qi} ({key})"
            )
            assert mode_stats.archive_size == serial_stats.archive_size
            assert mode_stats.gathered == serial_stats.gathered
            assert mode_stats.refined == serial_stats.refined
            assert mode_stats.matches == serial_stats.matches
            assert (
                mode_stats.plan["entries"] == serial_stats.plan["entries"]
            )
    for qi, query in enumerate(panel):
        if query.top_k is None:
            assert (
                _as_pairs(answers["serial"][qi][0])
                == exhaustive_scan(flat_base, query)
            ), f"serial diverged from the exhaustive scan on query {qi}"


def test_parallel_flag_reflects_mode(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 3, "window")
    query = _query_panel(flat_base)[0]
    for mode, parallel in (
        ("serial", False),
        ("thread", True),
        ("process", True),
    ):
        with ShardedMatchEngine(sharded, mode=mode) as engine:
            assert engine.parallel is parallel
            _, stats = engine.match(query)
            assert stats.plan["parallel"] is parallel


# ----------------------------------------------------------------------
# Fault tolerance: kill a worker, answers stay identical
# ----------------------------------------------------------------------


def test_killed_worker_restarts_and_answers_stay_correct(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 4, "window")
    panel = _query_panel(flat_base)[:6]
    with ShardedMatchEngine(sharded, mode="process") as engine:
        executor = engine.executor
        # A pattern archived *after* worker hydration lives only in the
        # ingest journal — the respawn must replay it.
        extra_sgs = flat_base.get(
            sorted(p.pattern_id for p in flat_base.all_patterns())[0]
        ).sgs
        extra = engine.ingest(extra_sgs, 55)
        # The serial oracle shares the live base, so it already sees
        # the ingest the process workers only know via their replicas.
        with ShardedMatchEngine(sharded, mode="serial") as oracle:
            expected = [
                _exact(results) for results, _ in oracle.match_many(panel)
            ]
        probe = MatchQuery(sgs=extra_sgs, threshold=0.0, metric=engine.spec)
        before = {pid for pid, _, _ in _exact(engine.match(probe)[0])}
        assert extra.pattern_id in before
        # SIGKILL the owning worker: the next batch finds it dead with
        # tasks in flight, respawns it from the dump, replays the
        # journal, and resubmits.
        victim = sharded.shard_index_of(extra.pattern_id)
        os.kill(executor.worker_pids()[victim], signal.SIGKILL)
        time.sleep(0.05)
        batched = engine.match_many(panel)
        assert executor.restarts >= 1, "kill did not trigger a restart"
        for qi in range(len(panel)):
            assert _exact(batched[qi][0]) == expected[qi], (
                f"answers diverged after worker restart (query {qi})"
            )
        # The journal replay preserved the post-dump ingest too (the
        # oracle above predates it, so probe directly).
        after = {pid for pid, _, _ in _exact(engine.match(probe)[0])}
        assert extra.pattern_id in after


def test_sigkill_during_ingest_recovers_without_double_apply(flat_base):
    """The crash-recovery regression: an ingest in flight when its
    worker dies must apply exactly once. The journal entry used to be
    appended *before* submission, so the respawn replayed it and the
    resubmission applied it again — the worker's duplicate-id error
    then killed recovery with a spurious RuntimeError."""
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    sgs = flat_base.get(
        sorted(p.pattern_id for p in flat_base.all_patterns())[0]
    ).sgs
    with ShardedMatchEngine(sharded, mode="process") as engine:
        executor = engine.executor
        # A healthy ingest first, so the respawn has a journal to
        # replay alongside the interrupted entry.
        first = engine.ingest(sgs, 11)
        victim = sharded.shard_index_of(first.pattern_id)
        # Death discovered at submit time: the worker is already gone
        # when the next ingest for its shard arrives.
        os.kill(executor.worker_pids()[victim], signal.SIGKILL)
        time.sleep(0.05)
        second = engine.ingest(sgs, 12)  # raised RuntimeError pre-fix
        assert executor.restarts == 1
        # Death mid-task: the worker picks up the ingest, then dies
        # while it is in flight; the respawn replays both journaled
        # entries and the interrupted one is resubmitted once.
        executor.inject_crash(victim, 0, delay=0.1)
        third = engine.ingest(sgs, 13)
        assert executor.restarts == 2
        probe = MatchQuery(sgs=sgs, threshold=0.0, metric=engine.spec)
        matched = {pid for pid, _, _ in _exact(engine.match(probe)[0])}
        assert {
            first.pattern_id, second.pattern_id, third.pattern_id
        } <= matched
        # The worker replicas agree with the live base exactly.
        with ShardedMatchEngine(sharded, mode="serial") as oracle:
            assert _exact(engine.match(probe)[0]) == _exact(
                oracle.match(probe)[0]
            )


def test_worker_crash_budget_is_bounded(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    query = _query_panel(flat_base)[0]
    with ShardedMatchEngine(sharded, mode="process") as engine:
        executor = engine.executor
        executor.restart_limit = 1
        engine.match(query)  # healthy round first
        os.kill(executor.worker_pids()[0], signal.SIGKILL)
        # Restarted workers answer correctly again within the budget.
        results, _ = engine.match(query)
        assert executor.restarts == 1
        assert _exact(results)


# ----------------------------------------------------------------------
# Replicated read shards: round-robin routing, failover on death
# ----------------------------------------------------------------------


def test_replicated_executor_answers_stay_byte_identical(flat_base):
    """Replication is placement, never semantics: N replicas per shard
    answer exactly what the serial single-copy engine answers, on
    every round of the round-robin rotation."""
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    panel = _query_panel(flat_base)[:4]
    with ShardedMatchEngine(sharded, mode="serial") as oracle:
        expected = [_exact(r) for r, _ in oracle.match_many(panel)]
    with ShardedMatchEngine(sharded, mode="process", replicas=2) as engine:
        executor = engine.executor
        assert executor.replica_count == 2
        assert executor.replica_liveness() == [[True, True], [True, True]]
        # Three rounds cycle every replica through the read path.
        for _ in range(3):
            batched = engine.match_many(panel)
            assert [_exact(r) for r, _ in batched] == expected
        solo, _ = engine.match(panel[0])
        assert _exact(solo) == expected[0]
        assert executor.failovers == 0
        assert executor.restarts == 0


def test_failover_kill_each_replica_in_turn(flat_base):
    """Kill every replica of every shard, one per batch: each death is
    discovered with the batch task in flight, the task completes on
    the live sibling (no respawn wait on the hot path), the dead
    worker respawns in the background, and the merged answers never
    change."""
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    panel = _query_panel(flat_base)[:4]
    with ShardedMatchEngine(sharded, mode="serial") as oracle:
        expected = [_exact(r) for r, _ in oracle.match_many(panel)]
    with ShardedMatchEngine(sharded, mode="process", replicas=2) as engine:
        executor = engine.executor
        kills = 0
        for shard in range(2):
            for replica in range(2):
                executor.inject_crash(shard, replica, delay=0.1)
                kills += 1
                batched = engine.match_many(panel)
                assert [_exact(r) for r, _ in batched] == expected, (
                    f"answers diverged after killing shard {shard} "
                    f"replica {replica}"
                )
                assert executor.failovers == kills, (
                    "the in-flight task did not fail over to a sibling"
                )
        assert executor.restarts == kills
        # Every killed worker came back: a healthy rotation sees only
        # live replicas.
        assert executor.replica_liveness() == [[True, True], [True, True]]


def test_failover_all_replicas_of_one_shard_killed(flat_base):
    """When every replica of a shard dies mid-batch there is no
    sibling to fail over to — the read falls back to respawn-and-wait
    and the answers are still byte-identical."""
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    panel = _query_panel(flat_base)[:4]
    with ShardedMatchEngine(sharded, mode="serial") as oracle:
        expected = [_exact(r) for r, _ in oracle.match_many(panel)]
    with ShardedMatchEngine(sharded, mode="process", replicas=2) as engine:
        executor = engine.executor
        executor.inject_crash(0, 0, delay=0.08)
        executor.inject_crash(0, 1, delay=0.08)
        batched = engine.match_many(panel)
        assert [_exact(r) for r, _ in batched] == expected
        assert executor.restarts >= 1
        # The next healthy batch repairs whatever is still down.
        batched = engine.match_many(panel)
        assert [_exact(r) for r, _ in batched] == expected
        assert executor.replica_liveness()[0] == [True, True]
        assert executor.restarts >= 2


def test_failover_retry_is_bounded(flat_base):
    """A task may not chase dying workers forever: once its retries
    exceed restart_limit the executor gives up loudly."""
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    query = _query_panel(flat_base)[0]
    with ShardedMatchEngine(sharded, mode="process", replicas=2) as engine:
        executor = engine.executor
        executor.restart_limit = 0
        executor.inject_crash(0, 0, delay=0.05)
        executor.inject_crash(0, 1, delay=0.05)
        with pytest.raises(RuntimeError, match="giving up"):
            engine.match(query)


def test_build_executor_replicas_validation(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    with ShardedMatchEngine(sharded, mode="serial") as donor:
        engines = donor.engines
        with pytest.raises(ValueError):
            build_executor("thread", engines, replicas=2)
        with pytest.raises(ValueError):
            build_executor("serial", engines, replicas=2)
        with pytest.raises(ValueError):
            build_executor(None, engines, replicas=0)
    # Asking for replicas without a mode means process workers.
    with ShardedMatchEngine(sharded, replicas=2) as engine:
        assert engine.mode == "process"
        assert engine.executor.replica_count == 2
        assert engine.replicas == 2


# ----------------------------------------------------------------------
# Lifecycle: one pool per executor, close semantics, validation
# ----------------------------------------------------------------------


def test_thread_fan_out_collects_outstanding_futures_before_raising():
    """Regression pin: a shard failure used to propagate immediately,
    abandoning the sibling futures mid-run — they kept mutating shared
    engine state while the caller was already unwinding."""

    started = threading.Event()

    class _Boom:
        def match(self, query):
            # Fail only once the sibling is genuinely in flight, so
            # the error cannot cancel it while it is still queued.
            assert started.wait(5.0)
            raise ValueError("boom")

    class _Slow:
        def __init__(self):
            self.done = threading.Event()

        def match(self, query):
            started.set()
            time.sleep(0.2)
            self.done.set()
            return ([], None)

    slow = _Slow()
    with ThreadExecutor([_Boom(), slow], max_workers=2) as executor:
        with pytest.raises(ValueError, match="boom"):
            executor.match(None)
        assert slow.done.is_set(), (
            "the error propagated before the in-flight sibling finished"
        )


def test_thread_executor_builds_exactly_one_pool(flat_base, monkeypatch):
    """Regression pin: the facade used to construct (and tear down) a
    ThreadPoolExecutor on *every* match/match_many call."""
    constructed = []
    real_pool = executors_module.ThreadPoolExecutor

    class CountingPool(real_pool):
        def __init__(self, *args, **kwargs):
            constructed.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(
        executors_module, "ThreadPoolExecutor", CountingPool
    )
    sharded = ShardedPatternBase.from_base(flat_base, 3, "window")
    panel = _query_panel(flat_base)[:4]
    with ShardedMatchEngine(sharded) as engine:  # default: thread mode
        assert engine.mode == "thread"
        for query in panel:
            engine.match(query)
        engine.match_many(panel)
        engine.match_many(panel)
    assert len(constructed) == 1, (
        f"expected one persistent pool, saw {len(constructed)} constructions"
    )


def test_closed_executor_refuses_work(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    query = _query_panel(flat_base)[0]
    engine = ShardedMatchEngine(sharded, mode="thread")
    engine.match(query)
    engine.close()
    engine.close()  # idempotent
    assert engine.executor.closed
    with pytest.raises(RuntimeError):
        engine.match(query)
    serial = SerialExecutor(engines=[])
    with serial:
        pass
    with pytest.raises(RuntimeError):
        serial.match(query)


def test_injected_executor_is_not_closed_by_the_facade(flat_base):
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    query = _query_panel(flat_base)[0]
    with ShardedMatchEngine(sharded, mode="serial") as donor:
        shared = donor.executor
        facade = ShardedMatchEngine(sharded, executor=shared)
        facade.match(query)
        facade.close()
        assert not shared.closed
        donor.match(query)  # still serving


def test_build_executor_validation(flat_base):
    with pytest.raises(ValueError):
        validate_mode("bogus")
    with pytest.raises(ValueError):
        build_executor("carrier-pigeon", engines=[])
    with pytest.raises(ValueError):
        build_executor("process", engines=[])  # no base / worker config
    sharded = ShardedPatternBase.from_base(flat_base, 2, "window")
    engines = ShardedMatchEngine(sharded, mode="serial").engines
    # The historical default: thread for many shards, serial for one
    # worker or one shard.
    assert build_executor(None, engines).mode == "thread"
    assert build_executor(None, engines, max_workers=1).mode == "serial"
    assert build_executor(None, engines[:1]).mode == "serial"
    pool = build_executor("thread", engines, max_workers=64)
    assert isinstance(pool, ThreadExecutor)
    assert pool.max_workers == len(engines)  # clamped to shard count
    pool.close()
