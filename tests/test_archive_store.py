"""Unit tests for the ``PatternStore`` seam (memory + SQLite backends).

Storage is never semantics: both backends must answer identically, dump
identical bytes, and survive the same failure drills. The crash/torn-
input corpus lives in ``tests/test_archive_truncation.py``.
"""

import io
import math

import pytest

from tests.helpers import clustered_points, stream_batches
from tests.golden.workload import (
    MATCH_PATH,
    SHARDED_MATCH_PATH,
    render,
    run_match_trace,
    run_sharded_match_trace,
)
from repro.archive.pattern_base import ArchivedPattern, PatternBase
from repro.archive.persistence import load_pattern_base, roundtrip_bytes
from repro.archive.store import (
    DEFAULT_CACHE_PATTERNS,
    MemoryStore,
    SqliteStore,
    open_store,
    parse_store_spec,
    validate_store_spec,
)
from repro.core.csgs import CSGS
from repro.core.features import ClusterFeatures
from repro.retrieval import ShardedPatternBase
from repro.serving.service import MatchService, ServiceError


def _populated(seed=1, store=None, inverted=None):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0)], per_cluster=250, noise=100, seed=seed
    )
    base = PatternBase(store=store, inverted_levels=inverted)
    csgs = CSGS(0.35, 5, 2)
    last = None
    for batch in stream_batches(points, 300, 100):
        last = csgs.process_batch(batch)
        for cluster, sgs in zip(last.clusters, last.summaries):
            base.add(sgs, cluster.size)
    return base, last


# ----------------------------------------------------------------------
# Store specs
# ----------------------------------------------------------------------


def test_parse_store_spec_forms():
    assert parse_store_spec("memory") == ("memory", None, {})
    assert parse_store_spec("sqlite:/tmp/h.db") == (
        "sqlite", "/tmp/h.db", {},
    )
    assert parse_store_spec("sqlite:h.db?cache=7") == (
        "sqlite", "h.db", {"cache": 7},
    )


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "bogus",
        "bogus:/x",
        "sqlite:",
        "sqlite:h.db?cache=zero",
        "sqlite:h.db?cache=0",
        "sqlite:h.db?warm=1",
    ],
)
def test_bad_store_specs_rejected(spec):
    with pytest.raises(ValueError):
        parse_store_spec(spec)


def test_validate_store_spec_passes_none_through():
    assert validate_store_spec(None) is None
    assert validate_store_spec("memory") == "memory"
    with pytest.raises(ValueError):
        validate_store_spec("bogus")


def test_open_store_backends(tmp_path):
    assert isinstance(open_store(None), MemoryStore)
    assert isinstance(open_store("memory"), MemoryStore)
    with open_store(f"sqlite:{tmp_path / 'h.db'}?cache=5") as store:
        assert isinstance(store, SqliteStore)
        assert store.cache_patterns == 5
    with open_store(f"sqlite:{tmp_path / 'h2.db'}") as store:
        assert store.cache_patterns == DEFAULT_CACHE_PATTERNS


def test_pattern_base_rejects_non_store_object():
    with pytest.raises(TypeError):
        PatternBase(store=object())


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------


def test_dump_bytes_identical_across_backends(tmp_path):
    memory, _ = _populated(seed=2, inverted=(1,))
    disk, _ = _populated(
        seed=2, store=f"sqlite:{tmp_path / 'parity.db'}", inverted=(1,)
    )
    assert roundtrip_bytes(disk) == roundtrip_bytes(memory)
    disk.close()


def test_dump_load_roundtrips_between_backends(tmp_path):
    memory, _ = _populated(seed=3, inverted=(1, 2))
    blob = roundtrip_bytes(memory)
    onto_disk = load_pattern_base(
        io.BytesIO(blob), store=f"sqlite:{tmp_path / 'import.db'}"
    )
    assert len(onto_disk) == len(memory)
    assert onto_disk.summary_bytes() == memory.summary_bytes()
    assert roundtrip_bytes(onto_disk) == blob
    onto_disk.close()
    back_in_memory = load_pattern_base(io.BytesIO(blob))
    assert roundtrip_bytes(back_in_memory) == blob


def test_golden_match_fixture_byte_identical_on_sqlite(tmp_path):
    trace = run_match_trace(store=f"sqlite:{tmp_path / 'golden.db'}")
    assert render(trace) == MATCH_PATH.read_text()


def test_golden_sharded_fixture_byte_identical_on_sqlite(tmp_path):
    trace = run_sharded_match_trace(
        store=f"sqlite:{tmp_path / 'golden-sharded.db'}"
    )
    assert render(trace) == SHARDED_MATCH_PATH.read_text()


# ----------------------------------------------------------------------
# Reopen, lazy hydration, write-through metadata
# ----------------------------------------------------------------------


def test_sqlite_reopen_restores_archive(tmp_path):
    spec = f"sqlite:{tmp_path / 'history.db'}"
    base, last = _populated(seed=4, store=spec, inverted=(1,))
    expected = {
        (p.pattern_id, p.full_size, p.features, p.mbr)
        for p in base.all_patterns()
    }
    blob = roundtrip_bytes(base)
    count = len(base)
    base.close()

    with PatternBase(store=spec) as reopened:
        assert len(reopened) == count
        assert {
            (p.pattern_id, p.full_size, p.features, p.mbr)
            for p in reopened.all_patterns()
        } == expected
        # The inverted index restores from the postings table alone.
        index = reopened.inverted_index()
        assert index is not None and index.covers(1)
        # Lazily-hydrated summaries serialize to the same bytes.
        assert roundtrip_bytes(reopened) == blob
        # The id allocator advances past everything on disk.
        fresh = reopened.add(last.summaries[0], 10)
        assert fresh.pattern_id == count and fresh.pattern_id not in {
            pid for pid, *_ in expected
        }


def test_sqlite_hydration_lru(tmp_path):
    spec = f"sqlite:{tmp_path / 'lru.db'}?cache=2"
    base, _ = _populated(seed=5, store=spec)
    store = base.store
    assert len(base) > 2
    assert store.cache_patterns == 2
    assert len(store._cache) == 2
    assert store.stats["evictions"] > 0

    evicted = next(
        p for p in base.all_patterns() if p.pattern_id not in store._cache
    )
    before = dict(store.stats)
    first = evicted.sgs
    assert store.stats["hydrations"] == before["hydrations"] + 1
    # While cached, repeated access returns the same object (no rebuild
    # and no extra disk read).
    assert evicted.sgs is first
    assert store.stats["cache_hits"] == before["cache_hits"] + 1
    base.close()


def test_sqlite_stub_identity_in_indices(tmp_path):
    """The indices hold the canonical stored stub itself, so identity-
    based removal keeps working on a disk-backed base."""
    base, _ = _populated(seed=6, store=f"sqlite:{tmp_path / 'id.db'}")
    for pattern in base.all_patterns():
        assert any(
            hit is pattern for hit in base.overlapping(pattern.mbr)
        )
    victim = next(iter(base.all_patterns()))
    assert base.remove(victim.pattern_id)
    assert all(
        hit is not victim for hit in base.overlapping(victim.mbr)
    )
    base.close()


def test_ladder_hint_writes_through(tmp_path):
    spec = f"sqlite:{tmp_path / 'hints.db'}"
    base, _ = _populated(seed=7, store=spec)
    pattern_id = min(p.pattern_id for p in base.all_patterns())
    base.get(pattern_id).ladder_hint = 3
    base.close()
    with PatternBase(store=spec) as reopened:
        assert reopened.get(pattern_id).ladder_hint == 3


def test_sqlite_removal_survives_reopen(tmp_path):
    spec = f"sqlite:{tmp_path / 'rm.db'}"
    base, _ = _populated(seed=8, store=spec, inverted=(1,))
    count = len(base)
    victim = min(p.pattern_id for p in base.all_patterns())
    assert base.remove(victim)
    assert not base.remove(victim)
    base.close()
    with PatternBase(store=spec) as reopened:
        assert len(reopened) == count - 1
        assert victim not in reopened
        index = reopened.inverted_index()
        assert index is not None and victim not in index


def test_store_describe_telemetry(tmp_path):
    base, _ = _populated(
        seed=9, store=f"sqlite:{tmp_path / 'tele.db'}", inverted=(1,)
    )
    info = base.store_info()
    assert info["backend"] == "sqlite"
    assert info["durable"] is True
    assert info["patterns"] == len(base)
    assert info["inverted_levels"] == [1]
    base.close()

    memory, _ = _populated(seed=9)
    info = memory.store_info()
    assert info == {
        "backend": "memory", "durable": False, "patterns": len(memory),
    }


# ----------------------------------------------------------------------
# Exception-safe restore (the half-restore fix), both backends
# ----------------------------------------------------------------------


def _nan_pattern(sgs):
    """A pattern the feature grid must reject (NaN bins)."""
    pattern = ArchivedPattern(999, sgs, 10)
    pattern.features = ClusterFeatures(
        volume=math.nan,
        core_count=1.0,
        avg_density=1.0,
        avg_connectivity=1.0,
    )
    return pattern


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_failed_restore_unwinds_everything(tmp_path, backend):
    store = (
        None if backend == "memory"
        else f"sqlite:{tmp_path / 'unwind.db'}"
    )
    base, last = _populated(seed=10, store=store, inverted=(1,))
    count = len(base)
    bad = _nan_pattern(last.summaries[0])
    hits_before = len(base.overlapping(bad.mbr))

    with pytest.raises(ValueError):
        base.restore(bad)

    # Nothing partial survives: not the store, not either feature
    # index, not the inverted index.
    assert len(base) == count
    assert bad.pattern_id not in base
    assert len(base.overlapping(bad.mbr)) == hits_before
    assert bad.pattern_id not in base.inverted_index()
    # The same id restores cleanly afterwards.
    good = base.restore(ArchivedPattern(999, last.summaries[0], 10))
    assert good.pattern_id == 999 and 999 in base
    base.close()


def test_failed_restore_leaves_sqlite_file_clean(tmp_path):
    spec = f"sqlite:{tmp_path / 'unwind2.db'}"
    base, last = _populated(seed=11, store=spec)
    count = len(base)
    with pytest.raises(ValueError):
        base.restore(_nan_pattern(last.summaries[0]))
    base.close()
    with PatternBase(store=spec) as reopened:
        assert len(reopened) == count
        assert 999 not in reopened


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_commit_failure_unwinds_indices(tmp_path, backend, monkeypatch):
    """A store that refuses the final commit leaves the in-memory
    indices exactly as they were (the crash-during-ack drill)."""
    store = (
        None if backend == "memory"
        else f"sqlite:{tmp_path / 'ack.db'}"
    )
    base, last = _populated(seed=12, store=store, inverted=(1,))
    count = len(base)

    def refuse(*args, **kwargs):
        raise RuntimeError("disk full")

    monkeypatch.setattr(base.store, "commit", refuse)
    with pytest.raises(RuntimeError):
        base.add(last.summaries[0], 10)
    monkeypatch.undo()

    assert len(base) == count
    assert count not in base.inverted_index()
    # The id was not burned: the next add reuses it and succeeds.
    fresh = base.add(last.summaries[0], 10)
    assert fresh.pattern_id == count
    base.close()


# ----------------------------------------------------------------------
# Sharded serving over a durable origin store
# ----------------------------------------------------------------------


def test_sharded_ingest_writes_through_to_origin(tmp_path):
    spec = f"sqlite:{tmp_path / 'sharded.db'}"
    base, last = _populated(seed=13, store=spec, inverted=(1,))
    count = len(base)
    sharded = ShardedPatternBase.from_base(base, 2, "window")
    assert sharded.store is base.store
    assert sharded.store_info()["backend"] == "sqlite"

    fresh = sharded.add(last.summaries[0], 10)
    assert fresh.pattern_id in base.store
    assert sharded.remove(fresh.pattern_id)
    assert fresh.pattern_id not in base.store
    sharded.add(last.summaries[1 % len(last.summaries)], 12)
    sharded.close()

    with PatternBase(store=spec) as reopened:
        assert len(reopened) == count + 1


def test_service_cold_starts_from_store(tmp_path):
    spec = f"sqlite:{tmp_path / 'svc.db'}"
    base, _ = _populated(seed=14, store=spec, inverted=(1,))
    count = len(base)
    base.close()
    with MatchService.from_archive(store=spec, shards=2) as service:
        stats = service.stats()
        assert stats["archive_size"] == count
        assert stats["store"]["backend"] == "sqlite"
        assert stats["store"]["durable"] is True


def test_service_needs_archive_or_store():
    with pytest.raises(ServiceError):
        MatchService.from_archive()


def test_service_rejects_archive_into_populated_store(tmp_path):
    spec = f"sqlite:{tmp_path / 'full.db'}"
    base, _ = _populated(seed=15, store=spec)
    dump = tmp_path / "dump.sgsa"
    from repro.archive.persistence import dump_pattern_base

    dump_pattern_base(base, dump)
    base.close()
    with pytest.raises(ServiceError):
        MatchService.from_archive(path=str(dump), store=spec)
