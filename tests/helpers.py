"""Shared helpers for the test suite, imported explicitly as
``from tests.helpers import ...``.

These used to live in ``tests/conftest.py`` and were imported as
``from conftest import ...`` — which broke collection from the repo
root, where ``benchmarks/conftest.py`` shadowed the ambiguous
``conftest`` module name. Plain module + explicit package import keeps
them unambiguous under any invocation.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.streams.objects import StreamObject
from repro.streams.source import ListSource
from repro.streams.windows import CountBasedWindowSpec, Windower


def make_objects(
    points: Sequence[Tuple[float, ...]],
    last_window: int = 10,
    first_window: int = 0,
) -> List[StreamObject]:
    """Stream objects from raw points, pre-stamped as alive in a range."""
    objects = []
    for i, coords in enumerate(points):
        obj = StreamObject(i, tuple(coords))
        obj.first_window = first_window
        obj.last_window = last_window
        objects.append(obj)
    return objects


def clustered_points(
    centers: Sequence[Tuple[float, ...]],
    per_cluster: int,
    std: float = 0.2,
    noise: int = 0,
    bounds: float = 10.0,
    seed: int = 0,
) -> List[Tuple[float, ...]]:
    """Gaussian blobs plus uniform noise, shuffled deterministically."""
    rng = random.Random(seed)
    dims = len(centers[0])
    points: List[Tuple[float, ...]] = []
    for center in centers:
        for _ in range(per_cluster):
            points.append(tuple(rng.gauss(c, std) for c in center))
    for _ in range(noise):
        points.append(tuple(rng.uniform(0, bounds) for _ in range(dims)))
    rng.shuffle(points)
    return points


def stream_batches(points, win: int, slide: int):
    """Window batches over an in-memory point list."""
    spec = CountBasedWindowSpec(win=win, slide=slide)
    return Windower(spec).batches(ListSource(points))
