"""Unit tests for shared multi-query C-SGS execution."""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.clustering.cluster import partition_signature
from repro.clustering.shared import SharedCSGS
from repro.core.csgs import CSGS


def _points(seed=1):
    return clustered_points(
        [(2.0, 2.0), (6.0, 4.0)], per_cluster=250, noise=150, seed=seed
    )


def test_shared_equals_independent_runs():
    theta_counts = (3, 5, 8)
    points = _points()
    shared = SharedCSGS(0.35, theta_counts, 2)
    independents = {c: CSGS(0.35, c, 2) for c in theta_counts}
    for batch in stream_batches(points, 300, 100):
        shared_outputs = shared.process_batch(batch)
        for count, csgs in independents.items():
            expected = csgs.process_batch(batch)
            got = shared_outputs[count]
            assert partition_signature(got.clusters) == partition_signature(
                expected.clusters
            ), f"theta_count={count} window={batch.index}"
            # Summaries match cell-for-cell too.
            expected_cells = {
                frozenset(s.cells) for s in expected.summaries
            }
            got_cells = {frozenset(s.cells) for s in got.summaries}
            assert got_cells == expected_cells


def test_one_range_query_per_object_total():
    points = _points(seed=2)[:600]
    shared = SharedCSGS(0.35, (3, 5, 8), 2)
    for batch in stream_batches(points, 200, 100):
        shared.process_batch(batch)
    assert shared.range_queries_run == len(points)


def test_shared_grid_is_single_instance():
    shared = SharedCSGS(0.35, (3, 5), 2)
    grids = {id(member.tracker.grid) for member in shared.members.values()}
    assert grids == {id(shared.grid)}


def test_validation():
    with pytest.raises(ValueError):
        SharedCSGS(0.35, (), 2)
    with pytest.raises(ValueError):
        SharedCSGS(0.35, (3, 3), 2)


def test_shared_tracker_requires_injected_neighbors():
    from repro.core.lifespan import NeighborhoodTracker
    from repro.index.grid_index import GridIndex
    from repro.streams.objects import StreamObject

    grid = GridIndex(0.5, 2)
    tracker = NeighborhoodTracker(0.5, 3, 2, grid=grid, manage_grid=False)
    obj = StreamObject(0, (0.0, 0.0))
    obj.first_window = 0
    obj.last_window = 5
    with pytest.raises(ValueError):
        tracker.insert(obj)


def test_expiration_shared():
    from repro.streams.windows import WindowBatch
    from repro.streams.objects import StreamObject

    shared = SharedCSGS(0.5, (2, 4), 2)
    batch = WindowBatch(index=0)
    for i in range(8):
        obj = StreamObject(i, (0.05 * i, 0.0))
        obj.first_window = 0
        obj.last_window = 1
        batch.new_objects.append(obj)
    outputs = shared.process_batch(batch)
    assert outputs[2].clusters and outputs[4].clusters
    empty = shared.process_batch(WindowBatch(index=2))
    assert all(not out.clusters for out in empty.values())
    assert len(shared.grid) == 0
