"""Unit tests for the SGS container and its fidelity lemmas."""

import math

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.sgs import SGS


def _core(loc, pop=5, conn=()):
    return SkeletalGridCell(loc, 0.5, pop, CellStatus.CORE, frozenset(conn))


def _edge(loc, pop=2):
    return SkeletalGridCell(loc, 0.5, pop, CellStatus.EDGE)


def _sample_sgs():
    # Two connected core cells with an attached edge cell.
    cells = [
        _core((0, 0), pop=6, conn={(1, 0), (1, 1)}),
        _core((1, 0), pop=4, conn={(0, 0)}),
        _edge((1, 1), pop=2),
    ]
    return SGS(cells, 0.5, level=0, cluster_id=3, window_index=9)


def test_basic_features():
    sgs = _sample_sgs()
    assert sgs.volume == 3
    assert sgs.core_count == 2
    assert sgs.population == 12
    assert sgs.dimensions == 2
    assert len(sgs) == 3


def test_average_density():
    sgs = _sample_sgs()
    cell_volume = 0.25
    expected = (6 / cell_volume + 4 / cell_volume + 2 / cell_volume) / 3
    assert sgs.average_density() == pytest.approx(expected)


def test_average_connectivity_counts_core_cells_only():
    sgs = _sample_sgs()
    assert sgs.average_connectivity() == pytest.approx((2 + 1) / 2)


def test_mbr_covers_cells():
    sgs = _sample_sgs()
    box = sgs.mbr()
    assert box.lows == (0.0, 0.0)
    assert box.highs == (1.0, 1.0)


def test_density_of_region_lemma_4_4():
    sgs = _sample_sgs()
    # Exact density of the sub-region made of the two core cells.
    density = sgs.density_of_region([(0, 0), (1, 0)])
    assert density == pytest.approx((6 + 4) / (0.25 + 0.25))


def test_location_error_bound_lemma_4_3():
    sgs = _sample_sgs()
    # With cell diagonal == theta_range, the bound is the diagonal.
    assert sgs.max_location_error([]) == pytest.approx(0.5 * math.sqrt(2))


def test_covers_point():
    sgs = _sample_sgs()
    assert sgs.covers_point((0.1, 0.1))
    assert sgs.covers_point((0.6, 0.6))
    assert not sgs.covers_point((3.0, 3.0))


def test_core_graph_and_path():
    sgs = _sample_sgs()
    graph = sgs.core_graph()
    assert set(graph) == {(0, 0), (1, 0)}
    assert graph[(0, 0)] == [(1, 0)]
    assert sgs.core_path_length((0, 0), (1, 0)) == 1
    assert sgs.core_path_length((0, 0), (0, 0)) == 0


def test_core_path_none_when_disconnected():
    cells = [_core((0, 0)), _core((5, 5))]
    sgs = SGS(cells, 0.5)
    assert sgs.core_path_length((0, 0), (5, 5)) is None
    assert not sgs.is_connected()


def test_is_connected_true_for_sample():
    assert _sample_sgs().is_connected()


def test_is_connected_false_for_orphan_edge():
    cells = [_core((0, 0), conn=set()), _edge((5, 5))]
    sgs = SGS(cells, 0.5)
    assert not sgs.is_connected()


def test_duplicate_locations_rejected():
    with pytest.raises(ValueError):
        SGS([_core((0, 0)), _core((0, 0))], 0.5)


def test_mixed_side_lengths_rejected():
    good = _core((0, 0))
    bad = SkeletalGridCell((1, 0), 0.7, 1, CellStatus.CORE)
    with pytest.raises(ValueError):
        SGS([good, bad], 0.5)


def test_empty_sgs_rejected():
    with pytest.raises(ValueError):
        SGS([], 0.5)
