"""Property-based parity suite for the CoordStore refinement kernels.

The canonical neighbor predicate is pinned in
:mod:`repro.geometry.coordstore`: dimension-ascending sequential
accumulation of squared differences in IEEE doubles, boundary-inclusive
``<= θr²``. Three implementations must agree *exactly*:

* the scalar early-exit predicate (:func:`within_sq_range`),
* the scalar full sum (:func:`canonical_sq_dist`),
* the vectorized column kernels of a ``refinement='vector'`` store.

These tests assert the agreement — including exact-boundary points,
duplicate coordinates, tombstoned (removed) oids, and 1-D through 5-D
inputs — rather than assuming the float-accumulation argument holds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.coordstore import (
    HAVE_NUMPY,
    CoordStore,
    canonical_sq_dist,
    get_default_refinement,
    resolve_refinement,
    set_default_refinement,
    within_sq_range,
)
from repro.streams.objects import StreamObject

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector kernels require NumPy"
)


@pytest.fixture(autouse=True)
def _always_vectorize(monkeypatch):
    """Drop the small-batch scalar fallback so the vector kernels are
    genuinely exercised at hypothesis-sized inputs."""
    monkeypatch.setattr(CoordStore, "_VECTOR_MIN_WORK", 1)


coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def store_cases(draw, min_points=1, max_points=40):
    """(dimensions, point list) with deliberate duplicate coordinates."""
    dims = draw(st.integers(min_value=1, max_value=5))
    pool = draw(
        st.lists(
            st.tuples(*[coordinate] * dims), min_size=1, max_size=12
        )
    )
    # Sample points from a small pool so duplicates are common.
    points = draw(
        st.lists(
            st.sampled_from(pool),
            min_size=min_points,
            max_size=max_points,
        )
    )
    probe = draw(
        st.one_of(st.sampled_from(pool), st.tuples(*[coordinate] * dims))
    )
    return dims, points, tuple(probe)


def build_stores(dims, points):
    objects = [
        StreamObject(i, tuple(point)) for i, point in enumerate(points)
    ]
    scalar = CoordStore(dims, refinement="scalar")
    vector = CoordStore(dims, refinement="vector")
    for obj in objects:
        scalar.add(obj)
        vector.add(obj)
    return objects, scalar, vector


# ----------------------------------------------------------------------
# Canonical-order agreement (the float-accumulation satellite)
# ----------------------------------------------------------------------


@given(store_cases(), st.floats(min_value=0, max_value=1e13))
@settings(max_examples=200)
def test_early_exit_matches_canonical_full_sum(case, sq_range):
    """within_sq_range may stop mid-accumulation; its decision must
    equal the full canonical sum's (monotone partial sums)."""
    dims, points, probe = case
    for point in points:
        assert within_sq_range(probe, point, sq_range) == (
            canonical_sq_dist(probe, point) <= sq_range
        )


@given(store_cases())
@settings(max_examples=200)
def test_early_exit_matches_canonical_at_exact_boundary(case):
    dims, points, probe = case
    for point in points:
        boundary = canonical_sq_dist(probe, point)
        assert within_sq_range(probe, point, boundary) is True
        assert within_sq_range(point, probe, boundary) is True


@given(store_cases())
@settings(max_examples=200)
def test_vector_sums_bit_equal_scalar_sums(case):
    """The vectorized kernel's totals are bit-identical to the scalar
    canonical sums (same IEEE operation sequence per element)."""
    dims, points, probe = case
    objects, scalar, vector = build_stores(dims, points)
    want = [canonical_sq_dist(obj.coords, probe) for obj in objects]
    assert scalar.sq_dists_to(probe) == want
    assert vector.sq_dists_to(probe) == want  # bitwise: == on floats


# ----------------------------------------------------------------------
# Store-level scalar/vector parity
# ----------------------------------------------------------------------


@given(
    store_cases(),
    st.floats(min_value=0, max_value=1e13),
    st.data(),
)
@settings(max_examples=150)
def test_within_radius_parity_with_tombstones(case, sq_range, data):
    dims, points, probe = case
    objects, scalar, vector = build_stores(dims, points)
    removed = data.draw(
        st.lists(
            st.sampled_from(objects), unique_by=id, max_size=len(objects)
        )
    )
    for obj in removed:
        scalar.remove(obj.oid)
        vector.remove(obj.oid)
    # Exercise the exact boundary half the time.
    survivors = [obj for obj in objects if obj not in removed]
    if survivors and data.draw(st.booleans()):
        anchor = data.draw(st.sampled_from(survivors))
        sq_range = canonical_sq_dist(probe, anchor.coords)
    got_scalar = scalar.within_radius(probe, sq_range)
    got_vector = vector.within_radius(probe, sq_range)
    assert [o.oid for o in got_scalar] == [o.oid for o in got_vector]
    for obj in removed:
        assert obj not in got_vector
    # Ground truth from the canonical predicate.
    want = [
        obj.oid
        for obj in survivors
        if within_sq_range(probe, obj.coords, sq_range)
    ]
    assert [o.oid for o in got_vector] == want


@given(
    store_cases(),
    st.floats(min_value=0, max_value=1e13),
    st.integers(min_value=-1, max_value=45),
)
@settings(max_examples=150)
def test_refine_parity(case, sq_range, exclude_oid):
    dims, points, probe = case
    objects, scalar, vector = build_stores(dims, points)
    got_scalar = scalar.refine(objects, probe, sq_range, exclude_oid)
    got_vector = vector.refine(objects, probe, sq_range, exclude_oid)
    assert [o.oid for o in got_scalar] == [o.oid for o in got_vector]
    assert all(o.oid != exclude_oid for o in got_vector)


@given(store_cases(), st.data())
@settings(max_examples=100)
def test_refine_many_parity(case, data):
    dims, points, _ = case
    objects, scalar, vector = build_stores(dims, points)
    probes = data.draw(
        st.lists(
            st.tuples(*[coordinate] * dims), min_size=0, max_size=6
        )
    )
    probes = [tuple(p) for p in probes]
    sq_range = data.draw(st.floats(min_value=0, max_value=1e13))
    excludes = data.draw(
        st.lists(
            st.integers(min_value=-1, max_value=45),
            min_size=len(probes),
            max_size=len(probes),
        )
    )
    sb = scalar.batch(objects)
    vb = vector.batch(objects)
    got_scalar = scalar.refine_many(sb, probes, sq_range, excludes)
    got_vector = vector.refine_many(vb, probes, sq_range, excludes)
    assert [[o.oid for o in row] for row in got_scalar] == [
        [o.oid for o in row] for row in got_vector
    ]
    # Each row must equal the single-probe kernel's answer.
    for probe, exclude, row in zip(probes, excludes, got_vector):
        single = vector.refine(objects, probe, sq_range, exclude)
        assert [o.oid for o in row] == [o.oid for o in single]


@given(store_cases(), st.floats(min_value=0, max_value=1e13))
@settings(max_examples=100)
def test_pairwise_within_parity(case, sq_range):
    dims, points, _ = case
    objects, scalar, vector = build_stores(dims, points)
    oids = [obj.oid for obj in objects]
    assert scalar.pairwise_within(oids, sq_range) == vector.pairwise_within(
        oids, sq_range
    )
    # Self-distance is 0: every adjacent duplicate pair must appear.
    got = set(vector.pairwise_within(oids, sq_range))
    for i, a in enumerate(objects):
        for j in range(i + 1, len(objects)):
            b = objects[j]
            expected = within_sq_range(a.coords, b.coords, sq_range)
            assert ((a.oid, b.oid) in got) == expected


# ----------------------------------------------------------------------
# Tombstone bookkeeping
# ----------------------------------------------------------------------


@pytest.mark.parametrize("refinement", ("scalar", "vector"))
def test_removed_oid_raises_everywhere(refinement):
    store = CoordStore(2, refinement=refinement)
    objs = [StreamObject(i, (float(i), 0.0)) for i in range(3)]
    for obj in objs:
        store.add(obj)
    store.remove(1)
    assert 1 not in store
    assert len(store) == 2
    with pytest.raises(KeyError):
        store.remove(1)
    with pytest.raises(KeyError):
        store.sq_dists_to((0.0, 0.0), oids=[1])
    with pytest.raises(KeyError):
        store.pairwise_within([0, 1], 100.0)
    # Re-adding a removed oid is legal and queryable again.
    store.add(objs[1])
    assert [o.oid for o in store.within_radius((1.0, 0.0), 0.0)] == [1]


def test_default_refinement_mode_round_trip():
    """The process-wide default drives resolve_refinement(None) and new
    stores; setting it returns the previous value for restoration."""
    assert get_default_refinement() == "auto"
    assert resolve_refinement(None) == ("vector" if HAVE_NUMPY else "scalar")
    previous = set_default_refinement("scalar")
    try:
        assert previous == "auto"
        assert resolve_refinement(None) == "scalar"
        assert CoordStore(2).refinement == "scalar"
    finally:
        set_default_refinement(previous)
    assert get_default_refinement() == "auto"
    with pytest.raises(ValueError, match="unknown refinement mode"):
        set_default_refinement("simd")
    with pytest.raises(ValueError, match="unknown refinement mode"):
        resolve_refinement("simd")


@pytest.mark.parametrize("refinement", ("scalar", "vector"))
def test_refine_rejects_mismatched_probe(refinement):
    store = CoordStore(3, refinement=refinement)
    objs = [StreamObject(i, (float(i), 0.0, 0.0)) for i in range(4)]
    for obj in objs:
        store.add(obj)
    with pytest.raises(ValueError, match="dimensions"):
        store.refine(objs, (0.0, 0.0), 1.0)
    with pytest.raises(ValueError, match="dimensions"):
        store.refine_many(store.batch(objs), [(0.0, 0.0)], 1.0)
    with pytest.raises(ValueError, match="dimensions"):
        store.within_radius((0.0, 0.0, 0.0, 0.0), 1.0)


@pytest.mark.parametrize("refinement", ("scalar", "vector"))
def test_compaction_preserves_row_order_and_answers(refinement):
    store = CoordStore(2, refinement=refinement)
    objs = [StreamObject(i, (float(i), 0.0)) for i in range(200)]
    for obj in objs:
        store.add(obj)
    for obj in objs[::2]:  # heavy churn forces compaction
        store.remove(obj.oid)
    assert len(store) == 100
    survivors = [o.oid for o in store.objects()]
    assert survivors == [o.oid for o in objs[1::2]]
    got = store.within_radius((0.0, 0.0), 400.0)
    assert [o.oid for o in got] == [i for i in range(1, 21, 2)]
