"""Integration tests for the Pattern Extractor and the full framework."""

import pytest

from repro.archive.archiver import FeatureFilterPolicy
from repro.config import ContinuousClusteringQuery
from repro.data.synthetic import DriftingBlobStream
from repro.matching.metric import DistanceMetricSpec
from repro.streams.windows import CountBasedWindowSpec
from repro.system.extractor import PatternExtractor
from repro.system.framework import StreamPatternMiningSystem


def _stream(n=3000, seed=1):
    return DriftingBlobStream(
        n_blobs=3, noise_fraction=0.25, seed=seed
    ).objects(n)


def test_extractor_produces_windows():
    extractor = PatternExtractor(0.3, 5, 2, CountBasedWindowSpec(500, 100))
    outputs = list(extractor.run(_stream()))
    assert len(outputs) == 30
    assert [o.window_index for o in outputs] == list(range(30))
    assert any(o.clusters for o in outputs)


def test_extractor_max_windows():
    extractor = PatternExtractor(0.3, 5, 2, CountBasedWindowSpec(500, 100))
    outputs = list(extractor.run(_stream(), max_windows=5))
    assert len(outputs) == 5


def test_full_and_summarized_representations_aligned():
    extractor = PatternExtractor(0.3, 5, 2, CountBasedWindowSpec(500, 100))
    for output in extractor.run(_stream()):
        assert len(output.clusters) == len(output.summaries)
        for cluster, sgs in zip(output.clusters, output.summaries):
            assert sgs.population == cluster.size
            for obj in cluster.members:
                assert sgs.covers_point(obj.coords)


def test_system_archives_while_running():
    system = StreamPatternMiningSystem(
        0.3, 5, 2, CountBasedWindowSpec(500, 100)
    )
    outputs = system.run(_stream())
    expected = sum(len(o.clusters) for o in outputs)
    assert system.archived_count == expected
    assert system.archived_count > 0


def test_system_match_roundtrip():
    system = StreamPatternMiningSystem(
        0.3, 5, 2, CountBasedWindowSpec(500, 100)
    )
    outputs = system.run(_stream())
    query = next(
        sgs for output in reversed(outputs) for sgs in output.summaries
    )
    results, stats = system.match(query, threshold=0.3, top_k=5)
    assert results
    assert results[0].distance == pytest.approx(0.0, abs=1e-9)
    assert stats.archive_size == system.archived_count


def test_system_with_archive_policy():
    system = StreamPatternMiningSystem(
        0.3,
        5,
        2,
        CountBasedWindowSpec(500, 100),
        archive_policy=FeatureFilterPolicy(min_population=40),
    )
    system.run(_stream())
    for pattern in system.pattern_base.all_patterns():
        assert pattern.full_size >= 40


def test_system_with_coarse_archive_level():
    fine = StreamPatternMiningSystem(0.3, 5, 2, CountBasedWindowSpec(500, 100))
    coarse = StreamPatternMiningSystem(
        0.3, 5, 2, CountBasedWindowSpec(500, 100), archive_level=1
    )
    fine.run(_stream(seed=4))
    coarse.run(_stream(seed=4))
    assert coarse.pattern_base.summary_bytes() < fine.pattern_base.summary_bytes()


def test_system_position_sensitive_metric():
    system = StreamPatternMiningSystem(
        0.3,
        5,
        2,
        CountBasedWindowSpec(500, 100),
        metric=DistanceMetricSpec(position_sensitive=True),
    )
    outputs = system.run(_stream(seed=5))
    query = outputs[-1].summaries[0]
    results, _ = system.match(query, threshold=0.4)
    for result in results:
        assert result.pattern.mbr.intersects(query.mbr())


def test_system_with_replicated_match_engine():
    """``match_replicas`` threads from the declarative query through
    the framework: archival fans out to every process-worker replica
    and match answers equal the plain single-copy system's."""
    from repro.retrieval.shards import ShardedMatchEngine

    query = ContinuousClusteringQuery(
        0.3, 5, 2, CountBasedWindowSpec(500, 100),
        match_shards=2, match_replicas=2,
    )
    plain = StreamPatternMiningSystem(0.3, 5, 2, CountBasedWindowSpec(500, 100))
    plain.run(_stream(seed=7, n=1500))
    with StreamPatternMiningSystem.from_query(query) as system:
        assert isinstance(system.engine, ShardedMatchEngine)
        assert system.engine.mode == "process"
        assert system.engine.executor.replica_count == 2
        system.run(_stream(seed=7, n=1500))
        assert system.archived_count == plain.archived_count
        probe = next(
            p.sgs for p in sorted(
                plain.pattern_base.all_patterns(),
                key=lambda p: p.pattern_id,
            )
        )
        results, _ = system.match(probe, threshold=0.3, top_k=5)
        expected, _ = plain.match(probe, threshold=0.3, top_k=5)
        assert [
            (r.pattern.pattern_id, r.distance) for r in results
        ] == [(r.pattern.pattern_id, r.distance) for r in expected]


def test_query_spec_constructors():
    query = ContinuousClusteringQuery.count_based(0.3, 5, 2, 500, 100)
    assert query.window.windows_per_object == 5
    query_t = ContinuousClusteringQuery.time_based(0.3, 5, 2, 60.0, 10.0)
    assert query_t.window.windows_per_object == 6
    with pytest.raises(ValueError):
        ContinuousClusteringQuery.count_based(-1.0, 5, 2, 500, 100)
    with pytest.raises(ValueError):
        ContinuousClusteringQuery.count_based(0.3, 0, 2, 500, 100)
    # Replication knobs: positive, and incompatible with the
    # single-copy serial/thread modes.
    with pytest.raises(ValueError):
        ContinuousClusteringQuery(
            0.3, 5, 2, CountBasedWindowSpec(500, 100), match_replicas=0
        )
    with pytest.raises(ValueError):
        ContinuousClusteringQuery(
            0.3, 5, 2, CountBasedWindowSpec(500, 100),
            match_mode="thread", match_replicas=2,
        )
    replicated = ContinuousClusteringQuery(
        0.3, 5, 2, CountBasedWindowSpec(500, 100), match_replicas=2
    )
    assert replicated.match_replicas == 2


def test_matching_query_spec_validation():
    from repro.config import ClusterMatchingQuery

    query = ClusterMatchingQuery(sim_threshold=0.3, top_k=3)
    assert query.metric is not None
    with pytest.raises(ValueError):
        ClusterMatchingQuery(sim_threshold=1.5)
    with pytest.raises(ValueError):
        ClusterMatchingQuery(sim_threshold=0.3, top_k=0)
