"""The inverted cell-signature index and its certified coarse screen.

Three nets:

* the **conservativeness property** (Hypothesis): the screen's
  certified distance floor never exceeds the coarse distance the lazy
  ladder screen computes — so the inverted screen can never drop a
  pattern the ladder screen would keep, for *any* SGS pair, any rung,
  any margin;
* **oracle equivalence**: an engine serving through the inverted index
  returns exactly what the ladder engine and the exhaustive scan
  return, across seeds, thresholds, and coarse levels — including the
  planner's ``inverted`` entry replacing the full scan;
* **maintenance**: postings and signatures track archival and eviction
  exactly (the regression for the stale-cache resurrection bug lives
  in ``test_archive_maintenance.py``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import clustered_points, stream_batches
from tests.test_retrieval_engine import _as_pairs, exhaustive_scan
from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import CSGS
from repro.core.features import ClusterFeatures
from repro.core.multires import coarsen_sgs
from repro.core.sgs import SGS
from repro.matching.alignment import anytime_alignment_search
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval import (
    ENTRY_INVERTED,
    ENTRY_SCAN,
    InvertedCellIndex,
    MatchEngine,
    MatchQuery,
    plan_query,
)
from repro.retrieval.inverted import (
    InvertedScreen,
    axis_histograms,
    canonical_cell_signature,
    canonical_origin,
    distance_floor,
    max_shift_correlation,
)


def _populated_base(seed=1, inverted_levels=None, dims=2):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0), (4.0, 8.0)],
        per_cluster=250,
        noise=120,
        seed=seed,
    )
    base = PatternBase(inverted_levels=inverted_levels)
    archiver = PatternArchiver(base)
    csgs = CSGS(0.35, 5, dims)
    last = None
    for batch in stream_batches(points, 300, 100):
        last = csgs.process_batch(batch)
        archiver.archive_output(last)
    return base, last


# ----------------------------------------------------------------------
# Signature construction
# ----------------------------------------------------------------------


def _sgs_from_locations(locations, side=1.0, window=0):
    cells = [
        SkeletalGridCell(
            loc, side, 1 + i % 3, CellStatus.CORE, frozenset()
        )
        for i, loc in enumerate(sorted(set(locations)))
    ]
    return SGS(cells, side, window_index=window)


def test_signature_matches_engine_ladder_cells():
    """The floor-division shortcut must describe exactly the cell set
    of the engine's canonical ladder rung (iterated coarsening)."""
    base, _ = _populated_base(seed=2)
    for pattern in base.all_patterns():
        for level in (1, 2):
            ladder = canonical_origin(pattern.sgs)
            for _ in range(level):
                ladder = coarsen_sgs(ladder, 3)
            assert canonical_cell_signature(
                pattern.sgs, level, 3
            ) == frozenset(ladder.cells), (
                f"signature diverged from ladder at level {level}"
            )


def test_signature_translation_invariant():
    sgs = _sgs_from_locations([(0, 0), (1, 2), (4, 1), (3, 3)])
    shifted = _sgs_from_locations(
        [(7, -5), (8, -3), (11, -4), (10, -2)]
    )
    for level in (1, 2):
        assert canonical_cell_signature(
            sgs, level, 3
        ) == canonical_cell_signature(shifted, level, 3)


def test_axis_histograms_and_correlation():
    hist = axis_histograms([(0, 0), (0, 1), (2, 0)], 2)
    assert hist == ((2, 0, 1), (2, 1))
    assert max_shift_correlation((2, 0, 1), (2, 0, 1)) == 3
    # A shifted copy correlates fully at the matching offset.
    assert max_shift_correlation((2, 0, 1), (0, 2, 0, 1)) == 3
    assert max_shift_correlation((1,), ()) == 0


def test_distance_floor_matches_counting_argument():
    # Disjoint sets: every cell unmatched, distance exactly 1.
    assert distance_floor(4, 6, 0) == 1.0
    # Identical sets under full overlap: floor 0.
    assert distance_floor(5, 5, 5) == 0.0
    # a=4, b=6, m=3: (4+6-6)/(4+6-3) = 4/7.
    assert distance_floor(4, 6, 3) == pytest.approx(4.0 / 7.0)


# ----------------------------------------------------------------------
# The conservativeness property (Hypothesis)
# ----------------------------------------------------------------------

_coord = st.tuples(
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=-6, max_value=6),
)
_cell_sets = st.lists(_coord, min_size=1, max_size=24, unique=True)


@settings(max_examples=120, deadline=None)
@given(_cell_sets, _cell_sets, st.integers(min_value=1, max_value=2))
def test_certified_floor_never_exceeds_ladder_distance(
    locs_a, locs_b, level
):
    """The screen's reject bound is a true lower bound on the coarse
    distance the ladder screen computes (any alignment the anytime
    search returns) — hence the inverted screen never drops a pattern
    the ladder screen would keep."""
    sgs_a = _sgs_from_locations(locs_a)
    sgs_b = _sgs_from_locations(locs_b)
    spec = DistanceMetricSpec()
    coarse_a = canonical_origin(sgs_a)
    coarse_b = canonical_origin(sgs_b)
    for _ in range(level):
        coarse_a = coarsen_sgs(coarse_a, 3)
        coarse_b = coarsen_sgs(coarse_b, 3)
    ladder_distance = anytime_alignment_search(
        coarse_a, coarse_b, spec, max_expansions=16
    ).distance

    index = InvertedCellIndex(levels=(level,), factor=3)
    index.add(7, sgs_b)
    screen = InvertedScreen(index, level, sgs_a, tau=0.0, guard=0)
    signature = index.signature(7, level)
    bound = screen.query.overlap_bound(signature)
    floor = distance_floor(screen.query.size, signature.size, bound)
    assert floor <= ladder_distance + 1e-9, (
        f"certified floor {floor} exceeds ladder distance "
        f"{ladder_distance}"
    )
    # And therefore: whenever the ladder keeps (distance <= tau), the
    # screen keeps too, at every tau.
    for tau in (0.0, 0.2, 0.45, 0.7):
        probe = InvertedScreen(index, level, sgs_a, tau=tau, guard=0)
        if ladder_distance <= tau:
            assert probe.admits(7)


# ----------------------------------------------------------------------
# Index maintenance
# ----------------------------------------------------------------------


def test_index_tracks_add_and_remove():
    base, _ = _populated_base(seed=3, inverted_levels=(1,))
    index = base.inverted_index()
    assert len(index) == len(base)
    total_postings = index.stats["postings"]
    assert total_postings > 0
    victim = next(iter(base.all_patterns())).pattern_id
    assert victim in index
    assert base.remove(victim)
    assert victim not in index
    assert len(index) == len(base)
    assert index.stats["postings"] < total_postings
    # No posting list anywhere still names the victim.
    for level in index.levels:
        for pattern in base.all_patterns():
            counts = index.overlap_counts(
                index.signature(pattern.pattern_id, level).cells, level
            )
            assert victim not in counts


def test_enable_inverted_rebuilds_for_existing_patterns():
    base, _ = _populated_base(seed=4)
    assert base.inverted_index() is None
    index = base.enable_inverted((1, 2))
    assert base.inverted_index() is index
    assert len(index) == len(base)
    fresh = InvertedCellIndex((1, 2))
    for pattern in base.all_patterns():
        fresh.add(pattern.pattern_id, pattern.sgs)
        for level in (1, 2):
            assert index.signature(
                pattern.pattern_id, level
            ).cells == fresh.signature(pattern.pattern_id, level).cells


def test_index_validation():
    with pytest.raises(ValueError):
        InvertedCellIndex(())
    with pytest.raises(ValueError):
        InvertedCellIndex((0,))
    with pytest.raises(ValueError):
        InvertedCellIndex((1,), factor=1)
    # Levels and factor persist as single bytes (format v3): reject
    # out-of-range values up front, not at dump time.
    with pytest.raises(ValueError):
        InvertedCellIndex((300,))
    with pytest.raises(ValueError):
        InvertedCellIndex((1,), factor=300)
    index = InvertedCellIndex((1,))
    sgs = _sgs_from_locations([(0, 0), (3, 3)])
    index.add(1, sgs)
    with pytest.raises(ValueError):
        index.add(1, sgs)
    assert index.remove(1)
    assert not index.remove(1)


# ----------------------------------------------------------------------
# Oracle equivalence of the inverted-screened engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("coarse_level", (1, 2))
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_inverted_engine_equals_exhaustive_scan(seed, coarse_level):
    base, last = _populated_base(seed=seed, inverted_levels=(1, 2))
    engine = MatchEngine(base)
    for query_sgs in last.summaries[:2]:
        for threshold in (0.15, 0.3, 0.45):
            query = MatchQuery(
                sgs=query_sgs,
                threshold=threshold,
                coarse_level=coarse_level,
            )
            results, stats = engine.match(query)
            assert _as_pairs(results) == exhaustive_scan(base, query)
            if stats.entry != "rtree":
                assert stats.coarse_screen == "inverted"


def test_inverted_and_ladder_engines_agree():
    base, last = _populated_base(seed=5, inverted_levels=(1,))
    inverted_engine = MatchEngine(base)
    ladder_engine = MatchEngine(base, use_inverted=False)
    for threshold in (0.2, 0.5):
        query = MatchQuery(
            sgs=last.summaries[0], threshold=threshold, coarse_level=1
        )
        inv_results, inv_stats = inverted_engine.match(query)
        lad_results, lad_stats = ladder_engine.match(query)
        assert _as_pairs(inv_results) == _as_pairs(lad_results)
        assert inv_stats.coarse_screen in ("inverted", "")
        assert lad_stats.coarse_screen in ("ladder", "")
        # Conservativeness: everything the ladder refined, the inverted
        # screen refined too.
        assert inv_stats.refined >= lad_stats.refined


def test_inverted_match_many_equals_sequential():
    base, last = _populated_base(seed=6, inverted_levels=(1,))
    engine = MatchEngine(base)
    queries = [
        MatchQuery(sgs=sgs, threshold=threshold, coarse_level=1)
        for sgs in last.summaries[:3]
        for threshold in (0.3, 0.6)
    ]
    batched = engine.match_many(queries)
    for query, (results, stats) in zip(queries, batched):
        solo_results, _ = engine.match(query)
        assert _as_pairs(results) == _as_pairs(solo_results)
        assert stats.plan["shared_gather"] is True


# ----------------------------------------------------------------------
# The planner's inverted entry
# ----------------------------------------------------------------------


def _plan_for(base, query, inverted):
    features = ClusterFeatures.from_sgs(query.sgs)
    return plan_query(
        base, query, features, query.sgs.mbr(), inverted=inverted
    )


def test_planner_prefers_inverted_over_powerless_scan():
    base, last = _populated_base(seed=1, inverted_levels=(1,))
    query = MatchQuery(
        sgs=last.summaries[0], threshold=1.0, coarse_level=1
    )
    assert _plan_for(base, query, inverted=True).entry == ENTRY_INVERTED
    assert _plan_for(base, query, inverted=False).entry == ENTRY_SCAN


def test_inverted_entry_never_changes_answers():
    base, last = _populated_base(seed=2, inverted_levels=(1,))
    engine = MatchEngine(base)
    plain = MatchEngine(base, use_inverted=False)
    query = MatchQuery(
        sgs=last.summaries[0], threshold=0.9, coarse_level=1
    )
    results, stats = engine.match(query)
    plain_results, plain_stats = plain.match(query)
    assert stats.entry == ENTRY_INVERTED
    assert plain_stats.entry == ENTRY_SCAN
    assert _as_pairs(results) == _as_pairs(plain_results)
    assert stats.gathered <= plain_stats.gathered


def test_engine_stands_down_on_mismatched_factor():
    """An index built at a different compression rate describes
    different coarse cells; the engine must fall back to the ladder."""
    base, last = _populated_base(seed=3)
    base.enable_inverted((1,), factor=2)
    engine = MatchEngine(base)  # ladder_factor=3
    query = MatchQuery(sgs=last.summaries[0], threshold=0.4, coarse_level=1)
    results, stats = engine.match(query)
    assert stats.coarse_screen in ("ladder", "")
    assert _as_pairs(results) == exhaustive_scan(base, query)


def test_position_sensitive_keeps_ladder_screen():
    base, last = _populated_base(seed=4, inverted_levels=(1,))
    spec = DistanceMetricSpec(position_sensitive=True)
    engine = MatchEngine(base, spec)
    query = MatchQuery(
        sgs=last.summaries[0], threshold=0.4, metric=spec, coarse_level=1
    )
    results, stats = engine.match(query)
    assert stats.coarse_screen in ("ladder", "")
    assert _as_pairs(results) == exhaustive_scan(base, query)


def test_screen_defensive_paths():
    """Unindexed candidates and stale posting ids stand down or drop
    out without ever faking a match."""
    base, last = _populated_base(seed=7, inverted_levels=(1,))
    index = base.inverted_index()
    screen = InvertedScreen(index, 1, last.summaries[0], tau=0.0, guard=0)
    # A pattern the index never saw is admitted conservatively.
    assert screen.admits(10**9)
    # A stale posting id (removed from the base but manually left in
    # the index) is dropped by survivors() — never resurrected.
    victim = next(iter(base.all_patterns()))
    signatures = {
        level: index.signature(victim.pattern_id, level).cells
        for level in index.levels
    }
    base.remove(victim.pattern_id)
    index.restore_signatures(
        victim.pattern_id, signatures, victim.sgs.dimensions
    )
    fresh = InvertedScreen(index, 1, last.summaries[0], tau=1.0, guard=0)
    survivors = fresh.survivors(base)
    assert victim.pattern_id not in {p.pattern_id for p in survivors}
    with pytest.raises(ValueError):
        index.restore_signatures(victim.pattern_id, signatures, 2)
    with pytest.raises(ValueError):
        index.restore_signatures(10**6, {}, 2)


def test_empty_histograms():
    assert axis_histograms([], 2) == ((), ())


def test_attach_inverted_validates_contents():
    base, _ = _populated_base(seed=8)
    index = InvertedCellIndex((1,))
    with pytest.raises(ValueError):
        base.attach_inverted(index)
