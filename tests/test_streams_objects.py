"""Unit tests for stream objects."""

import pytest

from repro.streams.objects import StreamObject


def test_coords_are_tuples():
    obj = StreamObject(1, [1.0, 2.0])
    assert obj.coords == (1.0, 2.0)
    assert isinstance(obj.coords, tuple)


def test_default_timestamp_is_oid():
    assert StreamObject(7, (0.0,)).timestamp == 7.0
    assert StreamObject(7, (0.0,), timestamp=3.5).timestamp == 3.5


def test_dimensions():
    assert StreamObject(0, (1.0, 2.0, 3.0)).dimensions == 3


def test_window_membership_defaults_unset():
    obj = StreamObject(0, (0.0,))
    assert obj.first_window == -1 and obj.last_window == -1


def test_lifespan_and_alive():
    obj = StreamObject(0, (0.0,))
    obj.first_window = 3
    obj.last_window = 7
    assert obj.lifespan_from(3) == 5
    assert obj.lifespan_from(7) == 1
    assert obj.lifespan_from(8) == 0
    assert obj.alive_in(3) and obj.alive_in(7)
    assert not obj.alive_in(2) and not obj.alive_in(8)


def test_payload_carried():
    payload = {"speed": 42}
    assert StreamObject(0, (0.0,), payload=payload).payload is payload


def test_repr_mentions_oid():
    assert "oid=5" in repr(StreamObject(5, (0.0,)))
