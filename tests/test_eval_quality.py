"""Unit tests for the clustering-agreement metrics."""

import pytest

from tests.helpers import clustered_points, make_objects
from repro.clustering.dbscan import dbscan
from repro.eval.quality import (
    best_match_overlap,
    grouping_of_clusters,
    pairwise_agreement,
    purity,
)


def _g(*groups):
    return [frozenset(group) for group in groups]


def test_identical_groupings_score_one():
    a = _g({1, 2, 3}, {4, 5})
    assert pairwise_agreement(a, a) == 1.0
    assert best_match_overlap(a, a) == 1.0
    assert purity(a, a) == 1.0


def test_disjoint_pairs_score_zero_agreement():
    a = _g({1, 2}, {3, 4})
    b = _g({1, 3}, {2, 4})
    assert pairwise_agreement(a, b) == 0.0


def test_merge_detected_as_partial_agreement():
    split = _g({1, 2, 3}, {4, 5, 6})
    merged = _g({1, 2, 3, 4, 5, 6})
    agreement = pairwise_agreement(split, merged)
    assert 0.0 < agreement < 1.0
    # Purity of the split side against the merged side is perfect.
    assert purity(split, merged) == 1.0
    assert purity(merged, split) == pytest.approx(0.5)


def test_best_match_overlap_partial():
    a = _g({1, 2, 3, 4})
    b = _g({1, 2, 3, 9})
    assert best_match_overlap(a, b) == pytest.approx(3 / 5)


def test_empty_groupings():
    assert pairwise_agreement([], []) == 1.0
    assert best_match_overlap([], []) == 1.0
    assert best_match_overlap(_g({1}), []) == 0.0
    assert purity([], _g({1})) == 1.0


def test_ignores_objects_outside_both():
    a = _g({1, 2, 7})
    b = _g({1, 2, 9})
    # Pair (1,2) is shared; pairs with 7 / 9 fall outside the joint
    # universe and must not count.
    assert pairwise_agreement(a, b) == 1.0


def test_symmetry_of_pairwise_and_best_match():
    a = _g({1, 2, 3}, {4, 5})
    b = _g({1, 2}, {3, 4, 5})
    assert pairwise_agreement(a, b) == pairwise_agreement(b, a)
    assert best_match_overlap(a, b) == pytest.approx(
        best_match_overlap(b, a)
    )


def test_adapter_and_cross_parameter_use():
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0)], per_cluster=120, noise=60, seed=1
    )
    objects = make_objects(points)
    loose = grouping_of_clusters(dbscan(objects, 0.45, 4))
    strict = grouping_of_clusters(dbscan(objects, 0.35, 6))
    # Stricter parameters produce sub-clusters of the loose ones.
    assert purity(strict, loose) > 0.9
    assert 0.0 < pairwise_agreement(loose, strict) <= 1.0
