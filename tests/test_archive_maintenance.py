"""Unit tests for archive retention and deduplication."""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.archive.maintenance import RetentionManager
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS
from repro.eval.memory import sgs_bytes


def _summaries(seed=1):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0)], per_cluster=250, noise=100, seed=seed
    )
    csgs = CSGS(0.35, 5, 2)
    result = []
    for batch in stream_batches(points, 300, 100):
        output = csgs.process_batch(batch)
        for cluster, sgs in zip(output.clusters, output.summaries):
            result.append((sgs, cluster.size))
    return result


def test_capacity_enforced_evicts_oldest():
    base = PatternBase()
    manager = RetentionManager(base, max_patterns=5)
    for sgs, size in _summaries():
        manager.add(sgs, size)
    assert len(base) == 5
    assert manager.evicted > 0
    windows = [p.window_index for p in base.all_patterns()]
    all_windows = [sgs.window_index for sgs, _ in _summaries()]
    # Only the newest windows survive.
    assert min(windows) >= sorted(set(all_windows))[-4]


def test_byte_budget_enforced():
    base = PatternBase()
    summaries = _summaries(seed=2)
    budget = sum(sgs_bytes(sgs) for sgs, _ in summaries[:4])
    manager = RetentionManager(base, max_bytes=budget)
    for sgs, size in summaries:
        manager.add(sgs, size)
    assert base.summary_bytes() <= budget


def test_dedup_drops_near_duplicates():
    base = PatternBase()
    manager = RetentionManager(base, dedup_threshold=0.05)
    summaries = _summaries(seed=3)
    sgs, size = summaries[0]
    first = manager.add(sgs, size)
    assert first is not None
    again = manager.add(sgs, size)
    assert again is None
    assert manager.deduplicated == 1
    assert len(base) == 1


def test_dedup_respects_window_gap():
    base = PatternBase()
    manager = RetentionManager(
        base, dedup_threshold=0.05, dedup_window_gap=1
    )
    summaries = _summaries(seed=4)
    # The same cluster persists across windows; far-apart windows are
    # re-admitted even when the summary barely changed.
    admitted = 0
    for sgs, size in summaries:
        if manager.add(sgs, size) is not None:
            admitted += 1
    assert 0 < admitted < len(summaries)


def test_indices_consistent_after_eviction():
    base = PatternBase()
    manager = RetentionManager(base, max_patterns=3)
    summaries = _summaries(seed=5)
    for sgs, size in summaries:
        manager.add(sgs, size)
    # Every surviving pattern is still reachable through both indices.
    for pattern in base.all_patterns():
        assert pattern in base.overlapping(pattern.mbr)
        features = pattern.features.as_tuple()
        lows = tuple(f - 1e-9 for f in features)
        highs = tuple(f + 1e-9 for f in features)
        assert pattern in base.in_feature_ranges(lows, highs)


def test_validation():
    with pytest.raises(ValueError):
        RetentionManager(PatternBase(), max_patterns=0)
    with pytest.raises(ValueError):
        RetentionManager(PatternBase(), max_bytes=0)
    with pytest.raises(ValueError):
        RetentionManager(PatternBase(), dedup_threshold=1.5)


def test_eviction_invalidates_engine_caches():
    """Regression: maintenance eviction must flow through to matching
    engines — the evicted pattern's cached ladders and posting lists
    are dropped immediately, so no stale cache can resurrect it.
    (Before the removal-listener seam, a long-lived engine kept the
    dead pattern's ladders until an amortized sweep much later.)"""
    from repro.retrieval import MatchEngine, MatchQuery

    base = PatternBase(inverted_levels=(1,))
    manager = RetentionManager(base, max_patterns=4)
    summaries = _summaries(seed=6)
    engine = MatchEngine(base, use_inverted=False)
    inverted_engine = MatchEngine(base)
    for sgs, size in summaries[:6]:
        manager.add(sgs, size)
    # Build ladder caches (both engines) over the current archive.
    query = MatchQuery(sgs=summaries[0][0], threshold=0.9, coarse_level=1)
    engine.match(query)
    cached_ids = {key[0] for key in engine._ladders}
    assert cached_ids, "test needs cached ladders to evict from"
    # Admit more patterns: the retention manager evicts the oldest.
    for sgs, size in summaries[6:]:
        manager.add(sgs, size)
    assert manager.evicted > 0
    evicted_ids = cached_ids - {p.pattern_id for p in base.all_patterns()}
    assert evicted_ids, "eviction must have hit a cached pattern"
    index = base.inverted_index()
    for pattern_id in evicted_ids:
        # The ladder cache forgot the pattern the moment it left...
        assert all(key[0] != pattern_id for key in engine._ladders), (
            "stale ladder survived eviction"
        )
        # ...and so did the posting lists.
        assert pattern_id not in index
    # No query — through either screen — can resurrect an evicted id.
    live = {p.pattern_id for p in base.all_patterns()}
    for probe in (engine, inverted_engine):
        results, _ = probe.match(query)
        assert {r.pattern.pattern_id for r in results} <= live
