"""Unit tests for the baseline matchers (CRD, RSP subset match, SkPS GED)."""

import pytest

from tests.helpers import clustered_points, make_objects
from repro.clustering.dbscan import dbscan
from repro.matching.crd_match import crd_distance
from repro.matching.graph_edit import graph_edit_distance
from repro.matching.subset_match import subset_match_distance
from repro.summaries.crd import CRDSummarizer
from repro.summaries.rsp import RSP, RSPSummarizer
from repro.summaries.skps import SkPS, SkPSSummarizer


def _cluster(center, n=80, seed=1, std=0.2):
    points = clustered_points([center], per_cluster=n, seed=seed, std=std)
    clusters = dbscan(make_objects(points), 0.4, 4)
    return max(clusters, key=lambda c: c.size)


# ---------------------------------------------------------------------------
# CRD
# ---------------------------------------------------------------------------


def test_crd_self_distance_zero():
    crd = CRDSummarizer().summarize(_cluster((2.0, 2.0)))
    assert crd_distance(crd, crd) == 0.0


def test_crd_translation_invariant_when_position_insensitive():
    a = CRDSummarizer().summarize(_cluster((2.0, 2.0), seed=5))
    b = CRDSummarizer().summarize(_cluster((50.0, 50.0), seed=5))
    assert crd_distance(a, b, position_sensitive=False) < 0.1


def test_crd_position_sensitive_disjoint_max():
    a = CRDSummarizer().summarize(_cluster((2.0, 2.0), seed=5))
    b = CRDSummarizer().summarize(_cluster((50.0, 50.0), seed=5))
    assert crd_distance(a, b, position_sensitive=True) == 1.0


def test_crd_size_difference_matters():
    small = CRDSummarizer().summarize(_cluster((2.0, 2.0), n=40, std=0.1))
    large = CRDSummarizer().summarize(_cluster((2.0, 2.0), n=200, std=0.5))
    assert crd_distance(small, large) > 0.1


def test_crd_dimension_mismatch():
    from repro.summaries.crd import CRD

    a = CRD((0.0, 0.0), 1.0, 1.0, 10)
    b = CRD((0.0, 0.0, 0.0), 1.0, 1.0, 10)
    with pytest.raises(ValueError):
        crd_distance(a, b)


# ---------------------------------------------------------------------------
# RSP subset match
# ---------------------------------------------------------------------------


def test_rsp_self_distance_zero():
    rsp = RSPSummarizer(rate=0.2, seed=1).summarize(_cluster((2.0, 2.0)))
    assert subset_match_distance(rsp, rsp) == 0.0


def test_rsp_translation_invariant():
    base = RSPSummarizer(rate=0.3, seed=2).summarize(_cluster((2.0, 2.0)))
    shifted = RSP(
        tuple((x + 30.0, y - 12.0) for x, y in base.points),
        base.population,
    )
    assert subset_match_distance(base, shifted) == pytest.approx(0.0, abs=1e-9)
    assert subset_match_distance(
        base, shifted, position_sensitive=True
    ) > 0.5


def test_rsp_different_shapes_positive_distance():
    a = RSPSummarizer(rate=0.3, seed=3).summarize(
        _cluster((2.0, 2.0), std=0.1)
    )
    b = RSPSummarizer(rate=0.3, seed=3).summarize(
        _cluster((2.0, 2.0), std=0.6, seed=9)
    )
    assert subset_match_distance(a, b) > 0.0


def test_rsp_bounded():
    a = RSPSummarizer(rate=0.3, seed=4).summarize(_cluster((2.0, 2.0)))
    b = RSPSummarizer(rate=0.3, seed=4).summarize(_cluster((9.0, 9.0), seed=8))
    assert 0.0 <= subset_match_distance(a, b) <= 1.0


def test_rsp_empty_rejected():
    good = RSPSummarizer(rate=0.3, seed=5).summarize(_cluster((2.0, 2.0)))
    with pytest.raises(ValueError):
        subset_match_distance(good, RSP((), 0))


# ---------------------------------------------------------------------------
# SkPS graph edit distance
# ---------------------------------------------------------------------------


def test_ged_self_distance_zero():
    skps = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0)))
    assert graph_edit_distance(skps, skps) == pytest.approx(0.0, abs=1e-9)


def test_ged_translation_invariant():
    base = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0)))
    shifted = SkPS(
        tuple((x + 20.0, y + 20.0) for x, y in base.points),
        base.edges,
        base.population,
    )
    assert graph_edit_distance(base, shifted) == pytest.approx(0.0, abs=1e-9)


def test_ged_detects_structure_difference():
    a = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0), n=60, std=0.15))
    b = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0), n=200, std=0.6, seed=4))
    assert graph_edit_distance(a, b) > 0.05


def test_ged_bounded():
    a = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0), seed=6))
    b = SkPSSummarizer(0.4).summarize(_cluster((5.0, 5.0), n=30, seed=7))
    assert 0.0 <= graph_edit_distance(a, b) <= 1.0


def test_ged_beam_width_improves_or_equals():
    a = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0), n=60, seed=8))
    b = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0), n=70, std=0.3, seed=9))
    narrow = graph_edit_distance(a, b, beam_width=1)
    wide = graph_edit_distance(a, b, beam_width=16)
    assert wide <= narrow + 1e-9


def test_ged_empty_rejected():
    good = SkPSSummarizer(0.4).summarize(_cluster((2.0, 2.0)))
    with pytest.raises(ValueError):
        graph_edit_distance(good, SkPS((), frozenset(), 0))
