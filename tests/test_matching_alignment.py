"""Unit tests for the anytime alignment search."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.sgs import SGS
from repro.matching.alignment import (
    anytime_alignment_search,
    exhaustive_alignment_search,
)
from repro.matching.metric import DistanceMetricSpec


def _sgs(locations, populations=None, side=0.5):
    cells = [
        SkeletalGridCell(
            loc,
            side,
            populations[i] if populations else 5,
            CellStatus.CORE,
        )
        for i, loc in enumerate(locations)
    ]
    return SGS(cells, side)


L_SHAPE = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


def test_finds_exact_translation():
    a = _sgs(L_SHAPE)
    b = _sgs([(x + 7, y - 3) for x, y in L_SHAPE])
    spec = DistanceMetricSpec()
    result = anytime_alignment_search(a, b, spec)
    assert result.distance == pytest.approx(0.0)
    assert result.alignment == (7, -3)


def test_anytime_never_worse_than_start():
    a = _sgs(L_SHAPE, populations=[1, 2, 3, 4, 5])
    b = _sgs([(x + 2, y) for x, y in L_SHAPE], populations=[5, 4, 3, 2, 1])
    spec = DistanceMetricSpec()
    small = anytime_alignment_search(a, b, spec, max_expansions=1)
    large = anytime_alignment_search(a, b, spec, max_expansions=128)
    assert large.distance <= small.distance + 1e-12


def test_matches_exhaustive_on_small_instances():
    a = _sgs(L_SHAPE)
    b = _sgs([(x + 1, y + 1) for x, y in L_SHAPE[:4]])
    spec = DistanceMetricSpec()
    exact = exhaustive_alignment_search(a, b, spec)
    anytime = anytime_alignment_search(a, b, spec, max_expansions=256)
    assert anytime.distance == pytest.approx(exact.distance, abs=1e-9)


def test_position_sensitive_uses_zero_alignment():
    a = _sgs(L_SHAPE)
    spec = DistanceMetricSpec(position_sensitive=True)
    result = anytime_alignment_search(a, a, spec)
    assert result.alignment == (0, 0)
    assert result.distance == 0.0
    assert result.evaluated == 1


def test_budget_limits_evaluations():
    a = _sgs(L_SHAPE)
    b = _sgs([(x + 4, y + 4) for x, y in L_SHAPE])
    spec = DistanceMetricSpec()
    tight = anytime_alignment_search(a, b, spec, max_expansions=2)
    loose = anytime_alignment_search(a, b, spec, max_expansions=64)
    assert tight.evaluated <= loose.evaluated


def test_exhaustive_explores_overlap_box():
    a = _sgs([(0, 0)])
    b = _sgs([(3, 3)])
    spec = DistanceMetricSpec()
    exact = exhaustive_alignment_search(a, b, spec, margin=0)
    assert exact.distance == pytest.approx(0.0)
    assert exact.alignment == (3, 3)
