"""Unit tests for distance functions."""

import math

import pytest

from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    squared_euclidean_distance,
)


def test_euclidean_simple():
    assert euclidean_distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


def test_squared_matches_euclidean():
    a, b = (1.0, 2.0, 3.0), (4.0, 6.0, 3.0)
    assert squared_euclidean_distance(a, b) == pytest.approx(
        euclidean_distance(a, b) ** 2
    )


def test_zero_distance_to_self():
    p = (1.5, -2.5, 0.0)
    assert euclidean_distance(p, p) == 0.0
    assert chebyshev_distance(p, p) == 0.0


def test_chebyshev_takes_max_axis():
    assert chebyshev_distance((0.0, 0.0), (1.0, -5.0)) == pytest.approx(5.0)


def test_dimension_mismatch_raises():
    with pytest.raises(ValueError):
        euclidean_distance((0.0,), (0.0, 0.0))
    with pytest.raises(ValueError):
        chebyshev_distance((0.0,), (0.0, 0.0))


def test_symmetry():
    a, b = (1.0, 7.0), (-2.0, 3.5)
    assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))


def test_triangle_inequality():
    a, b, c = (0.0, 0.0), (1.0, 1.0), (2.0, 0.0)
    assert euclidean_distance(a, c) <= euclidean_distance(
        a, b
    ) + euclidean_distance(b, c) + 1e-12


def test_one_dimensional():
    assert euclidean_distance((3.0,), (-1.0,)) == pytest.approx(4.0)


def test_high_dimensional():
    a = tuple(0.0 for _ in range(10))
    b = tuple(1.0 for _ in range(10))
    assert euclidean_distance(a, b) == pytest.approx(math.sqrt(10))
