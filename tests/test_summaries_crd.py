"""Unit tests for the CRD summarizer."""

import math

import pytest

from tests.helpers import make_objects
from repro.clustering.cluster import Cluster
from repro.geometry.distance import euclidean_distance
from repro.summaries.crd import CRDSummarizer, _sphere_volume


def _cluster(points):
    objects = make_objects(points)
    return Cluster(0, objects, [])


def test_centroid_and_radius():
    cluster = _cluster([(0.0, 0.0), (2.0, 0.0), (1.0, 1.0), (1.0, -1.0)])
    crd = CRDSummarizer().summarize(cluster)
    assert crd.centroid == pytest.approx((1.0, 0.0))
    assert crd.radius == pytest.approx(1.0)
    assert crd.population == 4


def test_radius_covers_all_members():
    points = [(0.1 * i, 0.05 * i * i) for i in range(20)]
    cluster = _cluster(points)
    crd = CRDSummarizer().summarize(cluster)
    for point in points:
        assert euclidean_distance(point, crd.centroid) <= crd.radius + 1e-9


def test_density_uses_sphere_volume():
    cluster = _cluster([(0.0, 0.0), (2.0, 0.0)])
    crd = CRDSummarizer().summarize(cluster)
    assert crd.density == pytest.approx(2 / (math.pi * 1.0**2))


def test_sphere_volume_known_values():
    assert _sphere_volume(1.0, 2) == pytest.approx(math.pi)
    assert _sphere_volume(1.0, 3) == pytest.approx(4.0 / 3.0 * math.pi)
    assert _sphere_volume(0.0, 2) == 0.0


def test_degenerate_single_point():
    cluster = _cluster([(1.0, 1.0)])
    crd = CRDSummarizer().summarize(cluster)
    assert crd.radius == 0.0
    assert crd.density == pytest.approx(1.0)


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        CRDSummarizer().summarize(Cluster(0, [], []))


def test_summarize_all():
    clusters = [_cluster([(0.0, 0.0)]), _cluster([(5.0, 5.0)])]
    crds = CRDSummarizer().summarize_all(clusters)
    assert len(crds) == 2
    assert crds[1].centroid == (5.0, 5.0)
