"""The golden C-SGS workloads: seeded Figure-7-style runs, serialized.

Each golden fixture pins the *complete* window-by-window C-SGS output —
cluster memberships and SGS summaries — for a small seeded STT-like 4-D
stream (the paper's Figure-7 configurations, scaled down). Every
neighbor-search backend × refinement mode must reproduce each serialized
file byte-for-byte; any change to the refinement kernels, the provider
seam, candidate gathering, or the C-SGS pipeline that alters output in
any way trips it.

Two cases are pinned: ``stt_small`` (θr=0.1, θc=8 — the paper's middle
parameter case, canonical run on the grid backend) and ``stt_auto``
(θr=0.2, θc=5, canonically regenerated through ``--index-backend
auto`` — on this 4-D workload the adaptive provider starts on the k-d
tree, so the fixture also pins that auto's answers are byte-identical
to every concrete backend).

Regenerating (only after an *intentional* output change)::

    PYTHONPATH=src python tests/golden/regen_golden.py

which rewrites the fixture files from each case's canonical run (scalar
refinement) and prints digests to eyeball in review.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.archive.persistence import load_pattern_base, roundtrip_bytes
from repro.core.csgs import CSGS
from repro.data.stt import STTStream
from repro.matching.metric import DistanceMetricSpec
from repro.retrieval import (
    MatchEngine,
    MatchQuery,
    ShardedMatchEngine,
    ShardedPatternBase,
)
from repro.streams.source import ListSource
from repro.streams.windows import CountBasedWindowSpec, Windower

DIMENSIONS = 4


@dataclass(frozen=True)
class GoldenCase:
    """One pinned workload: parameters + canonical producer."""

    name: str
    theta_range: float
    theta_count: int
    win: int
    slide: int
    windows: int
    seed: int
    filename: str
    canonical_backend: str

    @property
    def path(self) -> Path:
        return Path(__file__).with_name(self.filename)

    @property
    def point_count(self) -> int:
        return self.win + (self.windows - 1) * self.slide


CASES: Dict[str, GoldenCase] = {
    case.name: case
    for case in (
        GoldenCase(
            "stt_small", 0.1, 8, 200, 100, 6, 7,
            "csgs_stt_small.json", "grid",
        ),
        GoldenCase(
            "stt_auto", 0.2, 5, 240, 120, 5, 11,
            "csgs_stt_auto.json", "auto",
        ),
    )
}

#: Backward-compatible aliases for the original single case.
_SMALL = CASES["stt_small"]
THETA_RANGE = _SMALL.theta_range
THETA_COUNT = _SMALL.theta_count
WIN = _SMALL.win
SLIDE = _SMALL.slide
WINDOWS = _SMALL.windows
SEED = _SMALL.seed
GOLDEN_PATH = _SMALL.path


def workload_points(case: GoldenCase = _SMALL) -> List[tuple]:
    count = case.point_count
    return list(STTStream(total_records=count, seed=case.seed).points(count))


def run_trace(
    backend: str, refinement: str, case: GoldenCase = _SMALL
) -> List[dict]:
    """Window-by-window C-SGS output in canonical (sorted) form."""
    csgs = CSGS(
        case.theta_range,
        case.theta_count,
        DIMENSIONS,
        backend=backend,
        refinement=refinement,
    )
    spec = CountBasedWindowSpec(win=case.win, slide=case.slide)
    trace = []
    for batch in Windower(spec).batches(ListSource(workload_points(case))):
        output = csgs.process_batch(batch)
        trace.append(
            {
                "window": output.window_index,
                "clusters": [
                    {
                        "id": cluster.cluster_id,
                        "core": sorted(o.oid for o in cluster.core_objects),
                        "edge": sorted(o.oid for o in cluster.edge_objects),
                    }
                    for cluster in output.clusters
                ],
                "summaries": [
                    {
                        "cluster_id": sgs.cluster_id,
                        "cells": sorted(
                            [
                                list(cell.location),
                                cell.status.name,
                                cell.population,
                                sorted(map(list, cell.connections)),
                            ]
                            for cell in sgs.cells.values()
                        ),
                    }
                    for sgs in output.summaries
                ],
            }
        )
    return trace


def render(trace: List[dict]) -> str:
    """Canonical byte representation of a trace (what the file holds)."""
    return json.dumps(trace, sort_keys=True, indent=1) + "\n"


# ----------------------------------------------------------------------
# The golden archive-matching workload (third fixture)
# ----------------------------------------------------------------------

#: Fixture pinning the retrieval engine's answers — threshold and top-k
#: matching, both metric modes, coarse entry on and off — over a
#: *persisted* archive built from the Figure-7 ``stt_small`` workload.
MATCH_PATH = Path(__file__).with_name("archive_matches_stt.json")


def build_match_archive(
    case: GoldenCase = _SMALL, store=None
) -> PatternBase:
    """The Pattern Base of the canonical workload run, round-tripped
    through :mod:`repro.archive.persistence` so the fixture pins the
    persisted-archive serving path, not just the in-memory one.

    ``store`` selects the backend the reloaded base lives on (a spec
    like ``"sqlite:PATH"``): the fixtures must stay byte-identical
    across backends — storage is never semantics."""
    base = PatternBase()
    archiver = PatternArchiver(base)
    csgs = CSGS(case.theta_range, case.theta_count, DIMENSIONS)
    spec = CountBasedWindowSpec(win=case.win, slide=case.slide)
    for batch in Windower(spec).batches(ListSource(workload_points(case))):
        archiver.archive_output(csgs.process_batch(batch))
    return load_pattern_base(
        io.BytesIO(roundtrip_bytes(base)), store=store
    )


def run_match_trace(
    case: GoldenCase = _SMALL, store=None
) -> List[dict]:
    """Canonical (sorted, rounded) results of a fixed query panel."""
    base = build_match_archive(case, store=store)
    engine = MatchEngine(base)
    pattern_ids = sorted(p.pattern_id for p in base.all_patterns())
    query_ids = [pattern_ids[0], pattern_ids[len(pattern_ids) // 2]]
    specs = {
        "feature": DistanceMetricSpec(),
        "positional": DistanceMetricSpec(position_sensitive=True),
    }
    trace: List[dict] = []
    for query_id in query_ids:
        query_sgs = base.get(query_id).sgs
        for mode, spec in sorted(specs.items()):
            for coarse in (0, 1):
                for threshold, top_k in ((0.2, None), (0.5, 5)):
                    query = MatchQuery(
                        sgs=query_sgs,
                        threshold=threshold,
                        top_k=top_k,
                        metric=spec,
                        coarse_level=coarse,
                    )
                    results, stats = engine.match(query)
                    trace.append(
                        {
                            "query": query_id,
                            "mode": mode,
                            "coarse": coarse,
                            "threshold": threshold,
                            "top": top_k,
                            "entry": stats.entry,
                            "gathered": stats.gathered,
                            "refined": stats.refined,
                            "matches": [
                                [r.pattern.pattern_id, round(r.distance, 12)]
                                for r in results
                            ],
                        }
                    )
    # One window-constrained query pins the history-span predicate.
    query = MatchQuery(
        sgs=base.get(query_ids[0]).sgs,
        threshold=0.5,
        window_range=(1, 3),
    )
    results, stats = engine.match(query)
    trace.append(
        {
            "query": query_ids[0],
            "mode": "feature",
            "coarse": 0,
            "threshold": 0.5,
            "top": None,
            "windows": [1, 3],
            "entry": stats.entry,
            "gathered": stats.gathered,
            "refined": stats.refined,
            "matches": [
                [r.pattern.pattern_id, round(r.distance, 12)]
                for r in results
            ],
        }
    )
    return trace


# ----------------------------------------------------------------------
# The golden sharded-serving workload (fourth fixture)
# ----------------------------------------------------------------------

#: Fixture pinning partition-parallel ``match_many`` serving — both
#: partition keys over a *persisted format-v3* archive (inverted
#: cell-signature index at rung 1 maintained during archival) — byte
#: for byte. The per-query matches must equal the single-engine
#: answers of ``archive_matches_stt.json`` exactly: sharding and the
#: inverted screen are pure execution strategy, never semantics.
SHARDED_MATCH_PATH = Path(__file__).with_name(
    "archive_matches_sharded.json"
)

#: Shard counts pinned per partition key (the oracle suite covers the
#: wider {1, 2, 4} × key matrix; the fixture pins bytes for these).
SHARDED_COUNTS = (2, 3)


def build_sharded_v3_archive(
    case: GoldenCase = _SMALL, store=None
) -> PatternBase:
    """The canonical workload archived *with* the inverted index, then
    round-tripped through format v3 — the flat base every pinned shard
    layout partitions. ``store`` selects the reloaded base's backend."""
    base = PatternBase(inverted_levels=(1,))
    archiver = PatternArchiver(base)
    csgs = CSGS(case.theta_range, case.theta_count, DIMENSIONS)
    spec = CountBasedWindowSpec(win=case.win, slide=case.slide)
    for batch in Windower(spec).batches(ListSource(workload_points(case))):
        archiver.archive_output(csgs.process_batch(batch))
    return load_pattern_base(
        io.BytesIO(roundtrip_bytes(base)), store=store
    )


def _sharded_query_panel(base) -> List[dict]:
    """The same (query, mode, coarse, threshold, top) combinations the
    single-engine match fixture pins, as a flat parameter list."""
    pattern_ids = sorted(p.pattern_id for p in base.all_patterns())
    query_ids = [pattern_ids[0], pattern_ids[len(pattern_ids) // 2]]
    specs = {
        "feature": DistanceMetricSpec(),
        "positional": DistanceMetricSpec(position_sensitive=True),
    }
    panel = []
    for query_id in query_ids:
        for mode, spec in sorted(specs.items()):
            for coarse in (0, 1):
                for threshold, top_k in ((0.2, None), (0.5, 5)):
                    panel.append(
                        {
                            "query": query_id,
                            "mode": mode,
                            "coarse": coarse,
                            "threshold": threshold,
                            "top": top_k,
                            "spec": spec,
                        }
                    )
    return panel


def run_sharded_match_trace(
    case: GoldenCase = _SMALL, store=None
) -> List[dict]:
    """Canonical results of batched sharded serving, per partition key
    and pinned shard count."""
    flat = build_sharded_v3_archive(case, store=store)
    panel = _sharded_query_panel(flat)
    trace: List[dict] = []
    for key in ("window", "feature"):
        for shards in SHARDED_COUNTS:
            sharded = ShardedPatternBase.from_base(flat, shards, key)
            engine = ShardedMatchEngine(sharded)
            queries = [
                MatchQuery(
                    sgs=flat.get(entry["query"]).sgs,
                    threshold=entry["threshold"],
                    top_k=entry["top"],
                    metric=entry["spec"],
                    coarse_level=entry["coarse"],
                )
                for entry in panel
            ]
            for entry, (results, stats) in zip(
                panel, engine.match_many(queries)
            ):
                trace.append(
                    {
                        "key": key,
                        "shards": shards,
                        "query": entry["query"],
                        "mode": entry["mode"],
                        "coarse": entry["coarse"],
                        "threshold": entry["threshold"],
                        "top": entry["top"],
                        "entries": stats.plan["entries"],
                        "gathered": stats.gathered,
                        "refined": stats.refined,
                        "coarse_screen": stats.coarse_screen,
                        "matches": [
                            [r.pattern.pattern_id, round(r.distance, 12)]
                            for r in results
                        ],
                    }
                )
    return trace
