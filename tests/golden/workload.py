"""The golden C-SGS workload: one seeded Figure-7-style run, serialized.

The golden fixture pins the *complete* window-by-window C-SGS output —
cluster memberships and SGS summaries — for a small seeded STT-like 4-D
stream (the paper's Figure-7 configuration, scaled down). Every
neighbor-search backend × refinement mode must reproduce the serialized
file byte-for-byte; any change to the refinement kernels, the provider
seam, or the C-SGS pipeline that alters output in any way trips it.

Regenerating (only after an *intentional* output change)::

    PYTHONPATH=src python tests/golden/regen_golden.py

which rewrites ``csgs_stt_small.json`` from the canonical run (grid
backend, scalar refinement) and prints a digest to eyeball in review.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.core.csgs import CSGS
from repro.data.stt import STTStream
from repro.streams.source import ListSource
from repro.streams.windows import CountBasedWindowSpec, Windower

#: Scaled-down Figure-7 configuration (STT-like 4-D stream, the paper's
#: middle parameter case θr=0.1, θc=8).
THETA_RANGE = 0.1
THETA_COUNT = 8
DIMENSIONS = 4
WIN = 200
SLIDE = 100
WINDOWS = 6
SEED = 7

GOLDEN_PATH = Path(__file__).with_name("csgs_stt_small.json")


def workload_points() -> List[tuple]:
    count = WIN + (WINDOWS - 1) * SLIDE
    return list(STTStream(total_records=count, seed=SEED).points(count))


def run_trace(backend: str, refinement: str) -> List[dict]:
    """Window-by-window C-SGS output in canonical (sorted) form."""
    csgs = CSGS(
        THETA_RANGE,
        THETA_COUNT,
        DIMENSIONS,
        backend=backend,
        refinement=refinement,
    )
    spec = CountBasedWindowSpec(win=WIN, slide=SLIDE)
    trace = []
    for batch in Windower(spec).batches(ListSource(workload_points())):
        output = csgs.process_batch(batch)
        trace.append(
            {
                "window": output.window_index,
                "clusters": [
                    {
                        "id": cluster.cluster_id,
                        "core": sorted(o.oid for o in cluster.core_objects),
                        "edge": sorted(o.oid for o in cluster.edge_objects),
                    }
                    for cluster in output.clusters
                ],
                "summaries": [
                    {
                        "cluster_id": sgs.cluster_id,
                        "cells": sorted(
                            [
                                list(cell.location),
                                cell.status.name,
                                cell.population,
                                sorted(map(list, cell.connections)),
                            ]
                            for cell in sgs.cells.values()
                        ),
                    }
                    for sgs in output.summaries
                ],
            }
        )
    return trace


def render(trace: List[dict]) -> str:
    """Canonical byte representation of a trace (what the file holds)."""
    return json.dumps(trace, sort_keys=True, indent=1) + "\n"
