#!/usr/bin/env python
"""Regenerate the golden C-SGS fixture from the canonical run.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/regen_golden.py

Only rerun this after an *intentional* change to C-SGS output; the diff
of ``csgs_stt_small.json`` is part of the review surface for any such
change.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tests.golden import workload  # noqa: E402


def main() -> int:
    trace = workload.run_trace(backend="grid", refinement="scalar")
    text = workload.render(trace)
    workload.GOLDEN_PATH.write_text(text)
    clusters = sum(len(entry["clusters"]) for entry in trace)
    print(
        f"wrote {workload.GOLDEN_PATH} "
        f"({len(text)} bytes, {len(trace)} windows, {clusters} clusters)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
