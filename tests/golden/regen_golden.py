#!/usr/bin/env python
"""Regenerate the golden C-SGS fixtures from their canonical runs.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/regen_golden.py

Only rerun this after an *intentional* change to C-SGS output; the
diffs of the fixture files are part of the review surface for any such
change. Each case regenerates through its canonical backend (the
``stt_auto`` case runs the adaptive ``auto`` provider) with scalar
refinement; the test suite then requires every backend × refinement
mode to reproduce the bytes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tests.golden import workload  # noqa: E402


def main() -> int:
    for case in workload.CASES.values():
        trace = workload.run_trace(
            case.canonical_backend, "scalar", case=case
        )
        text = workload.render(trace)
        case.path.write_text(text)
        clusters = sum(len(entry["clusters"]) for entry in trace)
        print(
            f"wrote {case.path} via {case.canonical_backend} "
            f"({len(text)} bytes, {len(trace)} windows, "
            f"{clusters} clusters)"
        )
    match_trace = workload.run_match_trace()
    text = workload.render(match_trace)
    workload.MATCH_PATH.write_text(text)
    matches = sum(len(entry["matches"]) for entry in match_trace)
    print(
        f"wrote {workload.MATCH_PATH} ({len(text)} bytes, "
        f"{len(match_trace)} queries, {matches} matches)"
    )
    sharded_trace = workload.run_sharded_match_trace()
    text = workload.render(sharded_trace)
    workload.SHARDED_MATCH_PATH.write_text(text)
    matches = sum(len(entry["matches"]) for entry in sharded_trace)
    print(
        f"wrote {workload.SHARDED_MATCH_PATH} ({len(text)} bytes, "
        f"{len(sharded_trace)} sharded queries, {matches} matches)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
