"""Unit tests for the Pattern Base (dual-indexed archive)."""

from tests.helpers import clustered_points, stream_batches
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS
from repro.core.features import ClusterFeatures
from repro.eval.memory import sgs_bytes
from repro.geometry.mbr import MBR


def _summaries(n_windows=10, seed=1):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0)], per_cluster=300, noise=150, seed=seed
    )
    csgs = CSGS(0.35, 5, 2)
    results = []
    for batch in stream_batches(points, 300, 100):
        output = csgs.process_batch(batch)
        for cluster, sgs in zip(output.clusters, output.summaries):
            results.append((sgs, cluster.size))
    return results


def test_add_and_len():
    base = PatternBase()
    for sgs, size in _summaries():
        base.add(sgs, size)
    assert len(base) > 0
    assert len(base) == len(list(base.all_patterns()))


def test_pattern_ids_unique_and_retrievable():
    base = PatternBase()
    patterns = [base.add(sgs, size) for sgs, size in _summaries()]
    ids = [p.pattern_id for p in patterns]
    assert len(set(ids)) == len(ids)
    for pattern in patterns:
        assert base.get(pattern.pattern_id) is pattern
        assert pattern.pattern_id in base


def test_locational_lookup_matches_bruteforce():
    base = PatternBase()
    patterns = [base.add(sgs, size) for sgs, size in _summaries()]
    probe = MBR((1.0, 1.0), (3.0, 3.0))
    expected = {p.pattern_id for p in patterns if p.mbr.intersects(probe)}
    got = {p.pattern_id for p in base.overlapping(probe)}
    assert got == expected
    assert expected  # the probe really overlaps something


def test_feature_lookup_matches_bruteforce():
    base = PatternBase()
    patterns = [base.add(sgs, size) for sgs, size in _summaries()]
    lows = (0.0, 0.0, 0.0, 0.0)
    highs = (40.0, 30.0, 200.0, 4.0)
    expected = {
        p.pattern_id
        for p in patterns
        if all(
            low <= f <= high
            for f, low, high in zip(p.features.as_tuple(), lows, highs)
        )
    }
    got = {p.pattern_id for p in base.in_feature_ranges(lows, highs)}
    assert got == expected


def test_features_derived_from_sgs():
    base = PatternBase()
    for sgs, size in _summaries()[:3]:
        pattern = base.add(sgs, size)
        assert pattern.features == ClusterFeatures.from_sgs(sgs)
        assert pattern.mbr == sgs.mbr()
        assert pattern.window_index == sgs.window_index


def test_summary_bytes_totals():
    base = PatternBase()
    expected = 0
    for sgs, size in _summaries():
        base.add(sgs, size)
        expected += sgs_bytes(sgs)
    assert base.summary_bytes() == expected


def test_remove():
    base = PatternBase()
    patterns = [base.add(sgs, size) for sgs, size in _summaries()]
    victim = patterns[0]
    assert base.remove(victim.pattern_id)
    assert not base.remove(victim.pattern_id)
    assert victim.pattern_id not in base
    assert victim.pattern_id not in {
        p.pattern_id for p in base.overlapping(victim.mbr)
    }
    lows = tuple(f - 0.01 for f in victim.features.as_tuple())
    highs = tuple(f + 0.01 for f in victim.features.as_tuple())
    assert victim.pattern_id not in {
        p.pattern_id for p in base.in_feature_ranges(lows, highs)
    }


def test_restore_preserves_id_and_advances_allocator():
    from repro.archive.pattern_base import ArchivedPattern

    base = PatternBase()
    summaries = _summaries()
    sgs, size = summaries[0]
    pattern = ArchivedPattern(7, sgs, size, ladder_hint=2)
    assert base.restore(pattern) is pattern
    assert base.get(7) is pattern
    assert base.get(7).ladder_hint == 2
    # Both indices answer for the restored pattern.
    assert pattern in base.overlapping(pattern.mbr)
    features = pattern.features.as_tuple()
    assert pattern in base.in_feature_ranges(features, features)
    # The allocator advanced past the restored id.
    fresh = base.add(summaries[1][0], summaries[1][1])
    assert fresh.pattern_id == 8


def test_restore_rejects_duplicate_id():
    import pytest
    from repro.archive.pattern_base import ArchivedPattern

    base = PatternBase()
    (sgs, size), *_ = _summaries()
    base.restore(ArchivedPattern(3, sgs, size))
    with pytest.raises(ValueError):
        base.restore(ArchivedPattern(3, sgs, size))


def test_add_archived_is_restore():
    from repro.archive.pattern_base import ArchivedPattern

    base = PatternBase()
    (sgs, size), *_ = _summaries()
    pattern = base.add_archived(ArchivedPattern(5, sgs, size))
    assert base.get(5) is pattern
