"""Unit tests for the R-tree (locational feature index substrate)."""

import random

import pytest

from repro.geometry.mbr import MBR
from repro.index.rtree import RTree


def _random_box(rng, span=100.0, max_side=5.0):
    lows = (rng.uniform(0, span), rng.uniform(0, span))
    highs = (
        lows[0] + rng.uniform(0, max_side),
        lows[1] + rng.uniform(0, max_side),
    )
    return MBR(lows, highs)


def test_insert_and_search_small():
    tree = RTree()
    a = MBR((0.0, 0.0), (1.0, 1.0))
    b = MBR((5.0, 5.0), (6.0, 6.0))
    tree.insert(a, "a")
    tree.insert(b, "b")
    assert set(tree.search(MBR((0.5, 0.5), (5.5, 5.5)))) == {"a", "b"}
    assert tree.search(MBR((10.0, 10.0), (11.0, 11.0))) == []
    assert len(tree) == 2


def test_search_matches_bruteforce_after_many_inserts():
    rng = random.Random(0)
    tree = RTree(max_entries=6)
    boxes = [_random_box(rng) for _ in range(400)]
    for i, box in enumerate(boxes):
        tree.insert(box, i)
    assert len(tree) == 400
    for _ in range(50):
        probe = _random_box(rng, max_side=20.0)
        expected = {i for i, box in enumerate(boxes) if box.intersects(probe)}
        assert set(tree.search(probe)) == expected


def test_search_point():
    tree = RTree()
    tree.insert(MBR((0.0, 0.0), (2.0, 2.0)), "x")
    assert tree.search_point((1.0, 1.0)) == ["x"]
    assert tree.search_point((3.0, 3.0)) == []


def test_items_iterates_all_entries():
    rng = random.Random(1)
    tree = RTree(max_entries=4)
    for i in range(100):
        tree.insert(_random_box(rng), i)
    assert sorted(value for _, value in tree.items()) == list(range(100))


def test_delete_existing_entry():
    rng = random.Random(2)
    tree = RTree(max_entries=5)
    boxes = [_random_box(rng) for _ in range(200)]
    values = [object() for _ in range(200)]
    for box, value in zip(boxes, values):
        tree.insert(box, value)
    # Delete half, verify searches stay consistent with brute force.
    for i in range(0, 200, 2):
        assert tree.delete(boxes[i], values[i])
    assert len(tree) == 100
    for _ in range(30):
        probe = _random_box(rng, max_side=15.0)
        expected = {
            id(values[i])
            for i in range(1, 200, 2)
            if boxes[i].intersects(probe)
        }
        assert {id(v) for v in tree.search(probe)} == expected


def test_delete_missing_returns_false():
    tree = RTree()
    box = MBR((0.0, 0.0), (1.0, 1.0))
    tree.insert(box, "a")
    assert not tree.delete(box, "b")
    assert not tree.delete(MBR((9.0, 9.0), (10.0, 10.0)), "a")
    assert len(tree) == 1


def test_delete_everything_leaves_empty_tree():
    rng = random.Random(3)
    tree = RTree(max_entries=4)
    entries = [(_random_box(rng), i) for i in range(60)]
    for box, value in entries:
        tree.insert(box, value)
    for box, value in entries:
        assert tree.delete(box, value)
    assert len(tree) == 0
    assert tree.search(MBR((0.0, 0.0), (100.0, 100.0))) == []


def test_duplicate_boxes_supported():
    tree = RTree()
    box = MBR((0.0, 0.0), (1.0, 1.0))
    for i in range(20):
        tree.insert(box, i)
    assert sorted(tree.search(box)) == list(range(20))


def test_max_entries_validation():
    with pytest.raises(ValueError):
        RTree(max_entries=2)
    with pytest.raises(ValueError):
        RTree(max_entries=8, min_entries=7)
