"""Crash drills for archive persistence.

Three failure families, every one of which must leave *no* partial
archive behind:

* a crash **while dumping** may never tear the previous good file
  (atomic temp-file + fsync + rename);
* a torn **dump file** must be rejected with a clean :class:`ValueError`
  at every possible cut point — never a raw ``struct.error`` — and a
  bulk load into a durable store must roll back to its pre-load state;
* a SIGKILL **during archival** must preserve every pattern whose
  ``add`` was acknowledged before the kill.
"""

import io
import os
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.archive.pattern_base import PatternBase
from repro.archive.persistence import (
    dump_pattern_base,
    load_pattern_base,
    roundtrip_bytes,
)
from repro.core.csgs import CSGS

_RECORD = "<IIBI"


def _populated(seed=1, inverted=None):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0)], per_cluster=250, noise=100, seed=seed
    )
    base = PatternBase(inverted_levels=inverted)
    csgs = CSGS(0.35, 5, 2)
    for batch in stream_batches(points, 300, 100):
        output = csgs.process_batch(batch)
        for cluster, sgs in zip(output.clusters, output.summaries):
            base.add(sgs, cluster.size)
    return base


# ----------------------------------------------------------------------
# Atomic dumps (the torn-file fix)
# ----------------------------------------------------------------------


def test_interrupted_dump_leaves_previous_archive_intact(
    tmp_path, monkeypatch
):
    base = _populated(seed=1)
    path = tmp_path / "history.sgsa"
    dump_pattern_base(base, path)
    good = path.read_bytes()

    import repro.archive.persistence as persistence

    real = persistence.sgs_to_bytes
    calls = {"n": 0}

    def torn(sgs):
        calls["n"] += 1
        if calls["n"] > 2:
            raise RuntimeError("disk died mid-dump")
        return real(sgs)

    monkeypatch.setattr(persistence, "sgs_to_bytes", torn)
    with pytest.raises(RuntimeError):
        dump_pattern_base(_populated(seed=2), path)
    monkeypatch.undo()

    # The crash tore nothing: the old archive is byte-identical and
    # still loads, and no temp file litters the directory.
    assert path.read_bytes() == good
    assert len(load_pattern_base(path)) == len(base)
    assert [p.name for p in tmp_path.iterdir()] == ["history.sgsa"]


def test_dump_overwrite_is_atomic_replacement(tmp_path):
    path = tmp_path / "history.sgsa"
    dump_pattern_base(_populated(seed=3), path)
    second = _populated(seed=4)
    written = dump_pattern_base(second, path)
    assert written == path.stat().st_size
    assert path.read_bytes() == roundtrip_bytes(second)
    assert [p.name for p in tmp_path.iterdir()] == ["history.sgsa"]


# ----------------------------------------------------------------------
# Torn dump files: every cut point fails cleanly
# ----------------------------------------------------------------------


def _cut_points(blob):
    """Every interesting truncation point: inside the header, at each
    record/blob boundary, mid-record, mid-blob, and inside the
    inverted section."""
    cuts = {0, 1, 3, 4, 6, 11, 12}
    _, count = struct.unpack_from("<II", blob, 4)
    pos = 12
    record_size = struct.calcsize(_RECORD)
    for _ in range(count):
        blob_length = struct.unpack_from(_RECORD, blob, pos)[3]
        cuts.add(pos + record_size // 2)
        pos += record_size
        cuts.add(pos)
        cuts.add(pos + blob_length // 2)
        pos += blob_length
        cuts.add(pos)
    cuts.add(len(blob) - 5)
    cuts.add(len(blob) - 1)
    return sorted(cut for cut in cuts if 0 <= cut < len(blob))


def test_truncation_corpus_raises_clean_valueerror():
    blob = roundtrip_bytes(_populated(seed=5, inverted=(1,)))
    cuts = _cut_points(blob)
    assert len(cuts) > 20
    for cut in cuts:
        # pytest.raises(ValueError) also asserts no raw struct.error
        # escapes: struct.error is not a ValueError subclass.
        with pytest.raises(ValueError):
            load_pattern_base(io.BytesIO(blob[:cut]))


def test_truncated_header_names_the_missing_piece():
    blob = roundtrip_bytes(_populated(seed=6))
    with pytest.raises(ValueError, match="truncated archive.*header"):
        load_pattern_base(io.BytesIO(blob[:7]))
    with pytest.raises(ValueError, match="not a Pattern Base"):
        load_pattern_base(io.BytesIO(b"JU"))


def test_truncation_corpus_rolls_back_sqlite_store(tmp_path):
    blob = roundtrip_bytes(_populated(seed=7, inverted=(1,)))
    for i, cut in enumerate(_cut_points(blob)):
        spec = f"sqlite:{tmp_path / f'torn-{i}.db'}"
        with pytest.raises(ValueError):
            load_pattern_base(io.BytesIO(blob[:cut]), store=spec)
        # The bulk transaction rolled back: reopening finds an empty
        # store, not a partial archive.
        with PatternBase(store=spec) as reopened:
            assert len(reopened) == 0
            assert reopened.inverted_index() is None


def test_failed_load_rolls_back_to_pre_load_state(tmp_path):
    """A torn import into an already-populated store restores exactly
    the pre-import contents (not an empty database)."""
    spec = f"sqlite:{tmp_path / 'preloaded.db'}"
    blob = roundtrip_bytes(_populated(seed=8, inverted=(1,)))
    loaded = load_pattern_base(io.BytesIO(blob), store=spec)
    count = len(loaded)
    loaded.close()

    # Re-importing the same archive collides on pattern ids partway
    # through; the bulk rollback must leave the first import intact.
    with pytest.raises(ValueError):
        load_pattern_base(io.BytesIO(blob), store=spec)
    with PatternBase(store=spec) as reopened:
        assert len(reopened) == count
        assert roundtrip_bytes(reopened) == blob


# ----------------------------------------------------------------------
# SIGKILL during archival: acknowledged patterns survive
# ----------------------------------------------------------------------

_INGEST_CHILD = """\
import os
import sys

from tests.helpers import clustered_points, stream_batches
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS

db_path, acked_path = sys.argv[1], sys.argv[2]
points = clustered_points(
    [(2.0, 2.0), (6.0, 5.0)], per_cluster=250, noise=100, seed=21
)
base = PatternBase(store="sqlite:" + db_path, inverted_levels=(1,))
csgs = CSGS(0.35, 5, 2)
log = open(acked_path, "a")
while True:
    for batch in stream_batches(points, 300, 100):
        output = csgs.process_batch(batch)
        for cluster, sgs in zip(output.clusters, output.summaries):
            pattern = base.add(sgs, cluster.size)
            # The ack: only written after add() returned, i.e. after
            # the store reported the pattern durably committed.
            log.write("%d\\n" % pattern.pattern_id)
            log.flush()
            os.fsync(log.fileno())
"""


def test_sigkill_during_archival_keeps_acknowledged_patterns(tmp_path):
    root = Path(__file__).resolve().parents[1]
    script = tmp_path / "ingest_child.py"
    script.write_text(_INGEST_CHILD)
    db_path = tmp_path / "killed.db"
    acked_path = tmp_path / "acked.txt"

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (
            str(root), str(root / "src"), env.get("PYTHONPATH", "")
        )
        if part
    )
    proc = subprocess.Popen(
        [sys.executable, str(script), str(db_path), str(acked_path)],
        cwd=str(root),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    "ingest child exited early:\n"
                    + proc.stderr.read().decode()
                )
            if (
                acked_path.exists()
                and acked_path.read_text().count("\n") >= 6
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("ingest child never acknowledged")
    finally:
        proc.kill()
        proc.wait()

    acked = [
        int(line)
        for line in acked_path.read_text().splitlines()
        if line.strip().isdigit()
    ]
    assert len(acked) >= 6
    with PatternBase(store=f"sqlite:{db_path}") as reopened:
        missing = [pid for pid in acked if pid not in reopened]
        assert not missing, f"acknowledged patterns lost: {missing}"
