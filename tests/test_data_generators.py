"""Unit tests for the synthetic data generators (GMTI, STT, blobs)."""

import pytest

from repro.clustering.dbscan import dbscan
from repro.data.gmti import GMTIStream
from repro.data.stt import STTStream
from repro.data.synthetic import DriftingBlobStream, static_blobs, uniform_noise
from repro.streams.objects import StreamObject


def _stamp(objects, last_window=10):
    out = []
    for obj in objects:
        obj.first_window = 0
        obj.last_window = last_window
        out.append(obj)
    return out


# ---------------------------------------------------------------------------
# Generic synthetic
# ---------------------------------------------------------------------------


def test_static_blobs_counts_and_dims():
    points = static_blobs([(0.0, 0.0), (5.0, 5.0)], points_per_blob=10)
    assert len(points) == 20
    assert all(len(p) == 2 for p in points)


def test_uniform_noise_within_bounds():
    points = uniform_noise(100, (0.0, 0.0), (2.0, 3.0), seed=1)
    assert all(0 <= x <= 2 and 0 <= y <= 3 for x, y in points)


def test_drifting_blob_stream_reproducible():
    a = list(DriftingBlobStream(seed=5).points(100))
    b = list(DriftingBlobStream(seed=5).points(100))
    assert a == b
    c = list(DriftingBlobStream(seed=6).points(100))
    assert a != c


def test_drifting_blob_objects_have_sequential_oids():
    objects = list(DriftingBlobStream(seed=1).objects(50, start_oid=10))
    assert [o.oid for o in objects] == list(range(10, 60))


def test_drifting_blobs_form_clusters():
    stream = DriftingBlobStream(
        n_blobs=2, noise_fraction=0.1, std=0.2, drift=0.0, seed=2
    )
    objects = _stamp(list(stream.objects(600)))
    clusters = dbscan(objects, 0.3, 5)
    assert len(clusters) >= 1
    assert max(c.size for c in clusters) > 100


def test_drifting_blob_validation():
    with pytest.raises(ValueError):
        DriftingBlobStream(noise_fraction=2.0)


# ---------------------------------------------------------------------------
# GMTI
# ---------------------------------------------------------------------------


def test_gmti_dimensions_and_region():
    stream = GMTIStream(seed=1, region=50.0, noise_fraction=0.0)
    points = list(stream.points(500))
    assert all(len(p) == 2 for p in points)
    # Group members scatter around centers inside the region; allow the
    # Gaussian tails a small margin.
    assert all(-15 < x < 65 and -15 < y < 65 for x, y in points)


def test_gmti_reproducible():
    assert list(GMTIStream(seed=3).points(200)) == list(
        GMTIStream(seed=3).points(200)
    )


def test_gmti_forms_moving_clusters():
    stream = GMTIStream(
        n_groups=3, noise_fraction=0.1, group_spread=1.0, seed=4
    )
    objects = _stamp(list(stream.objects(800)))
    clusters = dbscan(objects, 2.5, 8)
    assert clusters, "convoys must appear as density-based clusters"


def test_gmti_payload_speed_range():
    stream = GMTIStream(seed=5)
    for obj in stream.objects(200):
        assert 0.0 <= obj.payload <= 200.0


def test_gmti_centers_actually_move():
    stream = GMTIStream(n_groups=1, noise_fraction=0.0, seed=6)
    first = list(stream.points(50))
    later = list(stream.points(5000))[-50:]
    from statistics import mean

    first_center = (mean(p[0] for p in first), mean(p[1] for p in first))
    later_center = (mean(p[0] for p in later), mean(p[1] for p in later))
    moved = (
        (first_center[0] - later_center[0]) ** 2
        + (first_center[1] - later_center[1]) ** 2
    ) ** 0.5
    assert moved > 1.0


def test_gmti_validation():
    with pytest.raises(ValueError):
        GMTIStream(noise_fraction=1.5)
    with pytest.raises(ValueError):
        GMTIStream(alpha=1.0)


# ---------------------------------------------------------------------------
# STT
# ---------------------------------------------------------------------------


def test_stt_schema():
    stream = STTStream(total_records=10_000, seed=1)
    points = list(stream.points(500))
    assert all(len(p) == 4 for p in points)
    for t, price, volume, time_value in points:
        assert t in (0.0, 1.0)
        assert 0.0 <= price <= 1.0
        assert 0.0 <= volume <= 1.0
        assert 0.0 <= time_value <= 1.0


def test_stt_time_advances():
    stream = STTStream(total_records=1000, seed=2)
    times = [p[3] for p in stream.points(1000)]
    assert times == sorted(times)


def test_stt_reproducible():
    a = list(STTStream(total_records=5000, seed=3).points(1000))
    b = list(STTStream(total_records=5000, seed=3).points(1000))
    assert a == b


def test_stt_bursts_form_clusters():
    stream = STTStream(
        total_records=100_000, burst_fraction=0.8, seed=4
    )
    objects = _stamp(list(stream.objects(4000)))
    clusters = dbscan(objects, 0.05, 10)
    assert clusters, "intensive transaction areas must cluster"


def test_stt_objects_oids():
    stream = STTStream(total_records=100, seed=5)
    objects = list(stream.objects(100))
    assert isinstance(objects[0], StreamObject)
    assert [o.oid for o in objects] == list(range(100))


def test_stt_validation():
    with pytest.raises(ValueError):
        STTStream(burst_fraction=1.2)
