"""Property-based cross-validation of the range-query indices, the
sphere-pruned offset tables, and the per-tuple incremental clusterer."""

import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import make_objects
from repro.clustering.cluster import partition_signature
from repro.clustering.dbscan import dbscan
from repro.clustering.inc_dbscan import IncrementalDBSCAN
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.geometry.distance import euclidean_distance
from repro.index.grid_index import (
    GridIndex,
    full_offset_table,
    sphere_pruned_offsets,
)
from repro.index.kdtree import KDTree

_coords = st.floats(min_value=-20, max_value=20, allow_nan=False)
_points = st.lists(st.tuples(_coords, _coords), min_size=1, max_size=100)
_radius = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


@given(_points, _radius)
@settings(max_examples=40, deadline=None)
def test_kdtree_and_grid_agree_with_bruteforce(points, radius):
    objects = make_objects(points)
    grid = GridIndex(radius, 2)
    grid.bulk_load(objects)
    tree = KDTree(objects, 2)
    probe = objects[0]
    brute = {
        o.oid
        for o in objects
        if o.oid != probe.oid
        and euclidean_distance(o.coords, probe.coords) <= radius
    }
    from_grid = {
        o.oid for o in grid.range_query(probe.coords, exclude_oid=probe.oid)
    }
    from_tree = {
        o.oid
        for o in tree.range_query(probe.coords, radius, exclude_oid=probe.oid)
    }
    assert from_grid == brute
    assert from_tree == brute


# ----------------------------------------------------------------------
# Sphere-pruned offset tables: exactly the cells whose minimum distance
# to the base cell is <= theta_range — no false drops, no readmissions
# ----------------------------------------------------------------------


def _oracle_gap_sq(offset, side):
    """Independent box-to-box minimum gap: built from the *absolute*
    cell bounds of two SkeletalGridCells (clamp formulation), not from
    the normalized corner arithmetic the implementation uses."""
    dims = len(offset)
    base = SkeletalGridCell((0,) * dims, side, 0, CellStatus.CORE)
    other = SkeletalGridCell(offset, side, 0, CellStatus.CORE)
    total = 0.0
    for axis in range(dims):
        gap = max(
            0.0,
            other.lows()[axis] - base.highs()[axis],
            base.lows()[axis] - other.highs()[axis],
        )
        total += gap * gap
    return total


@given(
    dims=st.integers(min_value=1, max_value=4),
    reach=st.integers(min_value=1, max_value=3),
    ratio=st.floats(
        min_value=0.05, max_value=2.5, allow_nan=False, allow_infinity=False
    ),
)
@settings(max_examples=60, deadline=None)
def test_sphere_pruned_offsets_exact(dims, reach, ratio):
    """The pruned table holds exactly the offsets whose min cell-to-cell
    distance is <= θr (θr = 1, side = ratio): every offset at gap <= θr
    is present (no false drops — the correctness-critical direction),
    and nothing beyond the documented fp slack is readmitted. Offsets
    inside the few-ulp gray band around the boundary are legal either
    way; the slack only ever admits cells refinement will discard."""
    table = sphere_pruned_offsets(dims, reach, ratio)
    table_set = set(table)
    assert len(table_set) == len(table)
    full = full_offset_table(dims, reach)
    assert table_set <= set(full)
    for offset in full:
        gap_sq = _oracle_gap_sq(offset, ratio)
        if gap_sq <= 1.0:
            assert offset in table_set, (
                f"false drop: {offset} at gap² {gap_sq}"
            )
        elif gap_sq > 1.0 + 1e-6:
            assert offset not in table_set, (
                f"readmitted cell: {offset} at gap² {gap_sq}"
            )
    # Point symmetry: queries see the same table from either side.
    for offset in table:
        assert tuple(-delta for delta in offset) in table_set
    # Module-level memoization: same key -> same shared object.
    assert sphere_pruned_offsets(dims, reach, ratio) is table


@given(
    dims=st.integers(min_value=1, max_value=5),
    theta=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_pruned_table_covers_every_neighbor_pair(dims, theta, data):
    """Semantic no-false-drop witness under the paper's diagonal cell
    sizing: any two points within θr of each other land in cells whose
    offset is in the grid's pruned table."""
    grid = GridIndex(theta, dims)
    coord_strategy = st.floats(
        min_value=-10.0, max_value=10.0, allow_nan=False
    )
    a = tuple(data.draw(coord_strategy) for _ in range(dims))
    # Perturb within the θr-ball (scaled per-dimension so the total
    # displacement stays <= θr).
    scale = theta / math.sqrt(dims)
    b = tuple(
        value + data.draw(
            st.floats(min_value=-scale, max_value=scale, allow_nan=False)
        )
        for value in a
    )
    if euclidean_distance(a, b) > theta:
        return  # outside the ball: no claim
    exact_sq = sum(
        (Fraction(q) - Fraction(p)) ** 2 for p, q in zip(a, b)
    )
    if exact_sq > Fraction(theta) ** 2:
        # Float rounding collapsed an exactly-greater-than-θr distance
        # onto the boundary (e.g. a denormal just below a cell edge
        # against a point one cell past reach): under exact arithmetic
        # the pair is *not* within θr, so the coverage claim does not
        # apply — offset reach+1 implies exact distance > θr strictly.
        return
    delta = tuple(
        q - p for p, q in zip(grid.cell_coord(a), grid.cell_coord(b))
    )
    assert delta in set(grid._offsets), (
        f"neighbor pair {a} / {b} spans offset {delta} "
        "missing from the pruned table"
    )


def test_offset_tables_shared_across_instances():
    """Two grids with the same (d, reach, side/θr) share one memoized
    table object, whatever the absolute θr."""
    a = GridIndex(0.2, 4)
    b = GridIndex(1.7, 4)
    assert a._offsets is b._offsets
    assert a.reach == b.reach == 2
    # Diagonal sizing keeps the whole cube reachable through 4-D...
    assert len(a._offsets) == 5 ** 4
    # ...while 5-D prunes almost two thirds of it.
    c = GridIndex(0.3, 5)
    assert len(c._offsets) == 6095 < 7 ** 5


@st.composite
def _op_sequences(draw):
    """Random interleavings of insertions and deletions."""
    n_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    alive = 0
    for _ in range(n_ops):
        if alive > 0 and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.integers(min_value=0, max_value=alive - 1))
            ops.append(("delete", victim))
            alive -= 1
        else:
            point = draw(
                st.tuples(
                    st.floats(min_value=0, max_value=3, allow_nan=False),
                    st.floats(min_value=0, max_value=3, allow_nan=False),
                )
            )
            ops.append(("insert", point))
            alive += 1
    return ops


@given(_op_sequences(), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_incremental_dbscan_matches_static_under_any_op_sequence(
    ops, theta_count
):
    theta_range = 0.5
    inc = IncrementalDBSCAN(theta_range, theta_count, 2)
    alive = []
    next_oid = 0
    for op, arg in ops:
        if op == "insert":
            obj = make_objects([arg])[0]
            obj.oid = next_oid
            next_oid += 1
            inc.insert(obj)
            alive.append(obj)
        else:
            victim = alive.pop(arg)
            inc.delete(victim)
    expected = partition_signature(dbscan(alive, theta_range, theta_count))
    assert partition_signature(inc.clusters()) == expected
