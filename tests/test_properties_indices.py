"""Property-based cross-validation of the range-query indices and the
per-tuple incremental clusterer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import make_objects
from repro.clustering.cluster import partition_signature
from repro.clustering.dbscan import dbscan
from repro.clustering.inc_dbscan import IncrementalDBSCAN
from repro.geometry.distance import euclidean_distance
from repro.index.grid_index import GridIndex
from repro.index.kdtree import KDTree

_coords = st.floats(min_value=-20, max_value=20, allow_nan=False)
_points = st.lists(st.tuples(_coords, _coords), min_size=1, max_size=100)
_radius = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


@given(_points, _radius)
@settings(max_examples=40, deadline=None)
def test_kdtree_and_grid_agree_with_bruteforce(points, radius):
    objects = make_objects(points)
    grid = GridIndex(radius, 2)
    grid.bulk_load(objects)
    tree = KDTree(objects, 2)
    probe = objects[0]
    brute = {
        o.oid
        for o in objects
        if o.oid != probe.oid
        and euclidean_distance(o.coords, probe.coords) <= radius
    }
    from_grid = {
        o.oid for o in grid.range_query(probe.coords, exclude_oid=probe.oid)
    }
    from_tree = {
        o.oid
        for o in tree.range_query(probe.coords, radius, exclude_oid=probe.oid)
    }
    assert from_grid == brute
    assert from_tree == brute


@st.composite
def _op_sequences(draw):
    """Random interleavings of insertions and deletions."""
    n_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    alive = 0
    for _ in range(n_ops):
        if alive > 0 and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.integers(min_value=0, max_value=alive - 1))
            ops.append(("delete", victim))
            alive -= 1
        else:
            point = draw(
                st.tuples(
                    st.floats(min_value=0, max_value=3, allow_nan=False),
                    st.floats(min_value=0, max_value=3, allow_nan=False),
                )
            )
            ops.append(("insert", point))
            alive += 1
    return ops


@given(_op_sequences(), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_incremental_dbscan_matches_static_under_any_op_sequence(
    ops, theta_count
):
    theta_range = 0.5
    inc = IncrementalDBSCAN(theta_range, theta_count, 2)
    alive = []
    next_oid = 0
    for op, arg in ops:
        if op == "insert":
            obj = make_objects([arg])[0]
            obj.oid = next_oid
            next_oid += 1
            inc.insert(obj)
            alive.append(obj)
        else:
            victim = alive.pop(arg)
            inc.delete(victim)
    expected = partition_signature(dbscan(alive, theta_range, theta_count))
    assert partition_signature(inc.clusters()) == expected
