"""Unit tests for the Pattern Analyzer (filter-and-refine matching)."""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.archive.analyzer import PatternAnalyzer
from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS
from repro.matching.alignment import anytime_alignment_search
from repro.matching.metric import DistanceMetricSpec


def _populated_base(seed=1):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0), (4.0, 8.0)],
        per_cluster=250,
        noise=120,
        seed=seed,
    )
    base = PatternBase()
    archiver = PatternArchiver(base)
    csgs = CSGS(0.35, 5, 2)
    last_output = None
    for batch in stream_batches(points, 300, 100):
        last_output = csgs.process_batch(batch)
        archiver.archive_output(last_output)
    return base, last_output


def test_self_match_found_with_zero_distance():
    base, last = _populated_base()
    analyzer = PatternAnalyzer(base)
    query = max(last.summaries, key=len)
    results, stats = analyzer.match(query, threshold=0.3)
    assert results, "the archived copy of the query must match"
    assert results[0].distance == pytest.approx(0.0, abs=1e-9)
    assert stats.matches == len(results)


def test_results_sorted_and_within_threshold():
    base, last = _populated_base()
    analyzer = PatternAnalyzer(base)
    query = last.summaries[0]
    results, _ = analyzer.match(query, threshold=0.5)
    distances = [r.distance for r in results]
    assert distances == sorted(distances)
    assert all(d <= 0.5 for d in distances)


def test_top_k_truncates():
    base, last = _populated_base()
    analyzer = PatternAnalyzer(base)
    query = last.summaries[0]
    all_results, _ = analyzer.match(query, threshold=0.6)
    top3, _ = analyzer.match(query, threshold=0.6, top_k=3)
    assert len(top3) == min(3, len(all_results))
    assert [r.pattern.pattern_id for r in top3] == [
        r.pattern.pattern_id for r in all_results[:3]
    ]


def test_filter_reduces_refined_candidates():
    base, last = _populated_base()
    analyzer = PatternAnalyzer(base)
    query = last.summaries[0]
    _, stats = analyzer.match(query, threshold=0.15)
    assert stats.archive_size == len(base)
    assert stats.refined <= stats.index_candidates <= stats.archive_size
    # With a tight threshold the filter must drop a real fraction.
    assert stats.refined < stats.archive_size


def test_filter_never_drops_true_matches():
    """Filter-phase completeness: every pattern that satisfies both the
    cluster-level metric and the refined cell-level distance must appear
    in the results (the index search ranges are safe, Section 7.2)."""
    from repro.core.features import ClusterFeatures
    from repro.matching.metric import cluster_feature_distance

    base, last = _populated_base()
    spec = DistanceMetricSpec()
    analyzer = PatternAnalyzer(base, spec)
    query = last.summaries[0]
    query_features = ClusterFeatures.from_sgs(query)
    threshold = 0.25
    results, _ = analyzer.match(query, threshold=threshold)
    found = {r.pattern.pattern_id for r in results}
    for pattern in base.all_patterns():
        coarse = cluster_feature_distance(
            query_features, pattern.features, spec
        )
        if coarse > threshold:
            continue
        refined = anytime_alignment_search(
            query, pattern.sgs, spec, max_expansions=32
        ).distance
        if refined <= threshold:
            assert pattern.pattern_id in found, (
                f"pattern {pattern.pattern_id} (coarse {coarse}, refined "
                f"{refined}) was filtered out"
            )


def test_position_sensitive_uses_locational_index():
    base, last = _populated_base()
    spec = DistanceMetricSpec(position_sensitive=True)
    analyzer = PatternAnalyzer(base, spec)
    query = last.summaries[0]
    results, stats = analyzer.match(query, threshold=0.4)
    assert stats.index_candidates <= stats.archive_size
    for result in results:
        assert result.pattern.mbr.intersects(query.mbr())
        assert result.alignment == (0, 0)


def test_refine_fraction_property():
    base, last = _populated_base()
    analyzer = PatternAnalyzer(base)
    _, stats = analyzer.match(last.summaries[0], threshold=0.2)
    assert 0.0 <= stats.refine_fraction <= 1.0


def test_empty_base_returns_nothing():
    analyzer = PatternAnalyzer(PatternBase())
    _, last = _populated_base()
    results, stats = analyzer.match(last.summaries[0], threshold=0.5)
    assert results == []
    assert stats.archive_size == 0
    assert stats.refine_fraction == 0.0
