"""Unit tests for full-representation regeneration and ASCII rendering."""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import CSGS
from repro.core.regenerate import regenerate_cluster, regenerate_points
from repro.core.sgs import SGS
from repro.eval.oracle import oracle_similarity
from repro.viz.ascii_art import render_sgs, render_window


def _extracted(seed=1):
    points = clustered_points([(2.0, 2.0)], per_cluster=400, seed=seed)
    csgs = CSGS(0.3, 5, 2)
    output = None
    for batch in stream_batches(points, 400, 200):
        output = csgs.process_batch(batch)
    cluster = max(output.clusters, key=lambda c: c.size)
    return cluster, output.summaries[cluster.cluster_id]


# ---------------------------------------------------------------------------
# Regeneration
# ---------------------------------------------------------------------------


def test_regenerated_population_matches():
    _, sgs = _extracted()
    points = regenerate_points(sgs, seed=2)
    assert len(points) == sgs.population


def test_regenerated_points_inside_cells():
    _, sgs = _extracted()
    for point in regenerate_points(sgs, seed=3):
        assert sgs.covers_point(point)


def test_regenerated_cluster_statuses():
    _, sgs = _extracted()
    cluster = regenerate_cluster(sgs, seed=4)
    assert cluster.size == sgs.population
    core_cells = {c.location for c in sgs.cells.values() if c.is_core}
    for obj in cluster.core_objects:
        coord = tuple(
            int(v // sgs.side_length) for v in obj.coords
        )
        assert coord in core_cells


def test_regenerated_cluster_resembles_original():
    original, sgs = _extracted()
    regenerated = regenerate_cluster(sgs, seed=5)
    similarity = oracle_similarity(original, regenerated, 0.3)
    assert similarity > 0.5, (
        f"regenerated cluster too dissimilar: {similarity}"
    )


def test_regeneration_deterministic():
    _, sgs = _extracted()
    assert regenerate_points(sgs, seed=6) == regenerate_points(sgs, seed=6)
    assert regenerate_points(sgs, seed=6) != regenerate_points(sgs, seed=7)


# ---------------------------------------------------------------------------
# ASCII rendering
# ---------------------------------------------------------------------------


def _tiny_sgs():
    cells = [
        SkeletalGridCell((0, 0), 0.5, 9, CellStatus.CORE, frozenset({(1, 0)})),
        SkeletalGridCell((1, 0), 0.5, 3, CellStatus.CORE, frozenset({(0, 0)})),
        SkeletalGridCell((1, 1), 0.5, 1, CellStatus.EDGE),
    ]
    return SGS(cells, 0.5, cluster_id=4, window_index=2)


def test_render_dimensions_and_symbols():
    art = render_sgs(_tiny_sgs(), border=False)
    lines = art.split("\n")
    assert len(lines) == 2  # y in {0, 1}
    assert len(lines[0]) == 2  # x in {0, 1}
    assert "+" in art  # the edge cell
    # Densest core cell uses the darkest ramp character.
    assert "#" in art


def test_render_with_border():
    art = render_sgs(_tiny_sgs())
    assert art.startswith("┌") and art.endswith("┘")


def test_render_window_labels():
    art = render_window([_tiny_sgs()])
    assert "cluster 4" in art and "window 2" in art


def test_render_rejects_non_2d():
    cells = [SkeletalGridCell((0, 0, 0), 0.5, 1, CellStatus.CORE)]
    with pytest.raises(ValueError):
        render_sgs(SGS(cells, 0.5))


def test_render_real_extraction():
    _, sgs = _extracted(seed=8)
    art = render_sgs(sgs)
    assert len(art.split("\n")) > 3
