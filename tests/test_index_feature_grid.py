"""Unit tests for the non-locational feature grid index."""

import random

import pytest

from repro.index.feature_grid import FeatureGridIndex


def test_insert_and_range_query():
    index = FeatureGridIndex((1.0, 1.0))
    index.insert((0.5, 0.5), "a")
    index.insert((5.0, 5.0), "b")
    assert index.range_query((0.0, 0.0), (1.0, 1.0)) == ["a"]
    assert set(index.range_query((0.0, 0.0), (10.0, 10.0))) == {"a", "b"}
    assert index.range_query((2.0, 2.0), (3.0, 3.0)) == []


def test_range_is_inclusive():
    index = FeatureGridIndex((1.0,))
    index.insert((2.0,), "x")
    assert index.range_query((2.0,), (2.0,)) == ["x"]


def test_matches_bruteforce_4d():
    rng = random.Random(0)
    index = FeatureGridIndex((10.0, 5.0, 1.0, 0.5))
    entries = []
    for i in range(500):
        features = (
            rng.uniform(0, 200),
            rng.uniform(0, 100),
            rng.uniform(0, 20),
            rng.uniform(0, 8),
        )
        entries.append((features, i))
        index.insert(features, i)
    for _ in range(40):
        lows = tuple(rng.uniform(0, 100) for _ in range(4))
        highs = tuple(low + rng.uniform(0, 100) for low in lows)
        expected = {
            value
            for features, value in entries
            if all(l <= f <= h for f, l, h in zip(features, lows, highs))
        }
        assert set(index.range_query(lows, highs)) == expected


def test_unbounded_dimension_with_infinity():
    index = FeatureGridIndex((1.0, 1.0))
    index.insert((0.5, 100.0), "far")
    index.insert((0.5, 1.0), "near")
    got = index.range_query((0.0, 0.0), (1.0, float("inf")))
    assert set(got) == {"far", "near"}


def test_empty_index_range_query():
    index = FeatureGridIndex((1.0,))
    assert index.range_query((0.0,), (10.0,)) == []


def test_remove_entry():
    index = FeatureGridIndex((1.0,))
    value = object()
    index.insert((3.0,), value)
    assert len(index) == 1
    assert index.remove((3.0,), value)
    assert len(index) == 0
    assert not index.remove((3.0,), value)


def test_remove_requires_identity():
    index = FeatureGridIndex((1.0,))
    index.insert((3.0,), "a")
    assert not index.remove((3.0,), "different")
    assert len(index) == 1


def test_dimension_validation():
    index = FeatureGridIndex((1.0, 1.0))
    with pytest.raises(ValueError):
        index.insert((1.0,), "x")
    with pytest.raises(ValueError):
        index.range_query((0.0,), (1.0,))
    with pytest.raises(ValueError):
        FeatureGridIndex(())
    with pytest.raises(ValueError):
        FeatureGridIndex((0.0,))


def test_items():
    index = FeatureGridIndex((1.0,))
    index.insert((1.0,), "a")
    index.insert((2.0,), "b")
    assert sorted(value for _, value in index.items()) == ["a", "b"]
