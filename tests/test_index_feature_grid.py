"""Unit tests for the non-locational feature grid index."""

import random

import pytest

from repro.index.feature_grid import FeatureGridIndex


def test_insert_and_range_query():
    index = FeatureGridIndex((1.0, 1.0))
    index.insert((0.5, 0.5), "a")
    index.insert((5.0, 5.0), "b")
    assert index.range_query((0.0, 0.0), (1.0, 1.0)) == ["a"]
    assert set(index.range_query((0.0, 0.0), (10.0, 10.0))) == {"a", "b"}
    assert index.range_query((2.0, 2.0), (3.0, 3.0)) == []


def test_range_is_inclusive():
    index = FeatureGridIndex((1.0,))
    index.insert((2.0,), "x")
    assert index.range_query((2.0,), (2.0,)) == ["x"]


def test_matches_bruteforce_4d():
    rng = random.Random(0)
    index = FeatureGridIndex((10.0, 5.0, 1.0, 0.5))
    entries = []
    for i in range(500):
        features = (
            rng.uniform(0, 200),
            rng.uniform(0, 100),
            rng.uniform(0, 20),
            rng.uniform(0, 8),
        )
        entries.append((features, i))
        index.insert(features, i)
    for _ in range(40):
        lows = tuple(rng.uniform(0, 100) for _ in range(4))
        highs = tuple(low + rng.uniform(0, 100) for low in lows)
        expected = {
            value
            for features, value in entries
            if all(l <= f <= h for f, l, h in zip(features, lows, highs))
        }
        assert set(index.range_query(lows, highs)) == expected


def test_unbounded_dimension_with_infinity():
    index = FeatureGridIndex((1.0, 1.0))
    index.insert((0.5, 100.0), "far")
    index.insert((0.5, 1.0), "near")
    got = index.range_query((0.0, 0.0), (1.0, float("inf")))
    assert set(got) == {"far", "near"}


def test_empty_index_range_query():
    index = FeatureGridIndex((1.0,))
    assert index.range_query((0.0,), (10.0,)) == []


def test_remove_entry():
    index = FeatureGridIndex((1.0,))
    value = object()
    index.insert((3.0,), value)
    assert len(index) == 1
    assert index.remove((3.0,), value)
    assert len(index) == 0
    assert not index.remove((3.0,), value)


def test_remove_requires_identity():
    index = FeatureGridIndex((1.0,))
    index.insert((3.0,), "a")
    assert not index.remove((3.0,), "different")
    assert len(index) == 1


def test_dimension_validation():
    index = FeatureGridIndex((1.0, 1.0))
    with pytest.raises(ValueError):
        index.insert((1.0,), "x")
    with pytest.raises(ValueError):
        index.range_query((0.0,), (1.0,))
    with pytest.raises(ValueError):
        FeatureGridIndex(())
    with pytest.raises(ValueError):
        FeatureGridIndex((0.0,))


def test_items():
    index = FeatureGridIndex((1.0,))
    index.insert((1.0,), "a")
    index.insert((2.0,), "b")
    assert sorted(value for _, value in index.items()) == ["a", "b"]


# ----------------------------------------------------------------------
# Unbounded / degenerate range handling (no bin-enumeration blowup)
# ----------------------------------------------------------------------


def test_unbounded_high_with_outlier_probes_only_occupied_bins():
    """An inf high used to clamp to the occupied extent computed by a
    full key rescan; with a far outlier the clamped box is still huge,
    and the enumeration must take the occupied-cell scan, not walk a
    million empty bins."""
    index = FeatureGridIndex((1.0, 1.0))
    for i in range(20):
        index.insert((float(i), 1.0), f"v{i}")
    index.insert((1e6, 1.0), "outlier")
    before = index.stats["bin_probes"]
    got = index.range_query((0.0, 0.0), (float("inf"), float("inf")))
    assert len(got) == 21
    probes = index.stats["bin_probes"] - before
    assert probes <= len(index._cells), (
        f"unbounded query probed {probes} bins for "
        f"{len(index._cells)} occupied cells"
    )


def test_degenerate_infinite_bounds_short_circuit():
    """+inf lows and -inf highs match nothing and must not probe any
    bin (a +inf low used to clamp like an *unbounded* side and
    enumerate the whole occupied box just to screen everything out)."""
    index = FeatureGridIndex((1.0, 1.0))
    for i in range(50):
        index.insert((float(i % 7), float(i % 11)), i)
    before = index.stats["bin_probes"]
    assert index.range_query((float("inf"), 0.0), (float("inf"), 5.0)) == []
    assert index.range_query((0.0, 0.0), (5.0, float("-inf"))) == []
    assert index.range_query((4.0, 0.0), (1.0, 5.0)) == []  # inverted
    assert index.stats["bin_probes"] == before


def test_minus_inf_low_is_unbounded_below():
    index = FeatureGridIndex((1.0,))
    index.insert((2.0,), "a")
    index.insert((9.0,), "b")
    assert set(index.range_query((float("-inf"),), (10.0,))) == {"a", "b"}


def test_nan_bounds_rejected():
    index = FeatureGridIndex((1.0,))
    index.insert((1.0,), "a")
    with pytest.raises(ValueError):
        index.range_query((float("nan"),), (2.0,))
    with pytest.raises(ValueError):
        index.range_query((0.0,), (float("nan"),))


def test_key_extents_track_inserts_and_removals():
    index = FeatureGridIndex((1.0, 1.0))
    assert index.key_extents() is None
    index.insert((0.5, 0.5), "a")
    index.insert((5.5, 3.5), "b")
    assert index.key_extents() == ((0, 0), (5, 3))
    assert index.remove((5.5, 3.5), "b")
    assert index.key_extents() == ((0, 0), (0, 0))
    assert index.remove((0.5, 0.5), "a")
    assert index.key_extents() is None


def test_covers_occupied_extent():
    index = FeatureGridIndex((1.0, 1.0))
    index.insert((1.5, 2.5), "a")
    index.insert((4.5, 6.5), "b")
    assert index.covers_occupied_extent((0.0, 0.0), (10.0, 10.0))
    assert index.covers_occupied_extent(
        (float("-inf"), 0.0), (float("inf"), 10.0)
    )
    assert not index.covers_occupied_extent((2.0, 0.0), (10.0, 10.0))
    assert not index.covers_occupied_extent((0.0, 0.0), (4.0, 10.0))


def test_unbounded_query_correct_after_boundary_removal():
    """Extent caching must not serve stale bounds after the boundary
    entry is removed (the lazy-recompute path)."""
    index = FeatureGridIndex((1.0,))
    index.insert((1.0,), "a")
    index.insert((100.0,), "edge")
    assert set(index.range_query((0.0,), (float("inf"),))) == {"a", "edge"}
    assert index.remove((100.0,), "edge")
    index.insert((5.0,), "b")
    assert set(index.range_query((0.0,), (float("inf"),))) == {"a", "b"}
