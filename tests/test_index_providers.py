"""Parity suite for the pluggable NeighborProvider backends.

Every backend (grid, kdtree, rtree, auto) must answer exactly the same
fixed-radius neighbor queries — single and batched, static and under
insert/remove/purge churn — and the clustering layer built on top must
produce identical window output regardless of the backend selected.
"""

import random

import pytest

from tests.helpers import clustered_points, make_objects, stream_batches
from repro.clustering.shared import SharedCSGS
from repro.config import ContinuousClusteringQuery
from repro.core.csgs import CSGS
from repro.geometry.coordstore import HAVE_NUMPY
from repro.geometry.distance import euclidean_distance
from repro.index import (
    BACKENDS,
    AutoProvider,
    GridIndex,
    KDTreeProvider,
    RTreeProvider,
    available_backends,
    cell_substrate,
    make_provider,
)

BACKEND_NAMES = tuple(sorted(BACKENDS))

THETA = 0.4


def brute_force(objects, coords, radius, exclude_oid=-1):
    return {
        obj.oid
        for obj in objects
        if obj.oid != exclude_oid
        and euclidean_distance(obj.coords, coords) <= radius
    }


def random_points(n, dims, seed, bound=5.0):
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(0, bound) for _ in range(dims)) for _ in range(n)
    ]


# ----------------------------------------------------------------------
# Factory / registry
# ----------------------------------------------------------------------


def test_available_backends():
    assert available_backends() == ("auto", "grid", "kdtree", "rtree")


def test_make_provider_types():
    assert isinstance(make_provider("grid", 0.5, 2), GridIndex)
    assert isinstance(make_provider("kdtree", 0.5, 2), KDTreeProvider)
    assert isinstance(make_provider("rtree", 0.5, 2), RTreeProvider)
    assert isinstance(make_provider("auto", 0.5, 2), AutoProvider)


def test_make_provider_unknown_backend():
    with pytest.raises(ValueError, match="unknown index backend"):
        make_provider("quadtree", 0.5, 2)


def test_config_validates_backend():
    query = ContinuousClusteringQuery.count_based(
        0.5, 3, 2, 100, 50, index_backend="kdtree"
    )
    assert query.index_backend == "kdtree"
    with pytest.raises(ValueError, match="unknown index backend"):
        ContinuousClusteringQuery.count_based(
            0.5, 3, 2, 100, 50, index_backend="nope"
        )


# ----------------------------------------------------------------------
# range_query parity (vs brute force and across backends)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("dims", (2, 4))
def test_range_query_matches_bruteforce_random(backend, dims):
    objects = make_objects(random_points(250, dims, seed=11))
    provider = make_provider(backend, THETA, dims)
    for obj in objects:
        provider.insert(obj)
    assert len(provider) == len(objects)
    for probe in objects[:40]:
        got = {
            obj.oid
            for obj in provider.range_query(
                probe.coords, exclude_oid=probe.oid
            )
        }
        assert got == brute_force(objects, probe.coords, THETA, probe.oid)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_matches_bruteforce_clustered(backend):
    points = clustered_points(
        [(1.0, 1.0), (3.0, 3.0)], per_cluster=120, noise=60, seed=5
    )
    objects = make_objects(points)
    provider = make_provider(backend, THETA, 2)
    for obj in objects:
        provider.insert(obj)
    for probe in objects[::7]:
        got = {
            obj.oid
            for obj in provider.range_query(
                probe.coords, exclude_oid=probe.oid
            )
        }
        assert got == brute_force(objects, probe.coords, THETA, probe.oid)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_many_matches_single(backend):
    objects = make_objects(random_points(300, 2, seed=23))
    provider = make_provider(backend, THETA, 2)
    for obj in objects:
        provider.insert(obj)
    queries = [(obj.coords, obj.oid) for obj in objects[:80]]
    batched = provider.range_query_many(queries)
    assert len(batched) == len(queries)
    for (coords, exclude), result in zip(queries, batched):
        single = provider.range_query(coords, exclude_oid=exclude)
        assert {obj.oid for obj in result} == {obj.oid for obj in single}


def test_backends_pairwise_identical_after_churn():
    """Same mutation sequence -> same answers, across all backends."""
    rng = random.Random(42)
    objects = make_objects(random_points(400, 2, seed=9), last_window=10)
    # Stagger expiry so purge_expired has real work.
    for obj in objects:
        obj.last_window = rng.randint(2, 10)
    providers = {
        name: make_provider(name, THETA, 2) for name in BACKEND_NAMES
    }
    for obj in objects:
        for provider in providers.values():
            provider.insert(obj)
    removed = rng.sample(objects, 60)
    for obj in removed:
        for provider in providers.values():
            provider.remove(obj)
    purged = {
        name: provider.purge_expired(6)
        for name, provider in providers.items()
    }
    assert len(set(purged.values())) == 1
    sizes = {len(provider) for provider in providers.values()}
    assert len(sizes) == 1
    alive = {obj.oid for obj in providers["grid"]}
    for name in BACKEND_NAMES:
        assert {obj.oid for obj in providers[name]} == alive
    probes = random_points(50, 2, seed=77)
    for coords in probes:
        answers = {
            name: frozenset(
                obj.oid for obj in provider.range_query(coords)
            )
            for name, provider in providers.items()
        }
        assert len(set(answers.values())) == 1, answers


# ----------------------------------------------------------------------
# range_query_many edge cases (empty batches, absent probe oids,
# queries issued mid-purge) — per backend × refinement mode
# ----------------------------------------------------------------------

REFINEMENTS = ("scalar", "vector") if HAVE_NUMPY else ("scalar",)


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_many_empty_batch(backend, refinement):
    provider = make_provider(backend, THETA, 2, refinement=refinement)
    assert provider.range_query_many([]) == []
    for obj in make_objects(random_points(30, 2, seed=2)):
        provider.insert(obj)
    assert provider.range_query_many([]) == []


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_many_absent_probe_oid(backend, refinement):
    """A probe whose exclude_oid is not in the index excludes nothing:
    the full neighbor set comes back (the shared-execution coordinator
    issues such queries for objects routed to a different shard)."""
    objects = make_objects(random_points(120, 2, seed=17))
    provider = make_provider(backend, THETA, 2, refinement=refinement)
    for obj in objects:
        provider.insert(obj)
    probes = [(obj.coords, 10_000 + obj.oid) for obj in objects[:25]]
    batched = provider.range_query_many(probes)
    for (coords, _), got in zip(probes, batched):
        want = brute_force(objects, coords, THETA)
        assert {obj.oid for obj in got} == want


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_many_mid_purge(backend, refinement):
    """Queries issued between purges see exactly the live population —
    tombstoned rows must not leak into batched answers."""
    rng = random.Random(3)
    objects = make_objects(random_points(200, 2, seed=29))
    for obj in objects:
        obj.last_window = rng.randint(1, 6)
    provider = make_provider(backend, THETA, 2, refinement=refinement)
    for obj in objects:
        provider.insert(obj)
    for window in range(1, 8):
        purged = provider.purge_expired(window)
        alive = [obj for obj in objects if obj.last_window >= window]
        assert len(provider) == len(alive)
        if window > 1:
            assert purged == sum(
                1 for obj in objects if obj.last_window == window - 1
            )
        queries = [(obj.coords, obj.oid) for obj in alive[:20]]
        batched = provider.range_query_many(queries)
        assert len(batched) == len(queries)
        for (coords, exclude), got in zip(queries, batched):
            want = brute_force(alive, coords, THETA, exclude)
            assert {obj.oid for obj in got} == want


@pytest.mark.parametrize("refinement", REFINEMENTS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_range_query_many_after_remove_matches_single(backend, refinement):
    rng = random.Random(11)
    objects = make_objects(random_points(150, 2, seed=41, bound=2.0))
    provider = make_provider(backend, THETA, 2, refinement=refinement)
    for obj in objects:
        provider.insert(obj)
    removed = rng.sample(objects, 40)
    for obj in removed:
        provider.remove(obj)
    alive = [obj for obj in objects if obj not in removed]
    queries = [(obj.coords, obj.oid) for obj in alive[::5]]
    batched = provider.range_query_many(queries)
    for (coords, exclude), got in zip(queries, batched):
        single = provider.range_query(coords, exclude_oid=exclude)
        assert [o.oid for o in got] == [o.oid for o in single]
        assert {o.oid for o in got} == brute_force(
            alive, coords, THETA, exclude
        )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_remove_missing_object_raises(backend):
    provider = make_provider(backend, THETA, 2)
    (obj,) = make_objects([(0.0, 0.0)])
    with pytest.raises(KeyError):
        provider.remove(obj)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_remove_then_reinsert_no_duplicates(backend):
    """A removed-then-reinserted object must be reported exactly once,
    even while the kd-tree still holds its tombstoned committed copy."""
    provider = make_provider(backend, THETA, 2)
    if backend == "kdtree":
        provider._min_buffer = 4  # force early commits to the tree
    objects = make_objects(random_points(40, 2, seed=31, bound=1.0))
    for obj in objects:
        provider.insert(obj)
    victim = objects[3]
    provider.remove(victim)
    provider.insert(victim)
    assert len(provider) == len(objects)
    for probe in objects[:10]:
        got = [
            obj.oid
            for obj in provider.range_query(probe.coords, exclude_oid=probe.oid)
        ]
        assert len(got) == len(set(got)), f"duplicate oids: {sorted(got)}"
        assert set(got) == brute_force(objects, probe.coords, THETA, probe.oid)


def test_system_from_query_uses_declared_backend():
    from repro.system.framework import StreamPatternMiningSystem

    query = ContinuousClusteringQuery.count_based(
        0.4, 3, 2, 100, 50, index_backend="kdtree"
    )
    system = StreamPatternMiningSystem.from_query(query)
    provider = system.extractor.algorithm.tracker.provider
    assert isinstance(provider, KDTreeProvider)
    objects = make_objects(random_points(150, 2, seed=1), last_window=3)
    outputs = system.run(objects, max_windows=2)
    assert outputs and system.archived_count >= 0


# ----------------------------------------------------------------------
# The auto backend: selection heuristic and adaptive switching
# ----------------------------------------------------------------------


def test_auto_initial_choice_follows_walk_cost():
    """Cheap offset walks (low d) pick the grid outright; expensive
    walks (4-D+: 625+ cells) start on the k-d tree."""
    for dims in (1, 2, 3):
        provider = AutoProvider(0.5, dims)
        assert provider.backend_name == "grid", dims
        assert provider.walk_cost <= 200
    for dims in (4, 5):
        provider = AutoProvider(0.5, dims)
        assert provider.backend_name == "kdtree", dims
        assert provider.walk_cost > 200


def test_auto_provider_exposes_cell_substrate():
    provider = AutoProvider(0.4, 4)
    substrate = cell_substrate(provider)
    assert substrate is provider.cells
    objects = make_objects(random_points(50, 4, seed=5))
    for obj in objects:
        coord = provider.insert(obj)
        assert coord == provider.cells.cell_coord(obj.coords)
    assert len(provider.cells) == len(provider) == len(objects)
    # grid is its own substrate; search-only backends have none
    grid = make_provider("grid", 0.4, 2)
    assert cell_substrate(grid) is grid
    assert cell_substrate(make_provider("kdtree", 0.4, 2)) is None
    assert cell_substrate(make_provider("rtree", 0.4, 2)) is None


def test_auto_switches_to_grid_when_cells_densify():
    """Dense 4-D cells flip the kd-tree start to the grid; answers stay
    exact across the switch (the rebuilt backend holds the live set)."""
    provider = AutoProvider(0.5, 4, check_interval=32, dense_occupancy=4.0)
    assert provider.backend_name == "kdtree"
    # Pack many objects into few cells: occupancy far above the dense
    # threshold by the first check.
    rng = random.Random(0)
    objects = make_objects(
        [
            tuple(rng.uniform(0, 0.2) for _ in range(4))
            for _ in range(200)
        ]
    )
    for obj in objects:
        provider.insert(obj)
    assert provider.backend_name == "grid"
    assert provider.switches >= 1
    assert len(provider) == len(objects)
    for probe in objects[:15]:
        got = {
            o.oid
            for o in provider.range_query(probe.coords, exclude_oid=probe.oid)
        }
        assert got == brute_force(objects, probe.coords, 0.5, probe.oid)


def test_auto_switches_back_when_cells_sparsify():
    """Removing the dense mass drops occupancy below the sparse
    threshold and the provider returns to the k-d tree."""
    provider = AutoProvider(
        0.5, 4, check_interval=16, sparse_occupancy=2.0, dense_occupancy=4.0
    )
    rng = random.Random(1)
    dense = make_objects(
        [tuple(rng.uniform(0, 0.2) for _ in range(4)) for _ in range(120)]
    )
    sparse = make_objects(
        [tuple(rng.uniform(0, 40.0) for _ in range(4)) for _ in range(40)],
    )
    for obj in sparse:
        obj.oid += 10_000
    for obj in dense + sparse:
        provider.insert(obj)
    assert provider.backend_name == "grid"
    for obj in dense:
        provider.remove(obj)
    assert provider.backend_name == "kdtree"
    assert provider.switches >= 2
    alive = {obj.oid for obj in provider}
    assert alive == {obj.oid for obj in sparse}
    for probe in sparse[:10]:
        got = {
            o.oid
            for o in provider.range_query(probe.coords, exclude_oid=probe.oid)
        }
        assert got == brute_force(sparse, probe.coords, 0.5, probe.oid)


def test_auto_stats_survive_switches():
    provider = AutoProvider(0.5, 4, check_interval=32)
    objects = make_objects(
        [(0.01 * i, 0.0, 0.0, 0.0) for i in range(100)]
    )
    for obj in objects:
        provider.insert(obj)
        provider.range_query(obj.coords, exclude_oid=obj.oid)
    stats = provider.stats
    assert stats["queries"] == 100
    assert stats["candidates"] > 0


def test_kdtree_provider_rebuilds_amortized():
    provider = KDTreeProvider(THETA, 2, rebuild_fraction=0.25, min_buffer=8)
    objects = make_objects(random_points(300, 2, seed=3))
    for obj in objects:
        provider.insert(obj)
    assert provider.rebuilds > 0
    # After heavy churn the answers stay exact.
    for obj in objects[:150]:
        provider.remove(obj)
    remaining = objects[150:]
    for probe in remaining[:25]:
        got = {
            o.oid
            for o in provider.range_query(probe.coords, exclude_oid=probe.oid)
        }
        assert got == brute_force(remaining, probe.coords, THETA, probe.oid)


# ----------------------------------------------------------------------
# Clustering-layer parity: identical window output per backend
# ----------------------------------------------------------------------


def _csgs_trace(backend, points, theta_range=0.35, theta_count=4):
    """Full structural trace of a C-SGS run (order included)."""
    csgs = CSGS(theta_range, theta_count, 2, backend=backend)
    trace = []
    for batch in stream_batches(points, 150, 75):
        output = csgs.process_batch(batch)
        trace.append(
            (
                output.window_index,
                [
                    (
                        cluster.cluster_id,
                        [obj.oid for obj in cluster.core_objects],
                        [obj.oid for obj in cluster.edge_objects],
                    )
                    for cluster in output.clusters
                ],
                [
                    sorted(
                        (cell.location, cell.status.name, cell.population)
                        for cell in sgs.cells.values()
                    )
                    for sgs in output.summaries
                ],
            )
        )
    return trace


def test_csgs_output_identical_across_backends():
    points = clustered_points(
        [(2.0, 2.0), (7.0, 7.0), (4.5, 5.0)],
        per_cluster=150,
        noise=100,
        seed=13,
    )
    traces = {
        backend: _csgs_trace(backend, points) for backend in BACKEND_NAMES
    }
    for backend in BACKEND_NAMES:
        assert traces[backend] == traces["grid"], backend


def test_shared_csgs_identical_across_backends():
    points = clustered_points(
        [(2.0, 2.0), (6.5, 6.5)], per_cluster=120, noise=80, seed=21
    )
    theta_counts = (3, 6)

    def run(backend):
        shared = SharedCSGS(0.35, theta_counts, 2, backend=backend)
        trace = []
        for batch in stream_batches(points, 150, 75):
            outputs = shared.process_batch(batch)
            trace.append(
                {
                    count: [
                        (
                            sorted(obj.oid for obj in cluster.core_objects),
                            sorted(obj.oid for obj in cluster.edge_objects),
                        )
                        for cluster in output.clusters
                    ]
                    for count, output in outputs.items()
                }
            )
        return trace

    reference = run("grid")
    for backend in ("kdtree", "rtree", "auto"):
        assert run(backend) == reference


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_shared_members_share_one_cell_substrate(backend):
    """Members must not each duplicate the SGS cell bookkeeping."""
    shared = SharedCSGS(0.35, (3, 5, 8), 2, backend=backend)
    substrates = {id(member.tracker.cells) for member in shared.members.values()}
    assert substrates == {id(shared.cells)}
    providers = {id(member.tracker.provider) for member in shared.members.values()}
    assert providers == {id(shared.provider)}


def test_insert_batch_matches_sequential_on_prepopulated_provider():
    """Both insertion paths fail identically (loudly) when the provider
    holds objects the tracker never saw — no silent divergence."""
    from repro.core.lifespan import NeighborhoodTracker

    def tracker_with_stranger():
        provider = make_provider("grid", 0.4, 2)
        (stranger,) = make_objects([(0.05, 0.05)])
        stranger.oid = 999
        provider.insert(stranger)
        return NeighborhoodTracker(0.4, 2, 2, provider=provider)

    (newcomer,) = make_objects([(0.0, 0.0)])
    with pytest.raises(KeyError):
        tracker_with_stranger().insert(newcomer)
    with pytest.raises(KeyError):
        tracker_with_stranger().insert_batch([newcomer])


@pytest.mark.parametrize("backend", ("kdtree", "rtree", "auto"))
def test_shared_matches_independent_runs(backend):
    """Shared execution on a non-grid backend equals independent C-SGS."""
    points = clustered_points(
        [(2.0, 2.0), (6.0, 3.5)], per_cluster=100, noise=50, seed=8
    )
    theta_counts = (3, 5)
    shared = SharedCSGS(0.35, theta_counts, 2, backend=backend)
    independent = {
        count: CSGS(0.35, count, 2, backend=backend)
        for count in theta_counts
    }
    for shared_batch, solo_batch in zip(
        stream_batches(points, 150, 75), stream_batches(points, 150, 75)
    ):
        outputs = shared.process_batch(shared_batch)
        for count, csgs in independent.items():
            solo = csgs.process_batch(solo_batch)
            got = sorted(
                (
                    sorted(obj.oid for obj in cluster.core_objects),
                    sorted(obj.oid for obj in cluster.edge_objects),
                )
                for cluster in outputs[count].clusters
            )
            want = sorted(
                (
                    sorted(obj.oid for obj in cluster.core_objects),
                    sorted(obj.oid for obj in cluster.edge_objects),
                )
                for cluster in solo.clusters
            )
            assert got == want
