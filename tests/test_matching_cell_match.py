"""Unit tests for the grid-cell-level cluster match."""

import pytest

from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.sgs import SGS
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import DistanceMetricSpec


def _sgs(locations, populations=None, side=0.5, statuses=None, conns=None):
    cells = []
    for i, loc in enumerate(locations):
        pop = populations[i] if populations else 5
        status = statuses[i] if statuses else CellStatus.CORE
        conn = conns[i] if conns else frozenset()
        cells.append(SkeletalGridCell(loc, side, pop, status, frozenset(conn)))
    return SGS(cells, side)


def test_identical_sgs_zero_distance():
    sgs = _sgs([(0, 0), (1, 0)])
    spec = DistanceMetricSpec()
    assert cell_level_distance(sgs, sgs, spec) == 0.0


def test_translated_sgs_zero_under_matching_alignment():
    a = _sgs([(0, 0), (1, 0)])
    b = _sgs([(10, 5), (11, 5)])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec, alignment=(10, 5)) == 0.0
    assert cell_level_distance(a, b, spec, alignment=(0, 0)) == 1.0


def test_disjoint_is_max_distance():
    a = _sgs([(0, 0)])
    b = _sgs([(9, 9)])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec) == 1.0


def test_population_difference_increases_distance():
    a = _sgs([(0, 0)], populations=[10])
    near = _sgs([(0, 0)], populations=[11])
    far = _sgs([(0, 0)], populations=[40])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, near, spec) < cell_level_distance(
        a, far, spec
    )


def test_status_mismatch_costs():
    a = _sgs([(0, 0)], statuses=[CellStatus.CORE])
    b = _sgs([(0, 0)], statuses=[CellStatus.EDGE])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec) > 0.0


def test_connection_difference_costs():
    a = _sgs([(0, 0), (1, 0)], conns=[{(1, 0)}, {(0, 0)}])
    b = _sgs([(0, 0), (1, 0)], conns=[frozenset(), frozenset()])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec) > 0.0


def test_connections_normalized_by_alignment():
    # Shifting both cells and their connection targets leaves distance 0.
    a = _sgs([(0, 0), (1, 0)], conns=[{(1, 0)}, {(0, 0)}])
    b = _sgs([(4, 4), (5, 4)], conns=[{(5, 4)}, {(4, 4)}])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec, alignment=(4, 4)) == pytest.approx(
        0.0
    )


def test_symmetry():
    a = _sgs([(0, 0), (1, 0), (1, 1)], populations=[3, 6, 9])
    b = _sgs([(0, 0), (0, 1)], populations=[4, 4])
    spec = DistanceMetricSpec()
    assert cell_level_distance(a, b, spec) == pytest.approx(
        cell_level_distance(b, a, spec)
    )


def test_range_is_zero_one():
    a = _sgs([(0, 0), (1, 0), (2, 0)], populations=[1, 2, 3])
    b = _sgs([(0, 0), (5, 5)], populations=[9, 9])
    spec = DistanceMetricSpec()
    d = cell_level_distance(a, b, spec)
    assert 0.0 <= d <= 1.0


def test_position_sensitive_rejects_nonzero_alignment():
    a = _sgs([(0, 0)])
    spec = DistanceMetricSpec(position_sensitive=True)
    with pytest.raises(ValueError):
        cell_level_distance(a, a, spec, alignment=(1, 0))


def test_dimension_mismatch_rejected():
    a = _sgs([(0, 0)])
    cells = [SkeletalGridCell((0, 0, 0), 0.5, 1, CellStatus.CORE)]
    b = SGS(cells, 0.5)
    spec = DistanceMetricSpec()
    with pytest.raises(ValueError):
        cell_level_distance(a, b, spec)
