"""The retrieval engine's correctness net.

The heart of it is the oracle equivalence suite: the filter-and-refine
engine must return *exactly* what an exhaustive
``cluster_feature_distance`` + cell-level-match scan over the whole
archive returns — same pattern ids, same refined distances, same order —
across seeded archives, both metric modes, and every coarse entry
level. Everything the planner and the coarse-to-fine ladder do is
pruning; none of it may change answers.
"""

import pytest

from tests.helpers import clustered_points, stream_batches
from repro.archive.archiver import PatternArchiver
from repro.archive.pattern_base import PatternBase
from repro.core.csgs import CSGS
from repro.core.features import ClusterFeatures
from repro.matching.alignment import anytime_alignment_search
from repro.matching.cell_match import cell_level_distance
from repro.matching.metric import DistanceMetricSpec, cluster_feature_distance
from repro.retrieval import (
    ENTRY_FEATURE_GRID,
    ENTRY_RTREE,
    ENTRY_SCAN,
    MatchEngine,
    MatchQuery,
    plan_query,
)

SEEDS = (1, 2, 3)
COARSE_LEVELS = (0, 1, 2)


def _populated_base(seed=1, archive_level=0, byte_budget=None):
    points = clustered_points(
        [(2.0, 2.0), (6.0, 5.0), (4.0, 8.0)],
        per_cluster=250,
        noise=120,
        seed=seed,
    )
    base = PatternBase()
    archiver = PatternArchiver(
        base, level=archive_level, byte_budget_per_cluster=byte_budget
    )
    csgs = CSGS(0.35, 5, 2)
    last_output = None
    for batch in stream_batches(points, 300, 100):
        last_output = csgs.process_batch(batch)
        archiver.archive_output(last_output)
    return base, last_output


def exhaustive_scan(base, query: MatchQuery, max_expansions=32):
    """The trivially correct reference: every archived pattern gets the
    cluster-feature distance and (if within threshold) the cell-level
    match — no index, no coarse entry."""
    features = ClusterFeatures.from_sgs(query.sgs)
    mbr = query.sgs.mbr()
    spec = query.metric
    results = []
    for pattern in base.all_patterns():
        if not query.admits_window(pattern.window_index):
            continue
        if not query.admits_features(pattern.features):
            continue
        coarse = cluster_feature_distance(
            features, pattern.features, spec, mbr, pattern.mbr
        )
        if coarse > query.threshold:
            continue
        if spec.position_sensitive:
            distance = cell_level_distance(query.sgs, pattern.sgs, spec, None)
        else:
            distance = anytime_alignment_search(
                query.sgs, pattern.sgs, spec, max_expansions=max_expansions
            ).distance
        if distance <= query.threshold:
            results.append((pattern.pattern_id, distance))
    results.sort(key=lambda item: (item[1], item[0]))
    return results


def _as_pairs(results):
    return [(r.pattern.pattern_id, r.distance) for r in results]


@pytest.mark.parametrize("coarse_level", COARSE_LEVELS)
@pytest.mark.parametrize("position_sensitive", (False, True))
@pytest.mark.parametrize("seed", SEEDS)
def test_engine_equals_exhaustive_scan(seed, position_sensitive, coarse_level):
    base, last = _populated_base(seed=seed)
    spec = DistanceMetricSpec(position_sensitive=position_sensitive)
    engine = MatchEngine(base, spec)
    for query_sgs in last.summaries[:2]:
        for threshold in (0.15, 0.3, 0.45):
            query = MatchQuery(
                sgs=query_sgs,
                threshold=threshold,
                metric=spec,
                coarse_level=coarse_level,
            )
            results, stats = engine.match(query)
            assert _as_pairs(results) == exhaustive_scan(base, query), (
                f"engine diverged from exhaustive scan (seed={seed}, "
                f"ps={position_sensitive}, coarse={coarse_level}, "
                f"t={threshold})"
            )
            assert stats.gathered <= stats.archive_size
            assert stats.refined <= stats.screened <= stats.gathered


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_equals_exhaustive_on_coarser_stored_levels(seed):
    """Archives stored above level 0 (budget-aware archiver) refine and
    coarse-enter off their stored representation."""
    base, last = _populated_base(seed=seed, archive_level=1)
    engine = MatchEngine(base)
    query = MatchQuery(sgs=last.summaries[0], threshold=0.4, coarse_level=1)
    results, _ = engine.match(query)
    assert _as_pairs(results) == exhaustive_scan(base, query)


def test_window_range_and_feature_constraints_respected():
    base, last = _populated_base(seed=4)
    engine = MatchEngine(base)
    windows = sorted({p.window_index for p in base.all_patterns()})
    lo, hi = windows[1], windows[-2]
    query = MatchQuery(
        sgs=last.summaries[0],
        threshold=0.5,
        window_range=(lo, hi),
        feature_ranges={"volume": (10.0, 200.0)},
    )
    results, _ = engine.match(query)
    assert _as_pairs(results) == exhaustive_scan(base, query)
    assert results, "constraint test needs a non-empty result to bite"
    for result in results:
        assert lo <= result.pattern.window_index <= hi
        assert 10.0 <= result.pattern.features.volume <= 200.0


def test_top_k_truncates_after_stats():
    base, last = _populated_base(seed=5)
    engine = MatchEngine(base)
    full, _ = engine.match(MatchQuery(sgs=last.summaries[0], threshold=0.6))
    top3, stats = engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.6, top_k=3)
    )
    assert _as_pairs(top3) == _as_pairs(full)[:3]
    assert stats.matches == len(full)


# ----------------------------------------------------------------------
# Planner entry selection
# ----------------------------------------------------------------------


def _plan_for(base, query):
    features = ClusterFeatures.from_sgs(query.sgs)
    return plan_query(base, query, features, query.sgs.mbr())


def test_planner_picks_rtree_for_position_sensitive():
    base, last = _populated_base(seed=1)
    query = MatchQuery(
        sgs=last.summaries[0],
        threshold=0.3,
        metric=DistanceMetricSpec(position_sensitive=True),
    )
    assert _plan_for(base, query).entry == ENTRY_RTREE


def test_planner_picks_feature_grid_for_selective_ranges():
    base, last = _populated_base(seed=1)
    query = MatchQuery(sgs=last.summaries[0], threshold=0.1)
    assert _plan_for(base, query).entry == ENTRY_FEATURE_GRID


def test_planner_falls_back_to_scan_without_filtering_power():
    base, last = _populated_base(seed=1)
    # threshold 1.0 caps every per-feature bound: all ranges unbounded.
    query = MatchQuery(sgs=last.summaries[0], threshold=1.0)
    assert _plan_for(base, query).entry == ENTRY_SCAN


def test_planner_scans_tiny_archives():
    base, last = _populated_base(seed=1)
    tiny = PatternBase()
    for pattern in list(base.all_patterns())[:3]:
        tiny.add(pattern.sgs, pattern.full_size)
    query = MatchQuery(sgs=last.summaries[0], threshold=0.1)
    assert _plan_for(tiny, query).entry == ENTRY_SCAN


def test_planner_entry_reported_in_stats():
    base, last = _populated_base(seed=1)
    engine = MatchEngine(base)
    _, stats = engine.match(MatchQuery(sgs=last.summaries[0], threshold=0.1))
    assert stats.entry == ENTRY_FEATURE_GRID
    assert stats.plan["archive"] == len(base)
    assert stats.plan["shared_gather"] is False


# ----------------------------------------------------------------------
# Batched serving
# ----------------------------------------------------------------------


def test_match_many_equals_sequential_match():
    base, last = _populated_base(seed=2)
    engine = MatchEngine(base)
    ps_spec = DistanceMetricSpec(position_sensitive=True)
    queries = [
        MatchQuery(sgs=sgs, threshold=threshold, metric=metric, coarse_level=c)
        for sgs in last.summaries[:3]
        for threshold, metric, c in (
            (0.2, DistanceMetricSpec(), 0),
            (0.45, DistanceMetricSpec(), 1),
            (0.3, ps_spec, 0),
        )
    ]
    batched = engine.match_many(queries)
    assert len(batched) == len(queries)
    for query, (results, stats) in zip(queries, batched):
        solo_results, solo_stats = engine.match(query)
        assert _as_pairs(results) == _as_pairs(solo_results)
        assert stats.plan["shared_gather"] is True
        # The shared pool is a superset of the solo gather.
        assert stats.gathered >= solo_stats.gathered
        assert stats.refined == solo_stats.refined


def test_match_many_single_query_not_marked_shared():
    base, last = _populated_base(seed=2)
    engine = MatchEngine(base)
    [(results, stats)] = engine.match_many(
        [MatchQuery(sgs=last.summaries[0], threshold=0.3)]
    )
    assert stats.plan["shared_gather"] is False
    assert _as_pairs(results) == _as_pairs(
        engine.match(MatchQuery(sgs=last.summaries[0], threshold=0.3))[0]
    )


def test_match_many_empty_batch():
    base, _ = _populated_base(seed=2)
    assert MatchEngine(base).match_many([]) == []


# ----------------------------------------------------------------------
# The multi-resolution ladder cache
# ----------------------------------------------------------------------


def test_ladder_cache_reused_and_hint_recorded():
    base, last = _populated_base(seed=3)
    engine = MatchEngine(base)
    query = MatchQuery(sgs=last.summaries[0], threshold=0.4, coarse_level=2)
    engine.match(query)
    built = engine.cached_ladder_levels()
    assert built > 0
    hinted = [p for p in base.all_patterns() if p.ladder_hint == 2]
    assert hinted, "coarse matching must record ladder hints"
    engine.match(query)
    assert engine.cached_ladder_levels() == built  # cache, not rebuild


def test_warm_ladders_rebuilds_from_hints():
    base, last = _populated_base(seed=3)
    engine = MatchEngine(base)
    engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.4, coarse_level=1)
    )
    hints = sum(p.ladder_hint for p in base.all_patterns())
    assert hints > 0
    fresh = MatchEngine(base)
    assert fresh.cached_ladder_levels() == 0
    assert fresh.warm_ladders() == hints
    assert fresh.cached_ladder_levels() == hints


def test_invalidate_drops_cached_ladders():
    base, last = _populated_base(seed=3)
    engine = MatchEngine(base)
    engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.4, coarse_level=1)
    )
    assert engine.cached_ladder_levels() > 0
    engine.invalidate()
    assert engine.cached_ladder_levels() == 0


# ----------------------------------------------------------------------
# Query-model validation
# ----------------------------------------------------------------------


def test_match_query_validation():
    _, last = _populated_base(seed=1)
    sgs = last.summaries[0]
    with pytest.raises(ValueError):
        MatchQuery(sgs=sgs, threshold=1.5)
    with pytest.raises(ValueError):
        MatchQuery(sgs=sgs, threshold=0.3, top_k=0)
    with pytest.raises(ValueError):
        MatchQuery(sgs=sgs, threshold=0.3, coarse_level=-1)
    with pytest.raises(ValueError):
        MatchQuery(sgs=sgs, threshold=0.3, window_range=(5, 2))
    with pytest.raises(ValueError):
        MatchQuery(sgs=sgs, threshold=0.3, feature_ranges={"bogus": (0, 1)})
    with pytest.raises(ValueError):
        MatchQuery(
            sgs=sgs, threshold=0.3, feature_ranges={"volume": (4.0, 1.0)}
        )


def test_empty_base_returns_nothing():
    _, last = _populated_base(seed=1)
    engine = MatchEngine(PatternBase())
    results, stats = engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.5)
    )
    assert results == []
    assert stats.archive_size == 0
    assert stats.refine_fraction == 0.0


def test_ladder_cache_prunes_evicted_patterns():
    """A long-lived engine over a churning archive must not pin evicted
    patterns' ladders forever: once the cache outgrows twice the live
    archive, stale entries are swept."""
    base, last = _populated_base(seed=6)
    engine = MatchEngine(base)
    ps = DistanceMetricSpec(position_sensitive=True)
    # Populate both cache phases (canonical and raw).
    engine.match(
        MatchQuery(sgs=last.summaries[0], threshold=0.6, coarse_level=1)
    )
    engine.match(
        MatchQuery(
            sgs=last.summaries[0], threshold=0.6, metric=ps, coarse_level=1
        )
    )
    populated = len(engine._ladders)
    assert populated > 0
    survivors = sorted(p.pattern_id for p in base.all_patterns())[:2]
    for pattern_id in list(p.pattern_id for p in base.all_patterns()):
        if pattern_id not in survivors:
            base.remove(pattern_id)
    engine.match(MatchQuery(sgs=last.summaries[0], threshold=0.3))
    assert len(engine._ladders) < populated
    assert all(key[0] in base for key in engine._ladders)
