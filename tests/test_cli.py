"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


def test_generate_and_run_and_match(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"

    assert main(
        [
            "generate",
            "--kind",
            "blobs",
            "--count",
            "1500",
            "--seed",
            "1",
            "--out",
            str(stream_csv),
        ]
    ) == 0
    assert stream_csv.exists()
    assert "wrote 1500 records" in capsys.readouterr().out

    assert main(
        [
            "run",
            "--input",
            str(stream_csv),
            "--theta-range",
            "0.3",
            "--theta-count",
            "5",
            "--win",
            "500",
            "--slide",
            "250",
            "--archive",
            str(archive),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "window 0" in out
    assert "persisted pattern base" in out
    assert archive.exists()

    assert main(
        [
            "match",
            "--archive",
            str(archive),
            "--pattern",
            "0",
            "--threshold",
            "0.4",
            "--top",
            "3",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "matches" in out


def test_show_ascii_and_json(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1200", "--out", str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--archive", str(archive),
        ]
    )
    capsys.readouterr()
    assert main(["show", "--archive", str(archive), "--pattern", "0"]) == 0
    art = capsys.readouterr().out
    assert "cells" in art and "┌" in art
    assert (
        main(["show", "--archive", str(archive), "--pattern", "0", "--json"])
        == 0
    )
    json_out = capsys.readouterr().out
    assert '"cells"' in json_out


def test_match_missing_pattern_errors(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1200", "--out", str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--archive", str(archive),
        ]
    )
    capsys.readouterr()
    assert (
        main(["match", "--archive", str(archive), "--pattern", "99999"]) == 1
    )
    assert "no pattern" in capsys.readouterr().err


def test_run_time_based(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    main(["generate", "--count", "1000", "--out", str(stream_csv)])
    capsys.readouterr()
    # Arrival-order timestamps: 1000 tuples = 1000 time units.
    assert main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--time-based",
        ]
    ) == 0
    assert "window" in capsys.readouterr().out


def test_run_empty_input(tmp_path, capsys):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    assert main(
        [
            "run", "--input", str(empty), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
        ]
    ) == 1
    assert "empty" in capsys.readouterr().err


def test_run_auto_backend_reports_resolution(tmp_path, capsys):
    """--index-backend auto runs end to end and reports which concrete
    backend the adaptive provider resolved to."""
    stream_csv = tmp_path / "stream.csv"
    assert main(
        [
            "generate",
            "--kind",
            "stt",
            "--count",
            "600",
            "--seed",
            "3",
            "--out",
            str(stream_csv),
        ]
    ) == 0
    capsys.readouterr()
    assert main(
        [
            "run",
            "--input",
            str(stream_csv),
            "--theta-range",
            "0.1",
            "--theta-count",
            "8",
            "--win",
            "300",
            "--slide",
            "150",
            "--index-backend",
            "auto",
            "--max-windows",
            "2",
        ]
    ) == 0
    out = capsys.readouterr().out
    # The STT stream is 4-D: the expensive walk resolves to the k-d tree.
    assert "auto backend: ran on kdtree" in out
    assert "switches" in out


def test_match_plan_stats_and_engine_options(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1500", "--seed", "2", "--out",
          str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "500", "--slide", "250",
            "--archive", str(archive),
        ]
    )
    capsys.readouterr()
    assert main(
        [
            "match", "--archive", str(archive), "--pattern", "0",
            "--threshold", "0.3", "--top", "3",
            "--coarse-level", "1", "--windows", "0:2",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "plan entry=" in out
    assert "refined=" in out
    # The window constraint restricts every reported match.
    for line in out.splitlines():
        if line.startswith("#"):
            window = int(line.split("(window ")[1].split(")")[0])
            assert 0 <= window <= 2


def test_match_rejects_bad_window_span(tmp_path):
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1200", "--out", str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--archive", str(archive),
        ]
    )
    with pytest.raises(SystemExit):
        main(
            [
                "match", "--archive", str(archive), "--pattern", "0",
                "--windows", "nonsense",
            ]
        )


def test_match_reports_invalid_query_cleanly(tmp_path, capsys):
    """Semantically invalid engine options (inverted span, negative
    coarse level) exit with an error message, not a traceback."""
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1200", "--out", str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--archive", str(archive),
        ]
    )
    capsys.readouterr()
    assert main(
        [
            "match", "--archive", str(archive), "--pattern", "0",
            "--windows", "9:3",
        ]
    ) == 1
    assert "invalid matching query" in capsys.readouterr().err
    assert main(
        [
            "match", "--archive", str(archive), "--pattern", "0",
            "--coarse-level", "-1",
        ]
    ) == 1
    assert "invalid matching query" in capsys.readouterr().err


def test_run_persists_inverted_index_and_match_serves_sharded(
    tmp_path, capsys
):
    """End to end through the new serving flags: `run --inverted-levels`
    persists a v3 archive whose index `match` reuses, and
    `--shards`/`--shard-key` fan the query out with identical answers
    to the single-shard invocation."""
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1500", "--seed", "4", "--out",
          str(stream_csv)])
    assert main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "500", "--slide", "250",
            "--archive", str(archive), "--inverted-levels", "1",
        ]
    ) == 0
    capsys.readouterr()

    from repro.archive.persistence import load_pattern_base

    index = load_pattern_base(str(archive)).inverted_index()
    assert index is not None and index.levels == (1,)

    single_args = [
        "match", "--archive", str(archive), "--pattern", "0",
        "--threshold", "0.6", "--top", "5", "--coarse-level", "1",
        "--inverted-levels", "1",
    ]
    assert main(single_args) == 0
    single_out = capsys.readouterr().out
    assert main(
        single_args + ["--shards", "2", "--shard-key", "feature"]
    ) == 0
    sharded_out = capsys.readouterr().out
    assert "shards=2" in sharded_out
    # Identical ranked matches, line for line.
    single_matches = [
        line for line in single_out.splitlines() if line.startswith("#")
    ]
    sharded_matches = [
        line for line in sharded_out.splitlines() if line.startswith("#")
    ]
    assert single_matches == sharded_matches


def test_bad_inverted_levels_rejected(tmp_path, capsys):
    stream_csv = tmp_path / "stream.csv"
    main(["generate", "--count", "800", "--out", str(stream_csv)])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(
            [
                "run", "--input", str(stream_csv), "--theta-range", "0.3",
                "--theta-count", "5", "--win", "400", "--slide", "200",
                "--inverted-levels", "zero",
            ]
        )
    with pytest.raises(SystemExit):
        main(
            [
                "run", "--input", str(stream_csv), "--theta-range", "0.3",
                "--theta-count", "5", "--win", "400", "--slide", "200",
                "--inverted-levels", "0",
            ]
        )


def test_inverted_levels_noop_without_coarse_level(tmp_path, capsys):
    """`match --inverted-levels` without a coarse entry level skips the
    archive-wide rebuild and says so, instead of silently doing work
    the query can never use."""
    stream_csv = tmp_path / "stream.csv"
    archive = tmp_path / "history.sgsa"
    main(["generate", "--count", "1200", "--seed", "6", "--out",
          str(stream_csv)])
    main(
        [
            "run", "--input", str(stream_csv), "--theta-range", "0.3",
            "--theta-count", "5", "--win", "400", "--slide", "200",
            "--archive", str(archive),
        ]
    )
    capsys.readouterr()
    assert main(
        [
            "match", "--archive", str(archive), "--pattern", "0",
            "--threshold", "0.4", "--inverted-levels", "1",
        ]
    ) == 0
    captured = capsys.readouterr()
    assert "has no effect without" in captured.err
    assert "matches" in captured.out
