"""Unit tests for cluster evolution tracking and the evolution-driven
archiver."""

import pytest

from repro.archive.pattern_base import PatternBase
from repro.core.cells import CellStatus, SkeletalGridCell
from repro.core.csgs import WindowOutput
from repro.core.sgs import SGS
from repro.tracking.archiver import EvolutionDrivenArchiver
from repro.tracking.tracker import ClusterTracker, TrackEvent


def _sgs(locations, window, cluster_id=0, population=5):
    cells = [
        SkeletalGridCell(loc, 0.5, population, CellStatus.CORE)
        for loc in locations
    ]
    return SGS(
        cells, 0.5, cluster_id=cluster_id, window_index=window
    )


def _output(window, *summaries):
    from repro.clustering.cluster import Cluster

    clusters = [
        Cluster(i, [], [], window) for i, _ in enumerate(summaries)
    ]
    return WindowOutput(window, clusters, list(summaries))


BLOB_A = [(0, 0), (1, 0), (0, 1), (1, 1)]
BLOB_B = [(10, 10), (11, 10), (10, 11)]


def test_emerge_then_survive():
    tracker = ClusterTracker()
    first = tracker.observe(_output(0, _sgs(BLOB_A, 0)))
    assert [r.event for r in first] == [TrackEvent.EMERGED]
    track = first[0].track_id
    second = tracker.observe(
        _output(1, _sgs(BLOB_A + [(2, 0)], 1))
    )
    assert second[0].event is TrackEvent.SURVIVED
    assert second[0].track_id == track
    assert tracker.track_length(track) == 2


def test_two_independent_tracks():
    tracker = ClusterTracker()
    records = tracker.observe(
        _output(0, _sgs(BLOB_A, 0, 0), _sgs(BLOB_B, 0, 1))
    )
    assert len({r.track_id for r in records}) == 2
    later = tracker.observe(
        _output(1, _sgs(BLOB_A, 1, 0), _sgs(BLOB_B, 1, 1))
    )
    assert all(r.event is TrackEvent.SURVIVED for r in later)


def test_disappearance():
    tracker = ClusterTracker()
    first = tracker.observe(_output(0, _sgs(BLOB_A, 0)))
    track = first[0].track_id
    second = tracker.observe(_output(1))
    assert len(second) == 1
    assert second[0].event is TrackEvent.DISAPPEARED
    assert second[0].track_id == track
    assert second[0].sgs is None
    assert tracker.active_tracks == []


def test_merge_detected():
    tracker = ClusterTracker()
    tracker.observe(_output(0, _sgs(BLOB_A, 0, 0), _sgs(BLOB_B, 0, 1)))
    merged = tracker.observe(_output(1, _sgs(BLOB_A + BLOB_B, 1, 0)))
    events = [r.event for r in merged if r.sgs is not None]
    assert events == [TrackEvent.MERGED]
    assert len(merged[0].parent_tracks) == 2


def test_split_detected():
    tracker = ClusterTracker()
    first = tracker.observe(_output(0, _sgs(BLOB_A + BLOB_B, 0)))
    parent = first[0].track_id
    split = tracker.observe(
        _output(1, _sgs(BLOB_A, 1, 0), _sgs(BLOB_B, 1, 1))
    )
    live = [r for r in split if r.sgs is not None]
    assert all(r.event is TrackEvent.SPLIT for r in live)
    # Exactly one child inherits the parent's id.
    inherited = [r for r in live if r.track_id == parent]
    assert len(inherited) == 1
    fresh = [r for r in live if r.track_id != parent]
    assert all(parent in r.parent_tracks for r in fresh)


def test_emerge_when_overlap_below_threshold():
    tracker = ClusterTracker(overlap_threshold=0.9)
    tracker.observe(_output(0, _sgs(BLOB_A, 0)))
    moved = tracker.observe(_output(1, _sgs([(5, 5), (6, 5)], 1)))
    live = [r for r in moved if r.sgs is not None]
    assert live[0].event is TrackEvent.EMERGED


def test_threshold_validation():
    with pytest.raises(ValueError):
        ClusterTracker(overlap_threshold=0.0)


# ---------------------------------------------------------------------------
# Evolution-driven archiver
# ---------------------------------------------------------------------------


def test_evolution_archiver_skips_stable_clusters():
    base = PatternBase()
    archiver = EvolutionDrivenArchiver(
        base, drift_threshold=0.3, max_gap=100
    )
    # Same stable cluster observed over many windows.
    for window in range(12):
        archiver.archive_output(_output(window, _sgs(BLOB_A, window)))
    # Archived once (the EMERGED snapshot), then suppressed.
    assert len(base) == 1
    assert archiver.savings() > 0.9


def test_evolution_archiver_records_events():
    base = PatternBase()
    archiver = EvolutionDrivenArchiver(base, drift_threshold=0.3)
    archiver.archive_output(
        _output(0, _sgs(BLOB_A, 0, 0), _sgs(BLOB_B, 0, 1))
    )
    assert len(base) == 2  # two EMERGED
    archiver.archive_output(_output(1, _sgs(BLOB_A + BLOB_B, 1, 0)))
    assert len(base) == 3  # the MERGED snapshot


def test_evolution_archiver_records_drift():
    base = PatternBase()
    archiver = EvolutionDrivenArchiver(
        base, drift_threshold=0.2, max_gap=100
    )
    archiver.archive_output(_output(0, _sgs(BLOB_A, 0)))
    # Drift gradually: one extra cell per window keeps overlap above the
    # tracking threshold but accumulates cell-level distance.
    shape = list(BLOB_A)
    for window in range(1, 8):
        shape = shape + [(1 + window, 0), (1 + window, 1)]
        archiver.archive_output(_output(window, _sgs(shape, window)))
    assert 1 < len(base) < 8  # re-archived on drift, but not every window


def test_evolution_archiver_max_gap():
    base = PatternBase()
    archiver = EvolutionDrivenArchiver(
        base, drift_threshold=1.0, max_gap=3
    )
    for window in range(10):
        archiver.archive_output(_output(window, _sgs(BLOB_A, window)))
    # Snapshot at window 0 and then every 3 windows.
    assert len(base) == 4


def test_evolution_archiver_validation():
    with pytest.raises(ValueError):
        EvolutionDrivenArchiver(PatternBase(), drift_threshold=2.0)
    with pytest.raises(ValueError):
        EvolutionDrivenArchiver(PatternBase(), max_gap=0)
