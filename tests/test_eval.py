"""Unit tests for the evaluation substrate (memory, oracle, user study,
harness)."""

import pytest

from tests.helpers import clustered_points, make_objects, stream_batches
from repro.clustering.dbscan import dbscan
from repro.core.csgs import CSGS
from repro.eval.harness import (
    Table,
    fmt_bytes,
    fmt_seconds,
    geometric_mean,
    time_callable,
)
from repro.eval.memory import (
    compression_rate,
    crd_bytes,
    full_representation_bytes,
    rsp_bytes,
    sgs_bytes,
    sgs_cell_bytes,
    skps_bytes,
)
from repro.eval.oracle import oracle_similarity
from repro.eval.user_study import (
    NOT_SIMILAR,
    SIMILAR,
    VERY_SIMILAR,
    SimulatedAnalystPanel,
)
from repro.summaries.crd import CRDSummarizer
from repro.summaries.rsp import RSPSummarizer
from repro.summaries.skps import SkPSSummarizer


def _cluster_and_sgs(seed=1):
    points = clustered_points([(2.0, 2.0)], per_cluster=400, seed=seed)
    csgs = CSGS(0.3, 5, 2)
    output = None
    for batch in stream_batches(points, 400, 200):
        output = csgs.process_batch(batch)
    cluster = max(output.clusters, key=lambda c: c.size)
    sgs = output.summaries[cluster.cluster_id]
    return cluster, sgs


# ---------------------------------------------------------------------------
# Memory cost models
# ---------------------------------------------------------------------------


def test_paper_cell_cost_for_4d():
    # Section 8.2: a 4-D skeletal grid cell costs 23 bytes.
    assert sgs_cell_bytes(4) == 23


def test_sgs_bytes_scale_with_cells():
    _, sgs = _cluster_and_sgs()
    assert sgs_bytes(sgs) == len(sgs) * sgs_cell_bytes(2)


def test_full_representation_bytes():
    cluster, _ = _cluster_and_sgs()
    assert full_representation_bytes(cluster, 2) == cluster.size * (8 + 4)
    assert full_representation_bytes(100, 4) == 100 * 20


def test_compression_rate_high_for_dense_cluster():
    cluster, sgs = _cluster_and_sgs()
    rate = compression_rate(sgs, cluster)
    assert 0.0 < rate < 1.0
    assert sgs_bytes(sgs) == pytest.approx(
        (1 - rate) * full_representation_bytes(cluster, 2)
    )


def test_alternative_summary_bytes():
    cluster, _ = _cluster_and_sgs()
    crd = CRDSummarizer().summarize(cluster)
    rsp = RSPSummarizer(rate=0.1, seed=1).summarize(cluster)
    skps = SkPSSummarizer(0.3).summarize(cluster)
    assert crd_bytes(crd) == 8 + 12
    assert rsp_bytes(rsp) == rsp.sample_size * 8 + 4
    assert skps_bytes(skps) == skps.size * 8 + len(skps.edges) * 4


# ---------------------------------------------------------------------------
# Oracle similarity
# ---------------------------------------------------------------------------


def test_oracle_identity_is_one():
    cluster, _ = _cluster_and_sgs()
    assert oracle_similarity(cluster, cluster, 0.3) == pytest.approx(1.0)


def test_oracle_translation_invariant_when_insensitive():
    points = clustered_points([(2.0, 2.0)], per_cluster=200, seed=3)
    shifted = [(x + 30.0, y + 30.0) for x, y in points]
    a = dbscan(make_objects(points), 0.3, 5)[0]
    b = dbscan(make_objects(shifted), 0.3, 5)[0]
    sim = oracle_similarity(a, b, 0.3)
    assert sim > 0.9
    assert oracle_similarity(a, b, 0.3, position_sensitive=True) == 0.0


def test_oracle_dissimilar_shapes_score_low():
    tight = clustered_points([(2.0, 2.0)], per_cluster=200, std=0.1, seed=4)
    wide = clustered_points([(2.0, 2.0)], per_cluster=200, std=0.8, seed=5)
    a = dbscan(make_objects(tight), 0.3, 5)[0]
    b = max(dbscan(make_objects(wide), 0.3, 5), key=lambda c: c.size)
    assert oracle_similarity(a, b, 0.3) < 0.5


def test_oracle_symmetric():
    a, _ = _cluster_and_sgs(seed=6)
    b, _ = _cluster_and_sgs(seed=7)
    assert oracle_similarity(a, b, 0.3) == pytest.approx(
        oracle_similarity(b, a, 0.3), abs=0.05
    )


def test_oracle_empty_cluster():
    from repro.clustering.cluster import Cluster

    a, _ = _cluster_and_sgs()
    assert oracle_similarity(a, Cluster(0, [], []), 0.3) == 0.0


# ---------------------------------------------------------------------------
# Simulated user study
# ---------------------------------------------------------------------------


def test_panel_rates_obvious_cases():
    panel = SimulatedAnalystPanel(n_analysts=20, noise=0.02, seed=1)
    high = panel.rate_method("good", [0.95] * 10)
    low = panel.rate_method("bad", [0.05] * 10)
    assert high.similar_rate > 0.95
    assert low.similar_rate < 0.05
    assert high.total == 200  # 10 matches x 20 analysts


def test_panel_monotone_in_similarity():
    panel = SimulatedAnalystPanel(seed=2)
    rates = [
        panel.rate_method("m", [s] * 20).similar_rate
        for s in (0.1, 0.45, 0.9)
    ]
    assert rates[0] < rates[1] < rates[2]


def test_panel_reproducible():
    a = SimulatedAnalystPanel(seed=3).rate_method("m", [0.5] * 30)
    b = SimulatedAnalystPanel(seed=3).rate_method("m", [0.5] * 30)
    assert a.ratings == b.ratings


def test_rating_categories():
    panel = SimulatedAnalystPanel(n_analysts=5, noise=0.0, seed=4)
    outcome = panel.rate_method("m", [0.9, 0.5, 0.1])
    assert set(outcome.ratings) <= {VERY_SIMILAR, SIMILAR, NOT_SIMILAR}
    assert outcome.very_similar_rate <= outcome.similar_rate


def test_panel_validation():
    with pytest.raises(ValueError):
        SimulatedAnalystPanel(n_analysts=0)


# ---------------------------------------------------------------------------
# Harness helpers
# ---------------------------------------------------------------------------


def test_time_callable_positive():
    assert time_callable(lambda: sum(range(1000))) > 0.0


def test_formatters():
    assert fmt_seconds(0.0000005).endswith("us")
    assert fmt_seconds(0.005).endswith("ms")
    assert fmt_seconds(2.0) == "2.00s"
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2.00KB"


def test_table_rendering():
    table = Table("Demo", ["a", "b"])
    table.add_row(1, "xy")
    rendered = table.render()
    assert "Demo" in rendered and "xy" in rendered
    with pytest.raises(ValueError):
        table.add_row(1)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) is None
    assert geometric_mean([1.0, 0.0]) is None
