"""Unit tests for the RSP (random sampling) summarizer."""

import pytest

from tests.helpers import make_objects
from repro.clustering.cluster import Cluster
from repro.summaries.rsp import RSPSummarizer


def _cluster(n=100):
    return Cluster(0, make_objects([(float(i), 0.0) for i in range(n)]), [])


def test_rate_controls_sample_size():
    rsp = RSPSummarizer(rate=0.1, seed=1).summarize(_cluster(100))
    assert rsp.sample_size == 10
    assert rsp.population == 100


def test_minimum_one_sample():
    rsp = RSPSummarizer(rate=0.001, seed=1).summarize(_cluster(10))
    assert rsp.sample_size == 1


def test_budget_matched_sampling():
    # Paper protocol: RSP gets the same memory budget as the SGS of the
    # same cluster — expressed here as a cell-count callback.
    summarizer = RSPSummarizer(budget_cells=lambda cluster: 17, seed=1)
    rsp = summarizer.summarize(_cluster(100))
    assert rsp.sample_size == 17


def test_budget_capped_by_members():
    summarizer = RSPSummarizer(budget_cells=lambda cluster: 1000, seed=1)
    rsp = summarizer.summarize(_cluster(10))
    assert rsp.sample_size == 10


def test_samples_are_members():
    cluster = _cluster(50)
    member_coords = {obj.coords for obj in cluster.members}
    rsp = RSPSummarizer(rate=0.2, seed=2).summarize(cluster)
    assert all(point in member_coords for point in rsp.points)


def test_deterministic_with_seed():
    a = RSPSummarizer(rate=0.2, seed=3).summarize(_cluster(50))
    b = RSPSummarizer(rate=0.2, seed=3).summarize(_cluster(50))
    assert a.points == b.points


def test_rate_validation():
    with pytest.raises(ValueError):
        RSPSummarizer(rate=0.0)
    with pytest.raises(ValueError):
        RSPSummarizer(rate=1.5)


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        RSPSummarizer().summarize(Cluster(0, [], []))
